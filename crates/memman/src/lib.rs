//! The CFP-growth memory manager (Appendix A of the paper).
//!
//! Compressed CFP-tree nodes are variable-sized (roughly 2–26 bytes) and
//! *change size* as transactions are inserted: a pcount grows past a byte
//! boundary, a pointer appears, a chain splits. A general-purpose allocator
//! would pad, fragment, and burn a `malloc` call per node; the paper instead
//! uses a purpose-built manager that
//!
//! 1. avoids expensive allocation calls when creating nodes,
//! 2. enables small (40-bit) pointers, because every node lives in one
//!    contiguous arena addressed by offset, and
//! 3. provides unpadded chunks, so a 7-byte node costs exactly 7 bytes.
//!
//! The design follows Figure 9: the arena is split into *used* and *unused*
//! memory by a bump pointer (`next-free`). Freed chunks of each size are
//! threaded into per-size queues; the link to the next free chunk is stored
//! in the first 5 bytes of the free chunk itself, so the free lists cost no
//! extra memory. When a node grows or shrinks from `b1` to `b2` bytes, a
//! chunk is dequeued from the `b2` queue (or carved at the bump pointer),
//! the node is copied, and the old `b1` chunk is enqueued on the `b1` queue.
//!
//! Offsets returned by the arena are never 0 (reserved for the null
//! pointer) and never have `0xFF` as the most significant of their five
//! pointer bytes (reserved for the embedded-leaf marker, §3.3) — the arena
//! would have to approach a terabyte before that mattered, and we assert it.

//! ```
//! use cfp_memman::Arena;
//!
//! let mut arena = Arena::new();
//! let a = arena.alloc(7);
//! arena.bytes_mut(a, 7).copy_from_slice(b"sevenby");
//! let b = arena.realloc(a, 7, 12); // node grew past a byte boundary
//! assert_eq!(&arena.bytes(b, 12)[..7], b"sevenby");
//! arena.free(b, 12);
//! assert_eq!(arena.alloc(12), b, "freed chunks are recycled");
//! ```

#![warn(missing_docs)]

use cfp_encoding::ptr40::{read_raw40, write_raw40, MAX_OFFSET, PTR_BYTES};
use cfp_trace::counters as tc;

/// Smallest chunk the arena hands out. A free chunk must be able to hold a
/// 5-byte next-free link, so requests below this are rounded up.
pub const MIN_CHUNK: usize = PTR_BYTES;

/// Largest chunk the arena manages through free queues. Standard nodes top
/// out at 24 bytes and chain nodes at 27; 40 leaves headroom.
pub const MAX_CHUNK: usize = 40;

/// Per-arena event statistics.
///
/// Always maintained (plain integer adds, no atomics), so tests can make
/// deterministic assertions per arena regardless of what other threads or
/// arenas do. The global `cfp-trace` registry mirrors the same events,
/// gated on `cfp_trace::enabled()`, for cross-arena run reports.
///
/// Invariants: `allocs - frees == live_allocs()`, and
/// `queue_hits + bump_allocs == allocs`. A `realloc` that changes chunk
/// class counts as one alloc, one free, and one grow *or* shrink.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total `alloc` calls (including those made inside `realloc`).
    pub allocs: u64,
    /// Total `free` calls (including those made inside `realloc`).
    pub frees: u64,
    /// Allocations served by recycling a free-queue chunk.
    pub queue_hits: u64,
    /// Allocations served by carving at the bump pointer.
    pub bump_allocs: u64,
    /// Reallocations that moved to a larger chunk class.
    pub grows: u64,
    /// Reallocations that moved to a smaller chunk class.
    pub shrinks: u64,
}

/// A bump-pointer arena with per-size free-chunk queues.
#[derive(Debug)]
pub struct Arena {
    buf: Vec<u8>,
    /// Head of the free-chunk queue for each chunk size (index = size).
    free_heads: [u64; MAX_CHUNK + 1],
    /// Bytes currently handed out (allocated minus freed), after rounding.
    used: u64,
    /// Number of live allocations, for leak checks in tests.
    live: u64,
    /// Event counts for this arena.
    stats: ArenaStats,
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an arena with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        let mut buf = Vec::with_capacity(cap.max(1));
        // Offset 0 is the null pointer; burn one byte so it is never used.
        buf.push(0);
        Arena {
            buf,
            free_heads: [0; MAX_CHUNK + 1],
            used: 0,
            live: 0,
            stats: ArenaStats::default(),
        }
    }

    /// Rounds a requested size to the chunk size actually used.
    #[inline]
    fn chunk_size(size: usize) -> usize {
        assert!(size <= MAX_CHUNK, "allocation of {size} bytes exceeds MAX_CHUNK ({MAX_CHUNK})");
        size.max(MIN_CHUNK)
    }

    /// Allocates a chunk of at least `size` bytes and returns its offset.
    ///
    /// The chunk contents are unspecified (possibly stale bytes from a
    /// previous node); the caller is expected to overwrite them fully.
    #[inline]
    pub fn alloc(&mut self, size: usize) -> u64 {
        let size = Self::chunk_size(size);
        self.used += size as u64;
        self.live += 1;
        self.stats.allocs += 1;
        let traced = cfp_trace::enabled();
        if traced {
            tc::MEMMAN_ALLOCS.inc();
            tc::MEMMAN_USED_BYTES.add(size as u64);
        }
        let head = self.free_heads[size];
        if head != 0 {
            self.stats.queue_hits += 1;
            if traced {
                tc::MEMMAN_QUEUE_HITS.inc();
            }
            let next = read_raw40(&self.buf[head as usize..head as usize + PTR_BYTES]);
            self.free_heads[size] = next;
            return head;
        }
        self.stats.bump_allocs += 1;
        if traced {
            tc::MEMMAN_BUMP_ALLOCS.inc();
            tc::MEMMAN_FOOTPRINT_BYTES.add(size as u64);
            tc::MEMMAN_PEAK_FOOTPRINT.record(tc::MEMMAN_FOOTPRINT_BYTES.get());
        }
        let off = self.buf.len() as u64;
        assert!(off + size as u64 <= MAX_OFFSET, "arena exhausted the 40-bit address space");
        self.buf.resize(self.buf.len() + size, 0);
        off
    }

    /// Returns a chunk previously obtained from [`alloc`](Self::alloc) with
    /// the same `size` to the free queue of that size.
    #[inline]
    pub fn free(&mut self, offset: u64, size: usize) {
        let size = Self::chunk_size(size);
        debug_assert!(offset as usize + size <= self.buf.len());
        debug_assert_ne!(offset, 0, "freeing the null offset");
        self.stats.frees += 1;
        if cfp_trace::enabled() {
            tc::MEMMAN_FREES.inc();
            tc::MEMMAN_USED_BYTES.sub(size as u64);
        }
        let head = self.free_heads[size];
        write_raw40(&mut self.buf[offset as usize..offset as usize + PTR_BYTES], head);
        self.free_heads[size] = offset;
        self.used -= size as u64;
        self.live -= 1;
    }

    /// Moves a chunk from `old_size` to `new_size` bytes, copying the first
    /// `min(old_size, new_size)` bytes. Returns the new offset (which may
    /// equal the old one when the rounded sizes match).
    pub fn realloc(&mut self, offset: u64, old_size: usize, new_size: usize) -> u64 {
        let (old_chunk, new_chunk) = (Self::chunk_size(old_size), Self::chunk_size(new_size));
        if old_chunk == new_chunk {
            return offset;
        }
        if new_chunk > old_chunk {
            self.stats.grows += 1;
            if cfp_trace::enabled() {
                tc::MEMMAN_GROWS.inc();
            }
        } else {
            self.stats.shrinks += 1;
            if cfp_trace::enabled() {
                tc::MEMMAN_SHRINKS.inc();
            }
        }
        let new_off = self.alloc(new_size);
        let n = old_size.min(new_size);
        self.buf.copy_within(offset as usize..offset as usize + n, new_off as usize);
        self.free(offset, old_size);
        new_off
    }

    /// Immutable view of `len` bytes starting at `offset`.
    #[inline]
    pub fn bytes(&self, offset: u64, len: usize) -> &[u8] {
        &self.buf[offset as usize..offset as usize + len]
    }

    /// Mutable view of `len` bytes starting at `offset`.
    #[inline]
    pub fn bytes_mut(&mut self, offset: u64, len: usize) -> &mut [u8] {
        &mut self.buf[offset as usize..offset as usize + len]
    }

    /// View from `offset` to the end of the arena, for decoding nodes whose
    /// length is only known after reading their first byte.
    #[inline]
    pub fn tail(&self, offset: u64) -> &[u8] {
        &self.buf[offset as usize..]
    }

    /// One byte at `offset`.
    #[inline]
    pub fn byte(&self, offset: u64) -> u8 {
        self.buf[offset as usize]
    }

    /// Total bytes the arena has carved out of its buffer (used + freed
    /// chunks): the high-water mark of memory consumption.
    pub fn footprint(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Bytes of capacity actually reserved from the OS.
    pub fn reserved(&self) -> u64 {
        self.buf.capacity() as u64
    }

    /// Bytes in live chunks (after rounding to chunk sizes).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of live allocations.
    pub fn live_allocs(&self) -> u64 {
        self.live
    }

    /// Number of free chunks currently queued for `size` (after rounding).
    pub fn free_chunks(&self, size: usize) -> usize {
        let size = Self::chunk_size(size);
        let mut n = 0;
        let mut cur = self.free_heads[size];
        while cur != 0 {
            n += 1;
            cur = read_raw40(&self.buf[cur as usize..cur as usize + PTR_BYTES]);
        }
        n
    }

    /// Bytes sitting in free queues: carved memory not currently holding a
    /// live chunk (the fragmentation the Appendix-A design bounds by
    /// recycling same-size chunks).
    pub fn free_bytes(&self) -> u64 {
        self.footprint() - 1 - self.used
    }

    /// Fraction of carved memory that is free-queue fragmentation.
    pub fn fragmentation(&self) -> f64 {
        let carved = self.footprint().saturating_sub(1);
        if carved == 0 {
            0.0
        } else {
            self.free_bytes() as f64 / carved as f64
        }
    }

    /// Event statistics for this arena since its creation.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        // Unwind this arena's contribution to the global memory gauges so
        // a long-lived profile session is not inflated by dead arenas.
        // The gauges saturate at zero, so an arena whose lifetime straddles
        // a set_enabled flip cannot underflow them.
        if cfp_trace::enabled() {
            tc::MEMMAN_USED_BYTES.sub(self.used);
            tc::MEMMAN_FOOTPRINT_BYTES.sub(self.footprint().saturating_sub(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_nonzero_and_distinct() {
        let mut a = Arena::new();
        let x = a.alloc(7);
        let y = a.alloc(7);
        assert_ne!(x, 0);
        assert_ne!(y, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn free_then_alloc_reuses_chunk() {
        let mut a = Arena::new();
        let x = a.alloc(10);
        let _y = a.alloc(10);
        a.free(x, 10);
        let z = a.alloc(10);
        assert_eq!(z, x, "freed chunk should be recycled");
    }

    #[test]
    fn free_queues_are_lifo_per_size() {
        let mut a = Arena::new();
        let x = a.alloc(8);
        let y = a.alloc(8);
        let z = a.alloc(12);
        a.free(x, 8);
        a.free(y, 8);
        a.free(z, 12);
        assert_eq!(a.alloc(8), y);
        assert_eq!(a.alloc(8), x);
        assert_eq!(a.alloc(12), z);
    }

    #[test]
    fn small_requests_round_up_to_min_chunk() {
        let mut a = Arena::new();
        let x = a.alloc(1);
        let y = a.alloc(1);
        assert!(y - x >= MIN_CHUNK as u64, "1-byte chunks must not overlap the free link");
        a.free(x, 1);
        assert_eq!(a.alloc(3), x, "sizes 1 and 3 share the rounded chunk class");
    }

    #[test]
    fn realloc_copies_contents() {
        let mut a = Arena::new();
        let x = a.alloc(7);
        a.bytes_mut(x, 7).copy_from_slice(&[1, 2, 3, 4, 5, 6, 7]);
        let y = a.realloc(x, 7, 12);
        assert_ne!(x, y);
        assert_eq!(&a.bytes(y, 12)[..7], &[1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn realloc_shrinking_keeps_prefix() {
        let mut a = Arena::new();
        let x = a.alloc(12);
        a.bytes_mut(x, 12).copy_from_slice(&[9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 11, 12]);
        let y = a.realloc(x, 12, 6);
        assert_eq!(a.bytes(y, 6), &[9, 8, 7, 6, 5, 4]);
    }

    #[test]
    fn realloc_same_rounded_size_is_a_noop() {
        let mut a = Arena::new();
        let x = a.alloc(7);
        assert_eq!(a.realloc(x, 7, 7), x);
        let y = a.alloc(2);
        assert_eq!(a.realloc(y, 2, 4), y, "2 and 4 both round to MIN_CHUNK");
    }

    #[test]
    fn used_tracks_rounded_live_bytes() {
        let mut a = Arena::new();
        assert_eq!(a.used(), 0);
        let x = a.alloc(7);
        let y = a.alloc(3); // rounds to 5
        assert_eq!(a.used(), 12);
        a.free(x, 7);
        assert_eq!(a.used(), 5);
        a.free(y, 3);
        assert_eq!(a.used(), 0);
        assert_eq!(a.live_allocs(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_CHUNK")]
    fn oversized_requests_panic() {
        let mut a = Arena::new();
        let _ = a.alloc(MAX_CHUNK + 1);
    }

    #[test]
    fn free_queue_accounting_is_consistent() {
        let mut a = Arena::new();
        let offs: Vec<u64> = (0..10).map(|_| a.alloc(8)).collect();
        assert_eq!(a.free_chunks(8), 0);
        assert_eq!(a.free_bytes(), 0);
        for &o in &offs[..4] {
            a.free(o, 8);
        }
        assert_eq!(a.free_chunks(8), 4);
        assert_eq!(a.free_bytes(), 32);
        assert!((a.fragmentation() - 32.0 / 80.0).abs() < 1e-12);
        // Recycling drains the queue.
        let _ = a.alloc(8);
        assert_eq!(a.free_chunks(8), 3);
    }

    #[test]
    fn stats_split_queue_hits_from_bump_allocs() {
        let mut a = Arena::new();
        let x = a.alloc(10);
        let _y = a.alloc(10);
        a.free(x, 10);
        let _z = a.alloc(10); // recycles x
        let s = a.stats();
        assert_eq!(s.allocs, 3);
        assert_eq!(s.frees, 1);
        assert_eq!(s.queue_hits, 1);
        assert_eq!(s.bump_allocs, 2);
        assert_eq!(s.queue_hits + s.bump_allocs, s.allocs);
        assert_eq!(s.allocs - s.frees, a.live_allocs());
    }

    #[test]
    fn stats_count_grows_and_shrinks() {
        let mut a = Arena::new();
        let x = a.alloc(7);
        let y = a.realloc(x, 7, 20); // grow: alloc + free + grow
        let z = a.realloc(y, 20, 6); // shrink
        let _same = a.realloc(z, 6, 6); // same chunk class: no-op
        let w = a.alloc(2);
        let _same = a.realloc(w, 2, 4); // 2 and 4 both round to MIN_CHUNK: no-op
        let s = a.stats();
        assert_eq!(s.grows, 1);
        assert_eq!(s.shrinks, 1);
        assert_eq!(s.allocs, 4, "realloc's internal allocs are counted");
        assert_eq!(s.frees, 2, "realloc's internal frees are counted");
        assert_eq!(s.allocs - s.frees, a.live_allocs());
    }

    #[test]
    fn stats_agree_with_live_and_free_byte_accounting() {
        let mut a = Arena::new();
        let offs: Vec<(u64, usize)> =
            (0..20).map(|i| (a.alloc(5 + (i % 8)), 5 + (i % 8))).collect();
        for &(o, sz) in offs.iter().take(8) {
            a.free(o, sz);
        }
        let s = a.stats();
        assert_eq!(s.allocs, 20);
        assert_eq!(s.frees, 8);
        assert_eq!(a.live_allocs(), 12);
        assert_eq!(s.allocs - s.frees, a.live_allocs());
        // free_bytes must equal the rounded sizes of the freed chunks.
        let freed: u64 = offs.iter().take(8).map(|&(_, sz)| sz.max(MIN_CHUNK) as u64).sum();
        assert_eq!(a.free_bytes(), freed);
        assert_eq!(a.footprint() - 1, a.used() + a.free_bytes());
    }

    #[test]
    fn offsets_respect_null_and_embed_marker_reservations() {
        use cfp_encoding::ptr40::{EMBED_MARKER, MAX_OFFSET};
        let mut a = Arena::new();
        for i in 0..200 {
            let off = a.alloc(5 + (i % 36));
            assert_ne!(off, 0, "offset 0 is the null pointer");
            assert!(off <= MAX_OFFSET);
            assert_ne!(
                (off >> 32) as u8,
                EMBED_MARKER,
                "top pointer byte 0xFF is reserved for embedded leaves"
            );
        }
    }

    #[test]
    fn footprint_grows_monotonically() {
        let mut a = Arena::new();
        let before = a.footprint();
        let x = a.alloc(24);
        assert_eq!(a.footprint(), before + 24);
        a.free(x, 24);
        assert_eq!(a.footprint(), before + 24, "free never shrinks the arena");
    }

    /// Property tests require the optional `proptest` dependency,
    /// which offline builds cannot fetch. Enable with
    /// `--features proptest` after restoring the dev-dependency
    /// (see README § Offline builds).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        proptest! {
            /// Random alloc/free/realloc sequences never hand out overlapping
            /// live chunks and preserve chunk contents across reallocs.
            #[test]
            fn prop_no_overlap_and_contents_survive(
                ops in proptest::collection::vec((0u8..3, 1usize..=MAX_CHUNK, any::<u8>()), 1..200)
            ) {
                let mut a = Arena::new();
                // offset -> (size, fill byte)
                let mut live: HashMap<u64, (usize, u8)> = HashMap::new();
                let mut order: Vec<u64> = Vec::new();
                for (op, size, fill) in ops {
                    match op {
                        0 => {
                            let off = a.alloc(size);
                            for &o in order.iter() {
                                let (s, _) = live[&o];
                                let s = s.max(MIN_CHUNK) as u64;
                                let sz = size.max(MIN_CHUNK) as u64;
                                prop_assert!(off + sz <= o || o + s <= off,
                                    "chunk {} overlaps live chunk {}", off, o);
                            }
                            for b in a.bytes_mut(off, size) { *b = fill; }
                            live.insert(off, (size, fill));
                            order.push(off);
                        }
                        1 => {
                            if let Some(off) = order.pop() {
                                let (s, f) = live.remove(&off).unwrap();
                                prop_assert!(a.bytes(off, s).iter().all(|&b| b == f),
                                    "contents changed before free");
                                a.free(off, s);
                            }
                        }
                        _ => {
                            if let Some(off) = order.pop() {
                                let (s, f) = live.remove(&off).unwrap();
                                let new_off = a.realloc(off, s, size);
                                let kept = s.min(size);
                                prop_assert!(a.bytes(new_off, kept).iter().all(|&b| b == f),
                                    "contents lost in realloc");
                                for b in a.bytes_mut(new_off, size) { *b = fill; }
                                live.insert(new_off, (size, fill));
                                order.push(new_off);
                            }
                        }
                    }
                }
                // All remaining live chunks still hold their fill bytes.
                for (&off, &(s, f)) in &live {
                    prop_assert!(a.bytes(off, s).iter().all(|&b| b == f));
                }
            }
        }
    }
}
