//! The CFP-growth memory manager (Appendix A of the paper).
//!
//! Compressed CFP-tree nodes are variable-sized (roughly 2–26 bytes) and
//! *change size* as transactions are inserted: a pcount grows past a byte
//! boundary, a pointer appears, a chain splits. A general-purpose allocator
//! would pad, fragment, and burn a `malloc` call per node; the paper instead
//! uses a purpose-built manager that
//!
//! 1. avoids expensive allocation calls when creating nodes,
//! 2. enables small (40-bit) pointers, because every node lives in one
//!    contiguous arena addressed by offset, and
//! 3. provides unpadded chunks, so a 7-byte node costs exactly 7 bytes.
//!
//! The design follows Figure 9: the arena is split into *used* and *unused*
//! memory by a bump pointer (`next-free`). Freed chunks of each size are
//! threaded into per-size queues; the link to the next free chunk is stored
//! in the first 5 bytes of the free chunk itself, so the free lists cost no
//! extra memory. When a node grows or shrinks from `b1` to `b2` bytes, a
//! chunk is dequeued from the `b2` queue (or carved at the bump pointer),
//! the node is copied, and the old `b1` chunk is enqueued on the `b1` queue.
//!
//! Offsets returned by the arena are never 0 (reserved for the null
//! pointer) and never have `0xFF` as the most significant of their five
//! pointer bytes (reserved for the embedded-leaf marker, §3.3) — the arena
//! would have to approach a terabyte before that mattered.
//!
//! # Failure model
//!
//! Running out of memory is a runtime condition, not a bug, so the arena
//! exposes fallible entry points: [`Arena::try_alloc`] and
//! [`Arena::try_realloc`] return an [`AllocError`] when the 40-bit
//! address space runs out, when a configured [`MemoryBudget`] would be
//! exceeded, or when a `cfp-fault` failpoint (`"memman.alloc"`) injects
//! the condition. A failed call leaves the arena fully usable: no
//! accounting is touched before all checks pass. The panicking
//! [`alloc`](Arena::alloc)/[`realloc`](Arena::realloc) wrappers remain
//! for contexts that treat exhaustion as fatal (tests, ad-hoc tools).
//!
//! Two recovery hooks build on that: [`Arena::compact`] returns trailing
//! free chunks to the OS-facing footprint (live chunks never move, so
//! offsets stay valid), and a [`BudgetPool`] shares one byte limit
//! between several arenas — together they let the mining layers retry,
//! degrade, or partition a run instead of aborting it (see
//! [`ArenaOptions`]).
//!
//! Misuse, by contrast, stays a programming error: freeing the same
//! chunk twice corrupts the free queue into a cycle, so debug builds
//! `debug_assert!` against it by scanning the size's free queue on every
//! [`free`](Arena::free) (release builds skip the scan).

//! ```
//! use cfp_memman::Arena;
//!
//! let mut arena = Arena::new();
//! let a = arena.alloc(7);
//! arena.bytes_mut(a, 7).copy_from_slice(b"sevenby");
//! let b = arena.realloc(a, 7, 12); // node grew past a byte boundary
//! assert_eq!(&arena.bytes(b, 12)[..7], b"sevenby");
//! arena.free(b, 12);
//! assert_eq!(arena.alloc(12), b, "freed chunks are recycled");
//! ```

#![warn(missing_docs)]

use cfp_encoding::ptr40::{read_raw40, write_raw40, MAX_OFFSET, PTR_BYTES};
use cfp_trace::counters as tc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Smallest chunk the arena hands out. A free chunk must be able to hold a
/// 5-byte next-free link, so requests below this are rounded up.
pub const MIN_CHUNK: usize = PTR_BYTES;

/// Largest chunk the arena manages through free queues. Standard nodes top
/// out at 24 bytes and chain nodes at 27; 40 leaves headroom.
pub const MAX_CHUNK: usize = 40;

/// A byte cap on how much memory an [`Arena`] may carve from the OS.
///
/// The budget bounds the arena's *footprint* (total carved chunk bytes,
/// the bump high-water mark) — not the live bytes — because carved
/// memory is what the process actually pays for. Recycling free-queue
/// chunks never consumes budget; only bump allocations do, checked
/// before any state changes so a refused allocation leaves the arena
/// usable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Maximum carved bytes the arena may reach.
    pub bytes: u64,
}

impl MemoryBudget {
    /// A budget of `bytes` carved bytes.
    pub fn new(bytes: u64) -> Self {
        MemoryBudget { bytes }
    }
}

/// What a participant is holding pool memory *for*.
///
/// Every arena (and every out-of-arena charge, see
/// [`BudgetPool::charge_external`]) is tagged with the pipeline component
/// it serves, so a run report can say where the bytes went instead of
/// presenting one opaque total. The labels mirror the mining pipeline:
/// the initial build tree, the per-suffix conditional trees, the flat
/// CFP-array buffers, tid-lists (vertical baselines / future out-of-core
/// spilling), and scratch buffers. [`Component::Other`] is the default
/// for untagged participants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Component {
    /// The initial CFP-tree built from the database.
    BuildTree,
    /// Conditional CFP-trees built during the mine-phase recursion.
    CondTrees,
    /// CFP-array buffers (the converted top-level array and every
    /// conditional array).
    CondArrays,
    /// Transaction-id lists (vertical-format baselines, out-of-core
    /// spill candidates).
    TidLists,
    /// Scratch buffers (recycled arenas between tasks, emit buffers).
    Scratch,
    /// Out-of-core spill buffers: partition arrays loaded back from disk
    /// by the spill rung, charged externally so reports can attribute the
    /// borrowed file bytes.
    Spill,
    /// Anything not explicitly tagged.
    #[default]
    Other,
}

impl Component {
    /// Every component, in report order.
    pub const ALL: [Component; 7] = [
        Component::BuildTree,
        Component::CondTrees,
        Component::CondArrays,
        Component::TidLists,
        Component::Scratch,
        Component::Spill,
        Component::Other,
    ];

    /// Stable report label of this component.
    pub fn name(self) -> &'static str {
        match self {
            Component::BuildTree => "build-tree",
            Component::CondTrees => "cond-trees",
            Component::CondArrays => "cond-arrays",
            Component::TidLists => "tid-lists",
            Component::Scratch => "scratch",
            Component::Spill => "spill",
            Component::Other => "other",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        match self {
            Component::BuildTree => 0,
            Component::CondTrees => 1,
            Component::CondArrays => 2,
            Component::TidLists => 3,
            Component::Scratch => 4,
            Component::Spill => 5,
            Component::Other => 6,
        }
    }
}

/// Point-in-time view of a [`BudgetPool`]'s accounting, for memory
/// reports. Captured with [`BudgetPool::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// The pool's byte limit (`u64::MAX` for an unlimited pool).
    pub limit: u64,
    /// Metered bytes currently reserved (arena carved bytes).
    pub used: u64,
    /// High-water mark of metered bytes.
    pub peak: u64,
    /// Unmetered bytes currently charged (flat buffers tracked for
    /// attribution only; they never count against the limit).
    pub external_used: u64,
    /// Per-component `(label, live, peak)` rows, in [`Component::ALL`]
    /// order. The sum of `live` over all rows equals
    /// `used + external_used` exactly — the attribution audit invariant.
    pub components: Vec<(&'static str, u64, u64)>,
}

impl PoolSnapshot {
    /// Total bytes the pool accounts for right now (metered + external).
    pub fn accounted(&self) -> u64 {
        self.used + self.external_used
    }

    /// Sum of per-component live bytes; must equal
    /// [`accounted`](Self::accounted) exactly.
    pub fn components_total(&self) -> u64 {
        self.components.iter().map(|&(_, live, _)| live).sum()
    }
}

/// A byte budget *shared* between several arenas (and threads).
///
/// Where [`MemoryBudget`] caps one arena in isolation, a `BudgetPool` is a
/// single atomic pool that every participating arena reserves its carved
/// bytes from, so the *combined* footprint of all of them stays under one
/// limit. This is how the parallel miner keeps `threads × conditional
/// trees` from oversubscribing the budget the user asked for: the build
/// tree and every worker's conditional trees draw from the same pool.
///
/// Clones share the same pool (`Arc` inside). Reservations are released
/// when an arena is dropped or compacted, and the high-water mark is
/// recorded in [`peak`](BudgetPool::peak).
#[derive(Clone, Debug)]
pub struct BudgetPool {
    inner: Arc<PoolInner>,
}

const N_COMPONENTS: usize = Component::ALL.len();

#[derive(Debug)]
struct PoolInner {
    limit: u64,
    used: AtomicU64,
    peak: AtomicU64,
    reserved_total: AtomicU64,
    compact_reclaimed: AtomicU64,
    /// Unmetered attribution charges (never count against `limit`).
    external_used: AtomicU64,
    /// Per-component live bytes (metered + external).
    comp_used: [AtomicU64; N_COMPONENTS],
    /// Per-component high-water marks.
    comp_peak: [AtomicU64; N_COMPONENTS],
}

impl BudgetPool {
    /// A pool of `limit` bytes shared by every clone.
    pub fn new(limit: u64) -> Self {
        BudgetPool {
            inner: Arc::new(PoolInner {
                limit,
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                reserved_total: AtomicU64::new(0),
                compact_reclaimed: AtomicU64::new(0),
                external_used: AtomicU64::new(0),
                comp_used: Default::default(),
                comp_peak: Default::default(),
            }),
        }
    }

    /// A pool that never refuses a reservation (`u64::MAX` limit) —
    /// attribution accounting without admission control, for runs that
    /// want a memory report but no budget.
    pub fn unlimited() -> Self {
        Self::new(u64::MAX)
    }

    /// Reserves `bytes` from the pool; `false` when the limit would be
    /// exceeded (and nothing is reserved). Charged to
    /// [`Component::Other`]; tagged arenas use
    /// [`try_reserve_for`](Self::try_reserve_for).
    pub fn try_reserve(&self, bytes: u64) -> bool {
        self.try_reserve_for(Component::Other, bytes)
    }

    /// Reserves `bytes` on behalf of `component`; `false` when the limit
    /// would be exceeded (and nothing is reserved or attributed).
    pub fn try_reserve_for(&self, component: Component, bytes: u64) -> bool {
        let mut used = self.inner.used.load(Ordering::Relaxed);
        loop {
            let Some(next) = used.checked_add(bytes) else { return false };
            if next > self.inner.limit {
                return false;
            }
            match self.inner.used.compare_exchange_weak(
                used,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(next, Ordering::Relaxed);
                    self.inner.reserved_total.fetch_add(bytes, Ordering::Relaxed);
                    self.attribute(component, bytes);
                    if cfp_trace::enabled() {
                        tc::MEMMAN_POOL_PEAK.record(next);
                    }
                    return true;
                }
                Err(actual) => used = actual,
            }
        }
    }

    /// Returns `bytes` to the pool (saturating: releasing more than was
    /// reserved clamps to zero rather than underflowing). Attributed to
    /// [`Component::Other`]; tagged arenas use
    /// [`release_for`](Self::release_for).
    pub fn release(&self, bytes: u64) {
        self.release_for(Component::Other, bytes);
    }

    /// Returns `bytes` reserved on behalf of `component` to the pool.
    pub fn release_for(&self, component: Component, bytes: u64) {
        let _ = self
            .inner
            .used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |u| Some(u.saturating_sub(bytes)));
        self.unattribute(component, bytes);
    }

    /// Records `bytes` held by `component` *outside* any arena (flat
    /// `Vec` buffers like CFP-arrays). External charges flow into the
    /// per-component gauges and the attribution audit but never count
    /// against the pool's limit, so arming attribution cannot change
    /// admission decisions or mining results.
    pub fn charge_external(&self, component: Component, bytes: u64) {
        self.inner.external_used.fetch_add(bytes, Ordering::Relaxed);
        self.attribute(component, bytes);
    }

    /// Releases an external charge made with
    /// [`charge_external`](Self::charge_external).
    pub fn release_external(&self, component: Component, bytes: u64) {
        let _ = self
            .inner
            .external_used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |u| Some(u.saturating_sub(bytes)));
        self.unattribute(component, bytes);
    }

    fn attribute(&self, component: Component, bytes: u64) {
        let i = component.idx();
        let next = self.inner.comp_used[i].fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.comp_peak[i].fetch_max(next, Ordering::Relaxed);
    }

    fn unattribute(&self, component: Component, bytes: u64) {
        let _ = self.inner.comp_used[component.idx()].fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |u| Some(u.saturating_sub(bytes)),
        );
    }

    /// The pool's byte limit.
    pub fn limit(&self) -> u64 {
        self.inner.limit
    }

    /// Bytes currently reserved across all participants.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// High-water mark of reserved bytes over the pool's lifetime.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Cumulative bytes ever reserved (never decremented by releases).
    /// Lets tests and reports see that a participant charged the pool
    /// even after it released everything again.
    pub fn reserved_total(&self) -> u64 {
        self.inner.reserved_total.load(Ordering::Relaxed)
    }

    /// Total bytes returned to the pool by [`Arena::compact`] calls, for
    /// degradation reports.
    pub fn compact_reclaimed(&self) -> u64 {
        self.inner.compact_reclaimed.load(Ordering::Relaxed)
    }

    /// Live bytes currently attributed to `component` (metered carved
    /// bytes plus external charges).
    pub fn component_used(&self, component: Component) -> u64 {
        self.inner.comp_used[component.idx()].load(Ordering::Relaxed)
    }

    /// High-water mark of bytes attributed to `component`.
    pub fn component_peak(&self, component: Component) -> u64 {
        self.inner.comp_peak[component.idx()].load(Ordering::Relaxed)
    }

    /// Unmetered bytes currently charged via
    /// [`charge_external`](Self::charge_external).
    pub fn external_used(&self) -> u64 {
        self.inner.external_used.load(Ordering::Relaxed)
    }

    /// Captures the pool's accounting for a memory report. The snapshot
    /// upholds the audit invariant `components_total() == accounted()`
    /// whenever every participant reserves and releases through the
    /// component-aware entry points (reads are relaxed, so a snapshot
    /// taken *while* other threads allocate may be transiently off; take
    /// it at a quiescent point).
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            limit: self.limit(),
            used: self.used(),
            peak: self.peak(),
            external_used: self.external_used(),
            components: Component::ALL
                .iter()
                .map(|&c| (c.name(), self.component_used(c), self.component_peak(c)))
                .collect(),
        }
    }

    fn release_reclaimed(&self, component: Component, bytes: u64) {
        self.release_for(component, bytes);
        self.inner.compact_reclaimed.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Construction-time knobs for an [`Arena`], threaded down from the
/// mining layers so recovery policies can arm them per run.
#[derive(Clone, Debug, Default)]
pub struct ArenaOptions {
    /// Per-arena carved-byte cap (see [`MemoryBudget`]).
    pub budget: Option<MemoryBudget>,
    /// Shared pool this arena reserves its carved bytes from (see
    /// [`BudgetPool`]).
    pub pool: Option<BudgetPool>,
    /// When an allocation is refused, [`Arena::compact`] once and retry
    /// before reporting failure.
    pub compact_on_pressure: bool,
    /// Attribution label for this arena's pool reservations (see
    /// [`Component`]); purely observational, never changes admission.
    pub component: Component,
}

/// Why an allocation could not be satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocErrorKind {
    /// The bump pointer reached the end of the 40-bit address space.
    AddressSpaceExhausted,
    /// Carving the chunk would exceed the configured [`MemoryBudget`].
    BudgetExceeded,
    /// A `cfp-fault` failpoint injected the failure (tests only).
    Injected,
}

/// A failed [`Arena::try_alloc`]/[`Arena::try_realloc`].
///
/// Small and `Copy` so the `Result` stays cheap on the allocation hot
/// path; convert into the pipeline-wide `CfpError` (via `From`) at the
/// phase boundary where the failing phase name is known.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocError {
    /// What ran out.
    pub kind: AllocErrorKind,
    /// Rounded chunk bytes the caller asked for.
    pub requested: u64,
    /// Carved bytes at the moment of failure.
    pub footprint: u64,
    /// The budget in force (0 when no budget was set).
    pub limit: u64,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            AllocErrorKind::AddressSpaceExhausted => write!(
                f,
                "arena exhausted the 40-bit address space ({} bytes carved, {} requested)",
                self.footprint, self.requested
            ),
            AllocErrorKind::BudgetExceeded => write!(
                f,
                "memory budget of {} bytes exceeded ({} carved, {} requested)",
                self.limit, self.footprint, self.requested
            ),
            AllocErrorKind::Injected => write!(
                f,
                "injected allocation failure ({} bytes carved, {} requested)",
                self.footprint, self.requested
            ),
        }
    }
}

impl std::error::Error for AllocError {}

impl From<AllocError> for cfp_fault::CfpError {
    fn from(e: AllocError) -> Self {
        cfp_fault::CfpError::MemoryExhausted {
            phase: "",
            requested: e.requested,
            footprint: e.footprint,
            limit: e.limit,
        }
    }
}

/// Per-arena event statistics.
///
/// Always maintained (plain integer adds, no atomics), so tests can make
/// deterministic assertions per arena regardless of what other threads or
/// arenas do. The global `cfp-trace` registry mirrors the same events,
/// gated on `cfp_trace::enabled()`, for cross-arena run reports.
///
/// Invariants: `allocs - frees == live_allocs()`, and
/// `queue_hits + bump_allocs == allocs`. A `realloc` that changes chunk
/// class counts as one alloc, one free, and one grow *or* shrink.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total `alloc` calls (including those made inside `realloc`).
    pub allocs: u64,
    /// Total `free` calls (including those made inside `realloc`).
    pub frees: u64,
    /// Allocations served by recycling a free-queue chunk.
    pub queue_hits: u64,
    /// Allocations served by carving at the bump pointer.
    pub bump_allocs: u64,
    /// Reallocations that moved to a larger chunk class.
    pub grows: u64,
    /// Reallocations that moved to a smaller chunk class.
    pub shrinks: u64,
    /// [`Arena::compact`] calls (explicit or triggered by
    /// [`ArenaOptions::compact_on_pressure`]).
    pub compactions: u64,
    /// Total bytes returned to the OS-facing footprint by compaction.
    pub compact_reclaimed: u64,
    /// [`Arena::reset`] calls (arena recycled for a new structure).
    pub resets: u64,
    /// High-water mark of live (used) bytes in *this* arena since its
    /// creation or the last [`Arena::reset_with`] with
    /// [`StatsReset::ClearPeaks`].
    pub peak_used: u64,
    /// High-water mark of carved bytes in *this* arena, same window as
    /// [`peak_used`](Self::peak_used). The run-level peak across all
    /// arenas lives in [`BudgetPool::peak`].
    pub peak_footprint: u64,
}

/// What [`Arena::reset_with`] does to the per-instance high-water marks
/// in [`ArenaStats`].
///
/// Per-task arena recycling reuses one arena for many conditional trees;
/// keeping the peaks across resets would smear the largest task's peak
/// over every later task's report. `ClearPeaks` gives each task a fresh
/// window while the cumulative event counters (and the pool's run-level
/// peak) survive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsReset {
    /// Keep the high-water marks (the [`Arena::reset`] default).
    Keep,
    /// Zero `peak_used`/`peak_footprint` for a fresh per-task window.
    ClearPeaks,
}

/// A bump-pointer arena with per-size free-chunk queues.
#[derive(Debug)]
pub struct Arena {
    buf: Vec<u8>,
    /// Head of the free-chunk queue for each chunk size (index = size).
    free_heads: [u64; MAX_CHUNK + 1],
    /// Bytes currently handed out (allocated minus freed), after rounding.
    used: u64,
    /// Number of live allocations, for leak checks in tests.
    live: u64,
    /// Event counts for this arena.
    stats: ArenaStats,
    /// Optional cap on carved bytes, checked on every bump allocation.
    budget: Option<MemoryBudget>,
    /// Optional shared pool carved bytes are reserved from.
    pool: Option<BudgetPool>,
    /// Compact-and-retry once when an allocation is refused.
    compact_on_pressure: bool,
    /// Attribution label for pool reservations.
    component: Component,
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an arena with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        let mut buf = Vec::with_capacity(cap.max(1));
        // Offset 0 is the null pointer; burn one byte so it is never used.
        buf.push(0);
        Arena {
            buf,
            free_heads: [0; MAX_CHUNK + 1],
            used: 0,
            live: 0,
            stats: ArenaStats::default(),
            budget: None,
            pool: None,
            compact_on_pressure: false,
            component: Component::Other,
        }
    }

    /// Creates an empty arena capped at `budget` carved bytes.
    pub fn with_budget(budget: MemoryBudget) -> Self {
        let mut a = Self::new();
        a.budget = Some(budget);
        a
    }

    /// Creates an empty arena configured by `opts` (budget, shared pool,
    /// compact-on-pressure).
    pub fn with_options(opts: ArenaOptions) -> Self {
        let mut a = Self::new();
        a.budget = opts.budget;
        a.pool = opts.pool;
        a.compact_on_pressure = opts.compact_on_pressure;
        a.component = opts.component;
        a
    }

    /// The attribution label this arena charges its pool under.
    pub fn component(&self) -> Component {
        self.component
    }

    /// Sets or clears the carved-byte cap. Lowering the budget below the
    /// current footprint does not free anything; it only refuses further
    /// bump allocations.
    pub fn set_budget(&mut self, budget: Option<MemoryBudget>) {
        self.budget = budget;
    }

    /// The carved-byte cap currently in force, if any.
    pub fn budget(&self) -> Option<MemoryBudget> {
        self.budget
    }

    /// Rounds a requested size to the chunk size actually used.
    #[inline]
    fn chunk_size(size: usize) -> usize {
        assert!(size <= MAX_CHUNK, "allocation of {size} bytes exceeds MAX_CHUNK ({MAX_CHUNK})");
        size.max(MIN_CHUNK)
    }

    /// Allocates a chunk of at least `size` bytes and returns its offset,
    /// panicking on exhaustion. See [`try_alloc`](Self::try_alloc) for the
    /// fallible variant the pipeline uses.
    ///
    /// The chunk contents are unspecified (possibly stale bytes from a
    /// previous node); the caller is expected to overwrite them fully.
    #[inline]
    pub fn alloc(&mut self, size: usize) -> u64 {
        match self.try_alloc(size) {
            Ok(off) => off,
            Err(e) => panic!("{e}"),
        }
    }

    /// Allocates a chunk of at least `size` bytes and returns its offset,
    /// or an [`AllocError`] when the 40-bit address space or the
    /// configured [`MemoryBudget`] runs out.
    ///
    /// A failed call changes nothing: no accounting, no buffer growth —
    /// the arena remains fully usable, so callers can degrade (flush,
    /// shrink, report) instead of aborting.
    #[inline]
    pub fn try_alloc(&mut self, size: usize) -> Result<u64, AllocError> {
        let size = Self::chunk_size(size);
        if cfp_fault::should_fail("memman.alloc") {
            return Err(self.alloc_error(AllocErrorKind::Injected, size));
        }
        let head = self.free_heads[size];
        if head != 0 {
            self.used += size as u64;
            self.live += 1;
            self.stats.allocs += 1;
            self.stats.queue_hits += 1;
            self.stats.peak_used = self.stats.peak_used.max(self.used);
            if cfp_trace::enabled() {
                tc::MEMMAN_ALLOCS.inc();
                tc::MEMMAN_USED_BYTES.add(size as u64);
                tc::MEMMAN_QUEUE_HITS.inc();
            }
            let next = read_raw40(&self.buf[head as usize..head as usize + PTR_BYTES]);
            self.free_heads[size] = next;
            return Ok(head);
        }
        // Bump path: validate before touching any accounting. Under
        // `compact_on_pressure`, a refusal triggers one compaction and
        // one re-check before the failure is reported.
        if let Err(e) = self.admit_bump(size) {
            if cfp_trace::events::capturing() {
                cfp_trace::events::record(cfp_trace::EventKind::ArenaPressure {
                    requested: size as u64,
                });
            }
            if !self.compact_on_pressure || self.compact() == 0 {
                return Err(e);
            }
            self.admit_bump(size)?;
        }
        // Compaction may have moved the bump pointer, so read it after
        // admission.
        let off = self.buf.len() as u64;
        self.used += size as u64;
        self.live += 1;
        self.stats.allocs += 1;
        self.stats.bump_allocs += 1;
        self.stats.peak_used = self.stats.peak_used.max(self.used);
        self.stats.peak_footprint =
            self.stats.peak_footprint.max(self.footprint() - 1 + size as u64);
        if cfp_trace::enabled() {
            tc::MEMMAN_ALLOCS.inc();
            tc::MEMMAN_USED_BYTES.add(size as u64);
            tc::MEMMAN_BUMP_ALLOCS.inc();
            tc::MEMMAN_FOOTPRINT_BYTES.add(size as u64);
            tc::MEMMAN_PEAK_FOOTPRINT.record(tc::MEMMAN_FOOTPRINT_BYTES.get());
        }
        self.buf.resize(self.buf.len() + size, 0);
        Ok(off)
    }

    #[cold]
    fn alloc_error(&self, kind: AllocErrorKind, size: usize) -> AllocError {
        AllocError {
            kind,
            requested: size as u64,
            footprint: self.footprint().saturating_sub(1),
            limit: self.budget.map_or(0, |b| b.bytes),
        }
    }

    /// Checks whether carving `size` bytes at the bump pointer is
    /// admissible: 40-bit address space, the local budget, then the
    /// shared pool. On `Ok`, a pool reservation of `size` bytes is held;
    /// on `Err`, nothing is.
    fn admit_bump(&mut self, size: usize) -> Result<(), AllocError> {
        let off = self.buf.len() as u64;
        if off + size as u64 > MAX_OFFSET {
            return Err(self.alloc_error(AllocErrorKind::AddressSpaceExhausted, size));
        }
        if let Some(b) = self.budget {
            if self.footprint() - 1 + size as u64 > b.bytes {
                return Err(self.alloc_error(AllocErrorKind::BudgetExceeded, size));
            }
        }
        if let Some(pool) = &self.pool {
            if !pool.try_reserve_for(self.component, size as u64) {
                // Report the pool's view: the other participants' carved
                // bytes are what left no room, not this arena's own.
                return Err(AllocError {
                    kind: AllocErrorKind::BudgetExceeded,
                    requested: size as u64,
                    footprint: pool.used(),
                    limit: pool.limit(),
                });
            }
        }
        Ok(())
    }

    /// Returns trailing free chunks to the OS-facing footprint.
    ///
    /// Live chunks never move (offsets handed out stay valid), so the
    /// only memory compaction can return is the contiguous run of free
    /// chunks ending exactly at the bump pointer. The surviving free
    /// chunks are re-threaded into their per-size queues (lowest offset
    /// first, improving locality of later recycling). Returns the bytes
    /// reclaimed, released back to the budget/pool and subtracted from
    /// the footprint gauges.
    pub fn compact(&mut self) -> u64 {
        let mut chunks: Vec<(u64, usize)> = Vec::new();
        for size in MIN_CHUNK..=MAX_CHUNK {
            let mut cur = self.free_heads[size];
            while cur != 0 {
                let next = read_raw40(&self.buf[cur as usize..cur as usize + PTR_BYTES]);
                chunks.push((cur, size));
                cur = next;
            }
        }
        chunks.sort_unstable_by_key(|&(off, _)| off);
        let mut end = self.buf.len() as u64;
        let mut kept = chunks.len();
        while kept > 0 {
            let (off, size) = chunks[kept - 1];
            if off + size as u64 != end {
                break;
            }
            end = off;
            kept -= 1;
        }
        let reclaimed = self.buf.len() as u64 - end;
        self.stats.compactions += 1;
        if reclaimed == 0 {
            return 0;
        }
        self.buf.truncate(end as usize);
        self.free_heads = [0; MAX_CHUNK + 1];
        for &(off, size) in chunks[..kept].iter().rev() {
            let head = self.free_heads[size];
            write_raw40(&mut self.buf[off as usize..off as usize + PTR_BYTES], head);
            self.free_heads[size] = off;
        }
        self.stats.compact_reclaimed += reclaimed;
        if let Some(pool) = &self.pool {
            pool.release_reclaimed(self.component, reclaimed);
        }
        if cfp_trace::enabled() {
            tc::MEMMAN_COMPACTIONS.inc();
            tc::MEMMAN_COMPACT_RECLAIMED.add(reclaimed);
            tc::MEMMAN_FOOTPRINT_BYTES.sub(reclaimed);
            if cfp_trace::events::capturing() {
                cfp_trace::events::record(cfp_trace::EventKind::ArenaCompact { reclaimed });
            }
        }
        reclaimed
    }

    /// [`compact`](Self::compact), then returns spare `Vec` capacity to
    /// the OS. Returns the bytes compaction reclaimed.
    pub fn shrink_to_fit(&mut self) -> u64 {
        let reclaimed = self.compact();
        self.buf.shrink_to_fit();
        reclaimed
    }

    /// Empties the arena for reuse, keeping the buffer capacity.
    ///
    /// All outstanding offsets become invalid. The footprint drops back to
    /// the single burned null byte, the full carved reservation is released
    /// to the budget/pool and subtracted from the trace gauges (exactly as
    /// [`Drop`] would), and the free queues are cleared — but the `Vec`
    /// capacity is retained, so a recycled arena rebuilds without touching
    /// the OS allocator. Cumulative [`stats`](Self::stats) survive,
    /// including the per-instance high-water marks; the `resets` counter
    /// records the recycle. See [`reset_with`](Self::reset_with) to open
    /// a fresh peak window per recycle.
    pub fn reset(&mut self) {
        self.reset_with(StatsReset::Keep);
    }

    /// [`reset`](Self::reset) with explicit control over the
    /// per-instance high-water marks: [`StatsReset::ClearPeaks`] zeroes
    /// `peak_used`/`peak_footprint` so the next task's peak is measured
    /// on its own instead of inheriting the largest earlier task's. The
    /// run-level peak is unaffected — it lives in the shared
    /// [`BudgetPool`] (and the trace gauges).
    pub fn reset_with(&mut self, stats: StatsReset) {
        let carved = self.footprint().saturating_sub(1);
        if cfp_trace::enabled() {
            tc::MEMMAN_USED_BYTES.sub(self.used);
            tc::MEMMAN_FOOTPRINT_BYTES.sub(carved);
            tc::MEMMAN_RESETS.inc();
            if cfp_trace::events::capturing() {
                cfp_trace::events::record(cfp_trace::EventKind::ArenaReset);
            }
        }
        if let Some(pool) = &self.pool {
            pool.release_for(self.component, carved);
        }
        self.buf.truncate(1);
        self.free_heads = [0; MAX_CHUNK + 1];
        self.used = 0;
        self.live = 0;
        self.stats.resets += 1;
        if stats == StatsReset::ClearPeaks {
            self.stats.peak_used = 0;
            self.stats.peak_footprint = 0;
        }
    }

    /// The shared pool this arena reserves from, if any.
    pub fn pool(&self) -> Option<&BudgetPool> {
        self.pool.as_ref()
    }

    /// Returns a chunk previously obtained from [`alloc`](Self::alloc) with
    /// the same `size` to the free queue of that size.
    ///
    /// Freeing the same chunk twice would thread the free queue into a
    /// cycle and later hand the chunk out twice; debug builds scan the
    /// size's queue and `debug_assert!` against it (release builds trust
    /// the caller and skip the scan).
    #[inline]
    pub fn free(&mut self, offset: u64, size: usize) {
        let size = Self::chunk_size(size);
        debug_assert!(offset as usize + size <= self.buf.len());
        debug_assert_ne!(offset, 0, "freeing the null offset");
        #[cfg(debug_assertions)]
        {
            let mut cur = self.free_heads[size];
            while cur != 0 {
                debug_assert_ne!(
                    cur, offset,
                    "double free of chunk at offset {offset} (size {size})"
                );
                cur = read_raw40(&self.buf[cur as usize..cur as usize + PTR_BYTES]);
            }
        }
        self.stats.frees += 1;
        if cfp_trace::enabled() {
            tc::MEMMAN_FREES.inc();
            tc::MEMMAN_USED_BYTES.sub(size as u64);
        }
        let head = self.free_heads[size];
        write_raw40(&mut self.buf[offset as usize..offset as usize + PTR_BYTES], head);
        self.free_heads[size] = offset;
        self.used -= size as u64;
        self.live -= 1;
    }

    /// Moves a chunk from `old_size` to `new_size` bytes, copying the first
    /// `min(old_size, new_size)` bytes. Returns the new offset (which may
    /// equal the old one when the rounded sizes match). Panics on
    /// exhaustion; see [`try_realloc`](Self::try_realloc).
    pub fn realloc(&mut self, offset: u64, old_size: usize, new_size: usize) -> u64 {
        match self.try_realloc(offset, old_size, new_size) {
            Ok(off) => off,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`realloc`](Self::realloc): on error the original chunk at
    /// `offset` is untouched and still owned by the caller, so a grow that
    /// hits the budget can be handled without losing the node.
    pub fn try_realloc(
        &mut self,
        offset: u64,
        old_size: usize,
        new_size: usize,
    ) -> Result<u64, AllocError> {
        let (old_chunk, new_chunk) = (Self::chunk_size(old_size), Self::chunk_size(new_size));
        if old_chunk == new_chunk {
            return Ok(offset);
        }
        let new_off = self.try_alloc(new_size)?;
        if new_chunk > old_chunk {
            self.stats.grows += 1;
            if cfp_trace::enabled() {
                tc::MEMMAN_GROWS.inc();
            }
        } else {
            self.stats.shrinks += 1;
            if cfp_trace::enabled() {
                tc::MEMMAN_SHRINKS.inc();
            }
        }
        let n = old_size.min(new_size);
        self.buf.copy_within(offset as usize..offset as usize + n, new_off as usize);
        self.free(offset, old_size);
        Ok(new_off)
    }

    /// Immutable view of `len` bytes starting at `offset`.
    #[inline]
    pub fn bytes(&self, offset: u64, len: usize) -> &[u8] {
        &self.buf[offset as usize..offset as usize + len]
    }

    /// Mutable view of `len` bytes starting at `offset`.
    #[inline]
    pub fn bytes_mut(&mut self, offset: u64, len: usize) -> &mut [u8] {
        &mut self.buf[offset as usize..offset as usize + len]
    }

    /// View from `offset` to the end of the arena, for decoding nodes whose
    /// length is only known after reading their first byte.
    #[inline]
    pub fn tail(&self, offset: u64) -> &[u8] {
        &self.buf[offset as usize..]
    }

    /// One byte at `offset`.
    #[inline]
    pub fn byte(&self, offset: u64) -> u8 {
        self.buf[offset as usize]
    }

    /// Total bytes the arena has carved out of its buffer (used + freed
    /// chunks): the high-water mark of memory consumption.
    pub fn footprint(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Bytes of capacity actually reserved from the OS.
    pub fn reserved(&self) -> u64 {
        self.buf.capacity() as u64
    }

    /// Bytes in live chunks (after rounding to chunk sizes).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of live allocations.
    pub fn live_allocs(&self) -> u64 {
        self.live
    }

    /// Number of free chunks currently queued for `size` (after rounding).
    pub fn free_chunks(&self, size: usize) -> usize {
        let size = Self::chunk_size(size);
        let mut n = 0;
        let mut cur = self.free_heads[size];
        while cur != 0 {
            n += 1;
            cur = read_raw40(&self.buf[cur as usize..cur as usize + PTR_BYTES]);
        }
        n
    }

    /// Bytes sitting in free queues: carved memory not currently holding a
    /// live chunk (the fragmentation the Appendix-A design bounds by
    /// recycling same-size chunks).
    pub fn free_bytes(&self) -> u64 {
        self.footprint() - 1 - self.used
    }

    /// Fraction of carved memory that is free-queue fragmentation.
    pub fn fragmentation(&self) -> f64 {
        let carved = self.footprint().saturating_sub(1);
        if carved == 0 {
            0.0
        } else {
            self.free_bytes() as f64 / carved as f64
        }
    }

    /// Event statistics for this arena since its creation.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        // Unwind this arena's contribution to the global memory gauges so
        // a long-lived profile session is not inflated by dead arenas.
        // The gauges saturate at zero, so an arena whose lifetime straddles
        // a set_enabled flip cannot underflow them.
        if cfp_trace::enabled() {
            tc::MEMMAN_USED_BYTES.sub(self.used);
            tc::MEMMAN_FOOTPRINT_BYTES.sub(self.footprint().saturating_sub(1));
        }
        // Give the shared pool back everything this arena carved (the
        // reservation invariant is exactly `footprint() - 1`).
        if let Some(pool) = &self.pool {
            pool.release_for(self.component, self.footprint().saturating_sub(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_nonzero_and_distinct() {
        let mut a = Arena::new();
        let x = a.alloc(7);
        let y = a.alloc(7);
        assert_ne!(x, 0);
        assert_ne!(y, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn free_then_alloc_reuses_chunk() {
        let mut a = Arena::new();
        let x = a.alloc(10);
        let _y = a.alloc(10);
        a.free(x, 10);
        let z = a.alloc(10);
        assert_eq!(z, x, "freed chunk should be recycled");
    }

    #[test]
    fn free_queues_are_lifo_per_size() {
        let mut a = Arena::new();
        let x = a.alloc(8);
        let y = a.alloc(8);
        let z = a.alloc(12);
        a.free(x, 8);
        a.free(y, 8);
        a.free(z, 12);
        assert_eq!(a.alloc(8), y);
        assert_eq!(a.alloc(8), x);
        assert_eq!(a.alloc(12), z);
    }

    #[test]
    fn small_requests_round_up_to_min_chunk() {
        let mut a = Arena::new();
        let x = a.alloc(1);
        let y = a.alloc(1);
        assert!(y - x >= MIN_CHUNK as u64, "1-byte chunks must not overlap the free link");
        a.free(x, 1);
        assert_eq!(a.alloc(3), x, "sizes 1 and 3 share the rounded chunk class");
    }

    #[test]
    fn realloc_copies_contents() {
        let mut a = Arena::new();
        let x = a.alloc(7);
        a.bytes_mut(x, 7).copy_from_slice(&[1, 2, 3, 4, 5, 6, 7]);
        let y = a.realloc(x, 7, 12);
        assert_ne!(x, y);
        assert_eq!(&a.bytes(y, 12)[..7], &[1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn realloc_shrinking_keeps_prefix() {
        let mut a = Arena::new();
        let x = a.alloc(12);
        a.bytes_mut(x, 12).copy_from_slice(&[9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 11, 12]);
        let y = a.realloc(x, 12, 6);
        assert_eq!(a.bytes(y, 6), &[9, 8, 7, 6, 5, 4]);
    }

    #[test]
    fn realloc_same_rounded_size_is_a_noop() {
        let mut a = Arena::new();
        let x = a.alloc(7);
        assert_eq!(a.realloc(x, 7, 7), x);
        let y = a.alloc(2);
        assert_eq!(a.realloc(y, 2, 4), y, "2 and 4 both round to MIN_CHUNK");
    }

    #[test]
    fn used_tracks_rounded_live_bytes() {
        let mut a = Arena::new();
        assert_eq!(a.used(), 0);
        let x = a.alloc(7);
        let y = a.alloc(3); // rounds to 5
        assert_eq!(a.used(), 12);
        a.free(x, 7);
        assert_eq!(a.used(), 5);
        a.free(y, 3);
        assert_eq!(a.used(), 0);
        assert_eq!(a.live_allocs(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_CHUNK")]
    fn oversized_requests_panic() {
        let mut a = Arena::new();
        let _ = a.alloc(MAX_CHUNK + 1);
    }

    #[test]
    fn budget_refuses_excess_but_leaves_arena_usable() {
        let mut a = Arena::with_budget(MemoryBudget::new(64));
        let x = a.alloc(40);
        let y = a.alloc(24); // exactly at the 64-byte cap
        let before = (a.used(), a.live_allocs(), a.footprint(), a.stats());
        let err = a.try_alloc(8).unwrap_err();
        assert_eq!(err.kind, AllocErrorKind::BudgetExceeded);
        assert_eq!(err.limit, 64);
        assert_eq!(err.requested, 8);
        assert_eq!(err.footprint, 64);
        // Nothing changed: same accounting, and the arena still works.
        assert_eq!((a.used(), a.live_allocs(), a.footprint(), a.stats()), before);
        a.free(x, 40);
        assert_eq!(a.alloc(40), x, "recycling costs no budget and must succeed");
        a.free(y, 24);
        assert_eq!(a.live_allocs(), 1);
    }

    #[test]
    fn budget_counts_carved_not_live_bytes() {
        let mut a = Arena::with_budget(MemoryBudget::new(20));
        let x = a.alloc(10);
        a.free(x, 10);
        // 10 bytes carved (now in the free queue) + a fresh 12 would top 20,
        // and freed chunks of another class don't give the budget back.
        assert_eq!(a.try_alloc(12).unwrap_err().kind, AllocErrorKind::BudgetExceeded);
        // Same class recycles within the cap.
        assert_eq!(a.try_alloc(10).unwrap(), x);
    }

    #[test]
    fn set_budget_can_arm_and_disarm() {
        let mut a = Arena::new();
        let _ = a.alloc(24);
        a.set_budget(Some(MemoryBudget::new(24)));
        assert!(a.try_alloc(8).is_err());
        a.set_budget(None);
        assert!(a.try_alloc(8).is_ok());
    }

    #[test]
    fn failed_realloc_keeps_the_old_chunk() {
        let mut a = Arena::with_budget(MemoryBudget::new(8));
        let x = a.alloc(8);
        a.bytes_mut(x, 8).copy_from_slice(b"eightbyt");
        let err = a.try_realloc(x, 8, 16).unwrap_err();
        assert_eq!(err.kind, AllocErrorKind::BudgetExceeded);
        assert_eq!(a.bytes(x, 8), b"eightbyt", "old chunk must survive a failed grow");
        assert_eq!(a.live_allocs(), 1);
        assert_eq!(a.stats().grows, 0, "a failed grow is not a grow");
    }

    #[test]
    fn alloc_error_converts_to_cfp_error_with_phase() {
        let mut a = Arena::with_budget(MemoryBudget::new(4));
        let e: cfp_fault::CfpError =
            cfp_fault::CfpError::from(a.try_alloc(40).unwrap_err()).with_phase("build");
        assert_eq!(e.exit_code(), 4);
        match e {
            cfp_fault::CfpError::MemoryExhausted { phase, requested, limit, .. } => {
                assert_eq!(phase, "build");
                assert_eq!(requested, 40);
                assert_eq!(limit, 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_is_caught_in_debug_builds() {
        let mut a = Arena::new();
        let x = a.alloc(8);
        let _keep_queue_nonempty = a.alloc(8);
        a.free(x, 8);
        a.free(x, 8);
    }

    #[cfg(feature = "fault")]
    #[test]
    fn injected_alloc_failure_is_deterministic() {
        let mut a = Arena::new();
        cfp_fault::configure("memman.alloc", cfp_fault::FaultMode::Nth(3));
        assert!(a.try_alloc(8).is_ok());
        assert!(a.try_alloc(8).is_ok());
        let err = a.try_alloc(8).unwrap_err();
        assert_eq!(err.kind, AllocErrorKind::Injected);
        assert!(a.try_alloc(8).is_ok(), "only the third call fails");
        cfp_fault::clear("memman.alloc");
    }

    #[test]
    fn free_queue_accounting_is_consistent() {
        let mut a = Arena::new();
        let offs: Vec<u64> = (0..10).map(|_| a.alloc(8)).collect();
        assert_eq!(a.free_chunks(8), 0);
        assert_eq!(a.free_bytes(), 0);
        for &o in &offs[..4] {
            a.free(o, 8);
        }
        assert_eq!(a.free_chunks(8), 4);
        assert_eq!(a.free_bytes(), 32);
        assert!((a.fragmentation() - 32.0 / 80.0).abs() < 1e-12);
        // Recycling drains the queue.
        let _ = a.alloc(8);
        assert_eq!(a.free_chunks(8), 3);
    }

    #[test]
    fn stats_split_queue_hits_from_bump_allocs() {
        let mut a = Arena::new();
        let x = a.alloc(10);
        let _y = a.alloc(10);
        a.free(x, 10);
        let _z = a.alloc(10); // recycles x
        let s = a.stats();
        assert_eq!(s.allocs, 3);
        assert_eq!(s.frees, 1);
        assert_eq!(s.queue_hits, 1);
        assert_eq!(s.bump_allocs, 2);
        assert_eq!(s.queue_hits + s.bump_allocs, s.allocs);
        assert_eq!(s.allocs - s.frees, a.live_allocs());
    }

    #[test]
    fn stats_count_grows_and_shrinks() {
        let mut a = Arena::new();
        let x = a.alloc(7);
        let y = a.realloc(x, 7, 20); // grow: alloc + free + grow
        let z = a.realloc(y, 20, 6); // shrink
        let _same = a.realloc(z, 6, 6); // same chunk class: no-op
        let w = a.alloc(2);
        let _same = a.realloc(w, 2, 4); // 2 and 4 both round to MIN_CHUNK: no-op
        let s = a.stats();
        assert_eq!(s.grows, 1);
        assert_eq!(s.shrinks, 1);
        assert_eq!(s.allocs, 4, "realloc's internal allocs are counted");
        assert_eq!(s.frees, 2, "realloc's internal frees are counted");
        assert_eq!(s.allocs - s.frees, a.live_allocs());
    }

    #[test]
    fn stats_agree_with_live_and_free_byte_accounting() {
        let mut a = Arena::new();
        let offs: Vec<(u64, usize)> =
            (0..20).map(|i| (a.alloc(5 + (i % 8)), 5 + (i % 8))).collect();
        for &(o, sz) in offs.iter().take(8) {
            a.free(o, sz);
        }
        let s = a.stats();
        assert_eq!(s.allocs, 20);
        assert_eq!(s.frees, 8);
        assert_eq!(a.live_allocs(), 12);
        assert_eq!(s.allocs - s.frees, a.live_allocs());
        // free_bytes must equal the rounded sizes of the freed chunks.
        let freed: u64 = offs.iter().take(8).map(|&(_, sz)| sz.max(MIN_CHUNK) as u64).sum();
        assert_eq!(a.free_bytes(), freed);
        assert_eq!(a.footprint() - 1, a.used() + a.free_bytes());
    }

    #[test]
    fn offsets_respect_null_and_embed_marker_reservations() {
        use cfp_encoding::ptr40::{EMBED_MARKER, MAX_OFFSET};
        let mut a = Arena::new();
        for i in 0..200 {
            let off = a.alloc(5 + (i % 36));
            assert_ne!(off, 0, "offset 0 is the null pointer");
            assert!(off <= MAX_OFFSET);
            assert_ne!(
                (off >> 32) as u8,
                EMBED_MARKER,
                "top pointer byte 0xFF is reserved for embedded leaves"
            );
        }
    }

    #[test]
    fn footprint_grows_monotonically() {
        let mut a = Arena::new();
        let before = a.footprint();
        let x = a.alloc(24);
        assert_eq!(a.footprint(), before + 24);
        a.free(x, 24);
        assert_eq!(a.footprint(), before + 24, "free never shrinks the arena");
    }

    #[test]
    fn compact_reclaims_trailing_free_chunks_only() {
        let mut a = Arena::new();
        let x = a.alloc(8);
        let y = a.alloc(12);
        let _live = a.alloc(24); // pins y away from the tail
        let z = a.alloc(16);
        a.bytes_mut(x, 8).copy_from_slice(b"aaaaaaaa");
        a.free(y, 12); // interior: must survive, queued
        a.free(z, 16); // tail: reclaimable
        let before = a.footprint();
        let reclaimed = a.compact();
        assert_eq!(reclaimed, 16);
        assert_eq!(a.footprint(), before - 16);
        assert_eq!(a.bytes(x, 8), b"aaaaaaaa", "live chunks never move");
        assert_eq!(a.free_chunks(12), 1, "interior free chunk stays queued");
        assert_eq!(a.free_chunks(16), 0);
        assert_eq!(a.alloc(12), y, "surviving queue still recycles");
        let s = a.stats();
        assert_eq!(s.compactions, 1);
        assert_eq!(s.compact_reclaimed, 16);
    }

    #[test]
    fn compact_reclaims_a_chain_of_tail_chunks() {
        let mut a = Arena::new();
        let _x = a.alloc(8);
        let y = a.alloc(12);
        let z = a.alloc(16);
        // Freed in either order, y and z form a contiguous run that ends
        // at the bump pointer; both must go.
        a.free(z, 16);
        a.free(y, 12);
        assert_eq!(a.compact(), 28);
        assert_eq!(a.free_bytes(), 0);
        // The arena keeps working: new allocations carve at the new end.
        let w = a.alloc(12);
        assert_eq!(w, y, "bump pointer moved back to the reclaimed region");
    }

    #[test]
    fn compact_with_nothing_to_reclaim_is_a_noop() {
        let mut a = Arena::new();
        let x = a.alloc(8);
        let _y = a.alloc(8);
        a.free(x, 8); // interior only
        let before = (a.used(), a.footprint(), a.free_chunks(8));
        assert_eq!(a.compact(), 0);
        assert_eq!((a.used(), a.footprint(), a.free_chunks(8)), before);
    }

    #[test]
    fn compact_on_pressure_retries_within_budget() {
        let mut a = Arena::with_options(ArenaOptions {
            budget: Some(MemoryBudget::new(40)),
            pool: None,
            compact_on_pressure: true,
            component: Component::Other,
        });
        let x = a.alloc(16);
        let y = a.alloc(24); // at the 40-byte cap
        a.free(y, 24); // tail chunk: compactable
                       // Without compaction this would be refused (carved stays 40);
                       // with compact_on_pressure the tail is returned and re-carved.
        let z = a.try_alloc(20).expect("compaction must free room under the budget");
        assert_eq!(z, y, "re-carved at the reclaimed tail");
        assert!(a.stats().compactions >= 1);
        assert_eq!(a.bytes(x, 16).len(), 16);
        // Still over-budget requests keep failing cleanly.
        assert_eq!(a.try_alloc(24).unwrap_err().kind, AllocErrorKind::BudgetExceeded);
    }

    #[test]
    fn budget_pool_is_shared_across_arenas() {
        let pool = BudgetPool::new(64);
        let opts = |p: &BudgetPool| ArenaOptions {
            budget: None,
            pool: Some(p.clone()),
            compact_on_pressure: false,
            component: Component::Other,
        };
        let mut a = Arena::with_options(opts(&pool));
        let mut b = Arena::with_options(opts(&pool));
        let _ = a.alloc(40);
        let _ = b.alloc(24);
        assert_eq!(pool.used(), 64);
        // The pool is exhausted even though each arena alone is small:
        // this is the oversubscription the shared pool exists to prevent.
        let err = b.try_alloc(8).unwrap_err();
        assert_eq!(err.kind, AllocErrorKind::BudgetExceeded);
        assert_eq!(err.limit, 64);
        assert_eq!(err.footprint, 64, "error reports the pool-wide footprint");
        drop(a);
        assert_eq!(pool.used(), 24, "dropping an arena releases its reservation");
        assert!(b.try_alloc(8).is_ok());
        assert_eq!(pool.peak(), 64, "peak keeps the high-water mark");
    }

    #[test]
    fn compact_releases_reclaimed_bytes_to_the_pool() {
        let pool = BudgetPool::new(100);
        let mut a = Arena::with_options(ArenaOptions {
            budget: None,
            pool: Some(pool.clone()),
            compact_on_pressure: false,
            component: Component::Other,
        });
        let _x = a.alloc(8);
        let y = a.alloc(32);
        a.free(y, 32);
        assert_eq!(pool.used(), 40);
        assert_eq!(a.compact(), 32);
        assert_eq!(pool.used(), 8);
        assert_eq!(pool.compact_reclaimed(), 32);
    }

    #[test]
    fn reset_empties_the_arena_but_keeps_capacity() {
        let mut a = Arena::new();
        let x = a.alloc(16);
        let _y = a.alloc(32);
        a.free(x, 16);
        let cap = a.reserved();
        a.reset();
        assert_eq!(a.footprint(), 1, "only the burned null byte remains");
        assert_eq!(a.used(), 0);
        assert_eq!(a.live_allocs(), 0);
        assert_eq!(a.free_chunks(16), 0, "free queues cleared");
        assert_eq!(a.reserved(), cap, "Vec capacity survives the reset");
        assert_eq!(a.stats().resets, 1);
        // The arena is immediately reusable and re-carves from offset 1.
        let z = a.alloc(16);
        assert!(z >= 1);
        assert_eq!(a.used(), 16);
    }

    #[test]
    fn reset_releases_the_full_pool_reservation() {
        let pool = BudgetPool::new(100);
        let mut a = Arena::with_options(ArenaOptions {
            budget: None,
            pool: Some(pool.clone()),
            compact_on_pressure: false,
            component: Component::Other,
        });
        let _x = a.alloc(8);
        let _y = a.alloc(32);
        assert_eq!(pool.used(), 40);
        a.reset();
        assert_eq!(pool.used(), 0, "reset releases exactly footprint - 1");
        // A recycled arena re-reserves as it re-carves, same as a fresh one.
        let _z = a.alloc(24);
        assert_eq!(pool.used(), 24);
        drop(a);
        assert_eq!(pool.used(), 0, "drop after reset does not double-release");
    }

    #[test]
    fn reset_respects_a_fixed_budget_afresh() {
        let mut a = Arena::with_budget(MemoryBudget::new(40));
        let _x = a.alloc(32);
        assert!(a.try_alloc(32).is_err(), "budget refuses past the cap");
        a.reset();
        // After a reset the footprint is back to zero carved bytes, so the
        // same budget admits a fresh allocation.
        assert!(a.try_alloc(32).is_ok());
    }

    #[test]
    fn components_attribute_reserves_and_releases() {
        let pool = BudgetPool::unlimited();
        let mut build = Arena::with_options(ArenaOptions {
            pool: Some(pool.clone()),
            component: Component::BuildTree,
            ..Default::default()
        });
        let mut cond = Arena::with_options(ArenaOptions {
            pool: Some(pool.clone()),
            component: Component::CondTrees,
            ..Default::default()
        });
        assert_eq!(build.component(), Component::BuildTree);
        let _b = build.alloc(24);
        let _c = cond.alloc(16);
        assert_eq!(pool.component_used(Component::BuildTree), 24);
        assert_eq!(pool.component_used(Component::CondTrees), 16);
        assert_eq!(pool.used(), 40);
        cond.reset();
        assert_eq!(pool.component_used(Component::CondTrees), 0);
        assert_eq!(pool.component_peak(Component::CondTrees), 16);
        drop(build);
        assert_eq!(pool.component_used(Component::BuildTree), 0);
        assert_eq!(pool.component_peak(Component::BuildTree), 24);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn external_charges_attribute_but_never_meter() {
        let pool = BudgetPool::new(10);
        pool.charge_external(Component::CondArrays, 1000);
        assert_eq!(pool.used(), 0, "external bytes are unmetered");
        assert_eq!(pool.external_used(), 1000);
        assert_eq!(pool.component_used(Component::CondArrays), 1000);
        // Admission is unaffected: the 10-byte limit is still fully free.
        assert!(pool.try_reserve(10));
        assert!(!pool.try_reserve(1));
        pool.release(10);
        pool.release_external(Component::CondArrays, 1000);
        assert_eq!(pool.external_used(), 0);
        assert_eq!(pool.component_used(Component::CondArrays), 0);
        assert_eq!(pool.component_peak(Component::CondArrays), 1000);
    }

    #[test]
    fn snapshot_components_sum_to_accounted_bytes() {
        let pool = BudgetPool::unlimited();
        let mut a = Arena::with_options(ArenaOptions {
            pool: Some(pool.clone()),
            component: Component::BuildTree,
            ..Default::default()
        });
        let _x = a.alloc(17);
        pool.charge_external(Component::CondArrays, 123);
        pool.try_reserve(9); // untagged -> Component::Other
        let snap = pool.snapshot();
        assert_eq!(snap.used, 17 + 9);
        assert_eq!(snap.external_used, 123);
        assert_eq!(snap.components_total(), snap.accounted());
        assert_eq!(snap.components.len(), Component::ALL.len());
        let row = |name: &str| snap.components.iter().find(|r| r.0 == name).unwrap();
        assert_eq!(row("build-tree").1, 17);
        assert_eq!(row("cond-arrays").1, 123);
        assert_eq!(row("other").1, 9);
        pool.release(9);
    }

    #[test]
    fn arena_stats_track_peaks_within_the_window() {
        let mut a = Arena::new();
        let x = a.alloc(32);
        a.free(x, 32);
        let _y = a.alloc(8); // queue miss (wrong size) -> bump
        assert_eq!(a.stats().peak_used, 32, "peak survives the free");
        assert!(a.stats().peak_footprint >= a.footprint() - 1);
        let z = a.alloc(32); // queue hit: used rises, footprint does not
        assert_eq!(a.stats().peak_used, 40);
        let fp = a.stats().peak_footprint;
        a.free(z, 32);
        assert_eq!(a.stats().peak_used, 40, "peak survives frees");
        assert_eq!(a.stats().peak_footprint, fp, "queue traffic leaves footprint peak");
    }

    #[test]
    fn reset_with_clear_peaks_starts_a_fresh_window() {
        let mut a = Arena::new();
        let _x = a.alloc(32);
        assert_eq!(a.stats().peak_used, 32);
        // Plain reset keeps the peaks (run-level view)...
        a.reset();
        assert_eq!(a.stats().peak_used, 32);
        // ...while ClearPeaks starts a per-task window so recycling does
        // not smear one task's peak across the next.
        let _y = a.alloc(8);
        a.reset_with(StatsReset::ClearPeaks);
        assert_eq!(a.stats().peak_used, 0);
        assert_eq!(a.stats().peak_footprint, 0);
        let _z = a.alloc(16);
        assert_eq!(a.stats().peak_used, 16);
    }

    /// Property tests require the optional `proptest` dependency,
    /// which offline builds cannot fetch. Enable with
    /// `--features proptest` after restoring the dev-dependency
    /// (see README § Offline builds).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        proptest! {
            /// Random alloc/free/realloc sequences never hand out overlapping
            /// live chunks and preserve chunk contents across reallocs.
            #[test]
            fn prop_no_overlap_and_contents_survive(
                ops in proptest::collection::vec((0u8..3, 1usize..=MAX_CHUNK, any::<u8>()), 1..200)
            ) {
                let mut a = Arena::new();
                // offset -> (size, fill byte)
                let mut live: HashMap<u64, (usize, u8)> = HashMap::new();
                let mut order: Vec<u64> = Vec::new();
                for (op, size, fill) in ops {
                    match op {
                        0 => {
                            let off = a.alloc(size);
                            for &o in order.iter() {
                                let (s, _) = live[&o];
                                let s = s.max(MIN_CHUNK) as u64;
                                let sz = size.max(MIN_CHUNK) as u64;
                                prop_assert!(off + sz <= o || o + s <= off,
                                    "chunk {} overlaps live chunk {}", off, o);
                            }
                            for b in a.bytes_mut(off, size) { *b = fill; }
                            live.insert(off, (size, fill));
                            order.push(off);
                        }
                        1 => {
                            if let Some(off) = order.pop() {
                                let (s, f) = live.remove(&off).unwrap();
                                prop_assert!(a.bytes(off, s).iter().all(|&b| b == f),
                                    "contents changed before free");
                                a.free(off, s);
                            }
                        }
                        _ => {
                            if let Some(off) = order.pop() {
                                let (s, f) = live.remove(&off).unwrap();
                                let new_off = a.realloc(off, s, size);
                                let kept = s.min(size);
                                prop_assert!(a.bytes(new_off, kept).iter().all(|&b| b == f),
                                    "contents lost in realloc");
                                for b in a.bytes_mut(new_off, size) { *b = fill; }
                                live.insert(new_off, (size, fill));
                                order.push(new_off);
                            }
                        }
                    }
                }
                // All remaining live chunks still hold their fill bytes.
                for (&off, &(s, f)) in &live {
                    prop_assert!(a.bytes(off, s).iter().all(|&b| b == f));
                }
            }
        }
    }
}
