//! Brute-force frequent-itemset enumeration, the correctness oracle.
//!
//! Enumerates every subset of the (small) item universe and counts its
//! support by scanning the database — exponential, usable only in tests,
//! and therefore trustworthy: there is nothing clever to get wrong.

use cfp_data::{Item, TransactionDb};

/// All frequent itemsets of `db` with their supports, sorted canonically.
///
/// # Panics
///
/// Panics if the item universe exceeds 20 items (2^20 subsets).
pub fn frequent_itemsets(db: &TransactionDb, min_support: u64) -> Vec<(Vec<Item>, u64)> {
    let max = db.max_item().map_or(0, |m| m as usize + 1);
    assert!(max <= 20, "oracle is exponential; got {max} items");
    let mut out = Vec::new();
    // Precompute transaction bitmasks (duplicates within a row collapse).
    let masks: Vec<u32> = db.iter().map(|t| t.iter().fold(0u32, |m, &i| m | (1 << i))).collect();
    for subset in 1u32..(1u32 << max) {
        let support = masks.iter().filter(|&&m| m & subset == subset).count() as u64;
        if support >= min_support {
            let items: Vec<Item> = (0..max as u32).filter(|&i| subset & (1 << i) != 0).collect();
            out.push((items, support));
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_simple_database() {
        let db = TransactionDb::from_rows(&[vec![0, 1], vec![0, 1, 2], vec![0]]);
        let got = frequent_itemsets(&db, 2);
        assert_eq!(got, vec![(vec![0], 3), (vec![0, 1], 2), (vec![1], 2)]);
    }

    #[test]
    fn duplicates_in_a_row_count_once() {
        let db = TransactionDb::from_rows(&[vec![3, 3], vec![3]]);
        assert_eq!(frequent_itemsets(&db, 2), vec![(vec![3], 2)]);
    }

    #[test]
    fn empty_db_has_no_itemsets() {
        assert!(frequent_itemsets(&TransactionDb::new(), 1).is_empty());
    }
}
