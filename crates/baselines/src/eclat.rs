//! The Eclat algorithm (Zaki, 1997): vertical tid-list intersection.
//!
//! The database is turned on its side — one sorted transaction-id list per
//! frequent item — and the search-space lattice is explored depth first:
//! the tid list of `P ∪ {j}` is the intersection of the lists of `P` and
//! `{j}`. Support is a list length; no candidate generation, no repeated
//! database scans. Memory is dominated by the tid lists of the current
//! search path, which — like LCM — scales with the number of transactions.

use cfp_data::{Item, ItemRecoder, ItemsetSink, MineStats, Miner, TransactionDb};
use cfp_metrics::{MemGauge, Stopwatch};

/// Depth-first Eclat over vertical tid lists.
#[derive(Clone, Debug, Default)]
pub struct EclatMiner;

impl EclatMiner {
    /// A new Eclat miner.
    pub fn new() -> Self {
        Self
    }
}

struct Ctx<'a> {
    sink: &'a mut dyn ItemsetSink,
    gauge: MemGauge,
    min_support: u64,
    globals: Vec<Item>,
    suffix: Vec<Item>,
    emit_buf: Vec<Item>,
    itemsets: u64,
}

impl Ctx<'_> {
    fn emit(&mut self, support: u64) {
        self.emit_buf.clear();
        self.emit_buf.extend_from_slice(&self.suffix);
        self.emit_buf.sort_unstable();
        self.sink.emit(&self.emit_buf, support);
        self.itemsets += 1;
    }
}

impl Miner for EclatMiner {
    fn name(&self) -> &'static str {
        "eclat"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64, sink: &mut dyn ItemsetSink) -> MineStats {
        let mut stats = MineStats::default();
        let gauge = MemGauge::new();
        let mut sw = Stopwatch::start();

        let recoder = ItemRecoder::scan(db, min_support);
        let n = recoder.num_items();
        stats.scan_time = sw.lap();

        // Vertical transformation.
        let mut tidlists: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut buf = Vec::new();
        for (tid, t) in db.iter().enumerate() {
            recoder.recode_transaction(t, &mut buf);
            for &i in &buf {
                tidlists[i as usize].push(tid as u32);
            }
        }
        let vertical_bytes: u64 = tidlists.iter().map(|l| 4 * l.len() as u64).sum();
        gauge.alloc(vertical_bytes);
        gauge.checkpoint();
        stats.build_time = sw.lap();

        let mut ctx = Ctx {
            sink,
            gauge: gauge.clone(),
            min_support,
            globals: (0..n as u32).map(|i| recoder.original(i)).collect(),
            suffix: Vec::new(),
            emit_buf: Vec::new(),
            itemsets: 0,
        };
        let items: Vec<(u32, Vec<u32>)> =
            tidlists.into_iter().enumerate().map(|(i, l)| (i as u32, l)).collect();
        eclat(&items, &mut ctx);
        stats.mine_time = sw.lap();

        gauge.free(vertical_bytes);
        stats.itemsets = ctx.itemsets;
        stats.peak_bytes = gauge.peak();
        stats.avg_bytes = gauge.average();
        stats
    }
}

/// Recursively extends the current prefix with each item of `items`; each
/// recursion level intersects the chosen item's list with all later ones.
fn eclat(items: &[(u32, Vec<u32>)], ctx: &mut Ctx<'_>) {
    for (pos, (item, tids)) in items.iter().enumerate() {
        ctx.suffix.push(ctx.globals[*item as usize]);
        ctx.emit(tids.len() as u64);

        let mut extensions: Vec<(u32, Vec<u32>)> = Vec::new();
        for (other, other_tids) in &items[pos + 1..] {
            let joint = intersect(tids, other_tids);
            if joint.len() as u64 >= ctx.min_support {
                extensions.push((*other, joint));
            }
        }
        if !extensions.is_empty() {
            let bytes: u64 = extensions.iter().map(|(_, l)| 4 * l.len() as u64).sum();
            ctx.gauge.alloc(bytes);
            ctx.gauge.checkpoint();
            eclat(&extensions, ctx);
            ctx.gauge.free(bytes);
        }
        ctx.suffix.pop();
    }
}

/// Intersects two sorted tid lists.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cfp_data::miner::CollectSink;

    fn mine(db: &TransactionDb, minsup: u64) -> Vec<(Vec<Item>, u64)> {
        let mut sink = CollectSink::new();
        EclatMiner::new().mine(db, minsup, &mut sink);
        sink.into_sorted()
    }

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 7, 9]), vec![3, 7]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect(&[4], &[4]), vec![4]);
    }

    #[test]
    fn textbook_example() {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]);
        assert_eq!(mine(&db, 2), oracle::frequent_itemsets(&db, 2));
    }

    #[test]
    fn random_equivalence_with_oracle() {
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(808);
        for trial in 0..25 {
            let n_items = rng.gen_range(1..=10);
            let mut db = TransactionDb::new();
            for _ in 0..rng.gen_range(1..=60) {
                let t: Vec<Item> = (0..n_items).filter(|_| rng.gen_bool(0.4)).collect();
                db.push(&t);
            }
            let minsup = rng.gen_range(1..=4);
            assert_eq!(mine(&db, minsup), oracle::frequent_itemsets(&db, minsup), "trial {trial}");
        }
    }

    #[test]
    fn duplicates_within_transactions() {
        let db = TransactionDb::from_rows(&[vec![5, 5, 6], vec![5, 6, 6], vec![5]]);
        assert_eq!(mine(&db, 2), vec![(vec![5], 3), (vec![5, 6], 2), (vec![6], 2)]);
    }
}
