//! A nonordfp-style miner (Rácz, FIMI'04).
//!
//! nonordfp inspired the CFP-array (§5 of the paper): for the mine phase
//! it stores the `count` and `parent` fields of all FP-tree nodes in two
//! flat arrays, clustered by item so that nodelinks become unnecessary —
//! but *uncompressed* (4-byte fields, global positions) and with no memory
//! reduction in the build phase, which uses a regular FP-tree. The paper's
//! §4.5 shows its memory forcing early out-of-core execution; here its
//! footprint is the FP-tree plus ~8 bytes per node, against the
//! CFP-array's ~4 total.
//!
//! The item of a node at position `p` is recovered from the item index:
//! the item with the largest starting position ≤ `p`, exactly the remark
//! in §3.4.

use cfp_data::{Item, ItemRecoder, ItemsetSink, MineStats, Miner, TransactionDb};
use cfp_fptree::{FpTree, NIL};
use cfp_metrics::{HeapSize, MemGauge, Stopwatch};

/// FP-growth over flat item-clustered count/parent arrays.
#[derive(Clone, Debug, Default)]
pub struct NonordFpMiner;

impl NonordFpMiner {
    /// A new nonordfp-style miner.
    pub fn new() -> Self {
        Self
    }
}

/// The mine-phase representation: two flat arrays plus the item index.
struct Arrays {
    counts: Vec<u32>,
    /// Global position of the parent; `u32::MAX` for children of the root.
    parents: Vec<u32>,
    /// `starts[i]..starts[i+1]` is item `i`'s range of positions.
    starts: Vec<u32>,
    /// Support per item.
    supports: Vec<u64>,
}

impl Arrays {
    fn from_tree(tree: &FpTree) -> Self {
        let n = tree.num_items();
        let mut starts = Vec::with_capacity(n + 1);
        let mut pos_of = vec![u32::MAX; tree.num_nodes() + 1];
        let mut next = 0u32;
        for item in 0..n as u32 {
            starts.push(next);
            for idx in tree.nodelinks(item) {
                pos_of[idx as usize] = next;
                next += 1;
            }
        }
        starts.push(next);
        let mut counts = vec![0u32; next as usize];
        let mut parents = vec![u32::MAX; next as usize];
        for item in 0..n as u32 {
            for idx in tree.nodelinks(item) {
                let pos = pos_of[idx as usize] as usize;
                let node = tree.node(idx);
                counts[pos] = node.count;
                parents[pos] = if node.parent == 0 || node.parent == NIL {
                    u32::MAX
                } else {
                    pos_of[node.parent as usize]
                };
            }
        }
        Arrays {
            counts,
            parents,
            starts,
            supports: (0..n as u32).map(|i| tree.item_support(i)).collect(),
        }
    }

    fn num_items(&self) -> usize {
        self.supports.len()
    }

    /// Item owning global position `pos` (largest start ≤ pos).
    fn item_of(&self, pos: u32) -> u32 {
        (self.starts.partition_point(|&s| s <= pos) - 1) as u32
    }

    /// Ancestor items of the node at `pos`, ascending.
    fn prefix_path(&self, pos: u32, out: &mut Vec<u32>) {
        out.clear();
        let mut cur = self.parents[pos as usize];
        while cur != u32::MAX {
            out.push(self.item_of(cur));
            cur = self.parents[cur as usize];
        }
        out.reverse();
    }
}

impl HeapSize for Arrays {
    fn heap_bytes(&self) -> u64 {
        self.counts.heap_bytes()
            + self.parents.heap_bytes()
            + self.starts.heap_bytes()
            + self.supports.heap_bytes()
    }
}

struct Ctx<'a> {
    sink: &'a mut dyn ItemsetSink,
    gauge: MemGauge,
    min_support: u64,
    suffix: Vec<Item>,
    emit_buf: Vec<Item>,
    path_buf: Vec<u32>,
    itemsets: u64,
}

impl Ctx<'_> {
    fn emit(&mut self, support: u64) {
        self.emit_buf.clear();
        self.emit_buf.extend_from_slice(&self.suffix);
        self.emit_buf.sort_unstable();
        self.sink.emit(&self.emit_buf, support);
        self.itemsets += 1;
    }
}

impl Miner for NonordFpMiner {
    fn name(&self) -> &'static str {
        "nonordfp-style"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64, sink: &mut dyn ItemsetSink) -> MineStats {
        let mut stats = MineStats::default();
        let gauge = MemGauge::new();
        let mut sw = Stopwatch::start();

        let recoder = ItemRecoder::scan(db, min_support);
        stats.scan_time = sw.lap();

        // Build phase: plain FP-tree, no memory reduction.
        let tree = FpTree::from_db(db, &recoder);
        gauge.alloc(tree.heap_bytes());
        gauge.checkpoint();
        stats.build_time = sw.lap();
        stats.tree_nodes = tree.num_nodes() as u64;

        let arrays = Arrays::from_tree(&tree);
        gauge.alloc(arrays.heap_bytes());
        gauge.checkpoint();
        gauge.free(tree.heap_bytes());
        drop(tree);
        stats.convert_time = sw.lap();

        let globals: Vec<Item> =
            (0..recoder.num_items() as u32).map(|i| recoder.original(i)).collect();
        let mut ctx = Ctx {
            sink,
            gauge: gauge.clone(),
            min_support,
            suffix: Vec::new(),
            emit_buf: Vec::new(),
            path_buf: Vec::new(),
            itemsets: 0,
        };
        mine_arrays(&arrays, &globals, &mut ctx);
        stats.mine_time = sw.lap();

        gauge.free(arrays.heap_bytes());
        stats.itemsets = ctx.itemsets;
        stats.peak_bytes = gauge.peak();
        stats.avg_bytes = gauge.average();
        stats
    }
}

fn mine_arrays(arrays: &Arrays, globals: &[Item], ctx: &mut Ctx<'_>) {
    let n = arrays.num_items() as u32;
    for item in (0..n).rev() {
        let support = arrays.supports[item as usize];
        if support < ctx.min_support {
            continue;
        }
        ctx.suffix.push(globals[item as usize]);
        ctx.emit(support);
        if item > 0 {
            if let Some((cond, cond_globals)) = conditional(arrays, item, globals, ctx) {
                ctx.gauge.alloc(cond.heap_bytes());
                ctx.gauge.checkpoint();
                mine_arrays(&cond, &cond_globals, ctx);
                ctx.gauge.free(cond.heap_bytes());
            }
        }
        ctx.suffix.pop();
    }
}

/// Conditional step: prefix paths from the arrays feed a small FP-tree,
/// which converts to the next level's arrays (nonordfp keeps the same
/// representation through the recursion).
fn conditional(
    arrays: &Arrays,
    item: u32,
    globals: &[Item],
    ctx: &mut Ctx<'_>,
) -> Option<(Arrays, Vec<Item>)> {
    let range = arrays.starts[item as usize]..arrays.starts[item as usize + 1];
    let mut freq = vec![0u64; item as usize];
    let mut path = std::mem::take(&mut ctx.path_buf);
    for pos in range.clone() {
        arrays.prefix_path(pos, &mut path);
        for &it in &path {
            freq[it as usize] += arrays.counts[pos as usize] as u64;
        }
    }
    let mut remap = vec![u32::MAX; item as usize];
    let mut cond_globals = Vec::new();
    for (old, &f) in freq.iter().enumerate() {
        if f >= ctx.min_support {
            remap[old] = cond_globals.len() as u32;
            cond_globals.push(globals[old]);
        }
    }
    if cond_globals.is_empty() {
        ctx.path_buf = path;
        return None;
    }
    let mut cond_tree = FpTree::new(cond_globals.len());
    let mut filtered: Vec<u32> = Vec::new();
    for pos in range {
        arrays.prefix_path(pos, &mut path);
        filtered.clear();
        filtered.extend(
            path.iter().filter(|&&it| remap[it as usize] != u32::MAX).map(|&it| remap[it as usize]),
        );
        if !filtered.is_empty() {
            cond_tree.insert(&filtered, arrays.counts[pos as usize]);
        }
    }
    ctx.path_buf = path;
    ctx.gauge.alloc(cond_tree.heap_bytes());
    let cond = Arrays::from_tree(&cond_tree);
    ctx.gauge.free(cond_tree.heap_bytes());
    Some((cond, cond_globals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cfp_data::miner::CollectSink;

    fn mine(db: &TransactionDb, minsup: u64) -> Vec<(Vec<Item>, u64)> {
        let mut sink = CollectSink::new();
        NonordFpMiner::new().mine(db, minsup, &mut sink);
        sink.into_sorted()
    }

    #[test]
    fn item_of_uses_item_index() {
        let mut tree = FpTree::new(3);
        tree.insert(&[0, 1, 2], 1);
        tree.insert(&[0, 2], 1);
        tree.insert(&[1, 2], 1);
        let a = Arrays::from_tree(&tree);
        for item in 0..3u32 {
            for pos in a.starts[item as usize]..a.starts[item as usize + 1] {
                assert_eq!(a.item_of(pos), item);
            }
        }
    }

    #[test]
    fn textbook_example() {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]);
        assert_eq!(mine(&db, 2), oracle::frequent_itemsets(&db, 2));
    }

    #[test]
    fn random_equivalence_with_oracle() {
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(31415);
        for trial in 0..25 {
            let n_items = rng.gen_range(1..=10);
            let mut db = TransactionDb::new();
            for _ in 0..rng.gen_range(1..=60) {
                let t: Vec<Item> = (0..n_items).filter(|_| rng.gen_bool(0.4)).collect();
                db.push(&t);
            }
            let minsup = rng.gen_range(1..=4);
            assert_eq!(mine(&db, minsup), oracle::frequent_itemsets(&db, minsup), "trial {trial}");
        }
    }
}
