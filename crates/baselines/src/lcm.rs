//! An LCM-style backtracking miner (Uno, Kiyomi & Arimura's LCM ver. 2).
//!
//! LCM explores the set-enumeration tree of itemsets directly on the
//! horizontal database using *occurrence deliver*: for the current itemset
//! `P` with occurrence list `occ(P)`, a single sweep over the occurring
//! transactions buckets them by every item `j` greater than `P`'s tail,
//! producing `occ(P ∪ {j})` for all extensions at once. No prefix tree is
//! ever built.
//!
//! This re-implementation covers LCM's all-frequent-itemsets mode without
//! the closed-set jumping or suffix-interval tricks of the full system —
//! engineering that is orthogonal to the paper's point. What it *does*
//! preserve is the memory character the paper observes in §4.5: the
//! transaction pointers held in the occurrence lists scale with the number
//! of transactions, which is why "LCM breaks down much earlier" on Quest2
//! (twice the transactions) while prefix-tree algorithms barely notice.

use cfp_data::{Item, ItemRecoder, ItemsetSink, MineStats, Miner, TransactionDb};
use cfp_metrics::{MemGauge, Stopwatch};

/// Backtracking with occurrence deliver.
#[derive(Clone, Debug, Default)]
pub struct LcmStyleMiner;

impl LcmStyleMiner {
    /// A new LCM-style miner.
    pub fn new() -> Self {
        Self
    }
}

struct Ctx<'a> {
    sink: &'a mut dyn ItemsetSink,
    gauge: MemGauge,
    min_support: u64,
    globals: Vec<Item>,
    suffix: Vec<Item>,
    emit_buf: Vec<Item>,
    itemsets: u64,
    /// The recoded database (transactions sorted ascending).
    db: TransactionDb,
}

impl Ctx<'_> {
    fn emit(&mut self, support: u64) {
        self.emit_buf.clear();
        self.emit_buf.extend_from_slice(&self.suffix);
        self.emit_buf.sort_unstable();
        self.sink.emit(&self.emit_buf, support);
        self.itemsets += 1;
    }
}

impl Miner for LcmStyleMiner {
    fn name(&self) -> &'static str {
        "lcm-style"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64, sink: &mut dyn ItemsetSink) -> MineStats {
        let mut stats = MineStats::default();
        let gauge = MemGauge::new();
        let mut sw = Stopwatch::start();

        let recoder = ItemRecoder::scan(db, min_support);
        let n = recoder.num_items();
        stats.scan_time = sw.lap();

        // LCM keeps the (reduced) database in memory for the whole run.
        let mut recoded = TransactionDb::new();
        let mut buf = Vec::new();
        for t in db.iter() {
            recoder.recode_transaction(t, &mut buf);
            if !buf.is_empty() {
                recoded.push(&buf);
            }
        }
        gauge.alloc(recoded.data_bytes());
        gauge.checkpoint();
        stats.build_time = sw.lap();

        // Initial occurrence lists per item.
        let mut occs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (tid, t) in recoded.iter().enumerate() {
            for &i in t {
                occs[i as usize].push(tid as u32);
            }
        }
        let occ_bytes: u64 = occs.iter().map(|o| 4 * o.len() as u64).sum();
        gauge.alloc(occ_bytes);
        gauge.checkpoint();

        let mut ctx = Ctx {
            sink,
            gauge: gauge.clone(),
            min_support,
            globals: (0..n as u32).map(|i| recoder.original(i)).collect(),
            suffix: Vec::new(),
            emit_buf: Vec::new(),
            itemsets: 0,
            db: recoded,
        };
        for i in 0..n as u32 {
            // Every recoded item is frequent by construction.
            backtrack(i, &occs[i as usize], &mut ctx);
        }
        stats.mine_time = sw.lap();

        gauge.free(occ_bytes);
        gauge.free(ctx.db.data_bytes());
        stats.itemsets = ctx.itemsets;
        stats.peak_bytes = gauge.peak();
        stats.avg_bytes = gauge.average();
        stats
    }
}

/// Visits the itemset `suffix ∪ {item}` (whose occurrences are `occ`) and
/// every extension by items greater than `item`, delivered in one sweep.
fn backtrack(item: u32, occ: &[u32], ctx: &mut Ctx<'_>) {
    ctx.suffix.push(ctx.globals[item as usize]);
    ctx.emit(occ.len() as u64);

    // Occurrence deliver: bucket the occurring transactions by each item
    // beyond `item`. Buckets are keyed sparsely to stay proportional to
    // the delivered occurrences, not the item universe.
    let mut buckets: Vec<(u32, Vec<u32>)> = Vec::new();
    let mut index_of: Vec<u32> = Vec::new(); // lazily grown map item -> bucket
    for &tid in occ {
        let txn = ctx.db.get(tid as usize);
        let from = txn.partition_point(|&j| j <= item);
        for &j in &txn[from..] {
            let ji = j as usize;
            if index_of.len() <= ji {
                index_of.resize(ji + 1, u32::MAX);
            }
            if index_of[ji] == u32::MAX {
                index_of[ji] = buckets.len() as u32;
                buckets.push((j, Vec::new()));
            }
            buckets[index_of[ji] as usize].1.push(tid);
        }
    }
    buckets.retain(|(_, tids)| tids.len() as u64 >= ctx.min_support);
    if !buckets.is_empty() {
        buckets.sort_by_key(|&(j, _)| j);
        let bytes: u64 = buckets.iter().map(|(_, t)| 4 * t.len() as u64).sum::<u64>()
            + 4 * index_of.len() as u64;
        ctx.gauge.alloc(bytes);
        ctx.gauge.checkpoint();
        for (j, tids) in &buckets {
            backtrack(*j, tids, ctx);
        }
        ctx.gauge.free(bytes);
    }
    ctx.suffix.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cfp_data::miner::CollectSink;

    fn mine(db: &TransactionDb, minsup: u64) -> Vec<(Vec<Item>, u64)> {
        let mut sink = CollectSink::new();
        LcmStyleMiner::new().mine(db, minsup, &mut sink);
        sink.into_sorted()
    }

    #[test]
    fn textbook_example() {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]);
        assert_eq!(mine(&db, 2), oracle::frequent_itemsets(&db, 2));
    }

    #[test]
    fn empty_and_all_infrequent() {
        assert!(mine(&TransactionDb::new(), 1).is_empty());
        let db = TransactionDb::from_rows(&[vec![1u32], vec![2u32]]);
        assert!(mine(&db, 2).is_empty());
    }

    #[test]
    fn random_equivalence_with_oracle() {
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..25 {
            let n_items = rng.gen_range(1..=10);
            let mut db = TransactionDb::new();
            for _ in 0..rng.gen_range(1..=60) {
                let t: Vec<Item> = (0..n_items).filter(|_| rng.gen_bool(0.4)).collect();
                db.push(&t);
            }
            let minsup = rng.gen_range(1..=4);
            assert_eq!(mine(&db, minsup), oracle::frequent_itemsets(&db, minsup), "trial {trial}");
        }
    }

    #[test]
    fn memory_grows_with_transaction_count() {
        // The paper's §4.5 observation, in miniature: doubling the
        // transactions roughly doubles LCM's footprint.
        let rows_small: Vec<Vec<Item>> = (0..500).map(|i| vec![i % 5, 5 + i % 3]).collect();
        let rows_big: Vec<Vec<Item>> = (0..1000).map(|i| vec![i % 5, 5 + i % 3]).collect();
        let small = TransactionDb::from_rows(&rows_small);
        let big = TransactionDb::from_rows(&rows_big);
        let mut sink = CollectSink::new();
        let st_small = LcmStyleMiner::new().mine(&small, 10, &mut sink);
        let mut sink = CollectSink::new();
        let st_big = LcmStyleMiner::new().mine(&big, 20, &mut sink);
        assert!(
            st_big.peak_bytes as f64 > 1.5 * st_small.peak_bytes as f64,
            "small {} big {}",
            st_small.peak_bytes,
            st_big.peak_bytes
        );
    }
}
