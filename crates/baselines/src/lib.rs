//! Baseline frequent-itemset miners the paper compares CFP-growth against
//! (§4.4–§4.5), re-implemented from their algorithmic descriptions.
//!
//! All miners implement [`cfp_data::Miner`] and produce identical itemsets
//! with identical supports — cross-checked against each other and against
//! a brute-force [`oracle`] in the test suites. They differ exactly where
//! the paper says they should: memory footprint and its growth as minimum
//! support falls.
//!
//! | module | models | character |
//! |---|---|---|
//! | [`apriori`] | classic Apriori | level-wise candidates in a trie |
//! | [`eclat`] | Eclat | vertical tid-list intersections |
//! | [`lcm`] | LCM (ver. 2) | backtracking with occurrence deliver; memory ∝ transactions |
//! | [`nonordfp`] | nonordfp | FP-tree build, flat item-clustered count/parent arrays for mining |
//! | [`projection`] | FP-growth-Tiny / FP-array | pattern-base projection mining without conditional trees |
//!
//! The classic FP-growth baseline itself lives in
//! [`cfp_fptree::FpGrowthMiner`]; [`all_miners`] returns the full roster.
//!
//! Where the original systems are closed-source or their engineering is
//! orthogonal to the paper's claims, the re-implementations are simplified
//! but keep the *memory character* the evaluation relies on: e.g. our
//! LCM-style miner materializes occurrence lists whose size scales with the
//! transaction count (the reason LCM "breaks down much earlier" on Quest2),
//! and our FP-array-style miner retains the full recoded dataset in memory
//! (the reason FP-array "always requires more than the available main
//! memory"). CT-pro and AFOPT are approximated by their closest structural
//! cousins in this roster (the projection miners), and the benchmark
//! harness labels them accordingly.

#![warn(missing_docs)]

pub mod apriori;
pub mod eclat;
pub mod lcm;
pub mod nonordfp;
pub mod oracle;
pub mod projection;

pub use apriori::AprioriMiner;
pub use eclat::EclatMiner;
pub use lcm::LcmStyleMiner;
pub use nonordfp::NonordFpMiner;
pub use projection::{FpArrayStyleMiner, TinyStyleMiner};

use cfp_data::Miner;

/// Every miner in the workspace, CFP-growth's competitors and CFP-growth's
/// own baseline FP-growth included.
pub fn all_miners() -> Vec<Box<dyn Miner>> {
    vec![
        Box::new(cfp_fptree::FpGrowthMiner::new()),
        Box::new(AprioriMiner::new()),
        Box::new(EclatMiner::new()),
        Box::new(LcmStyleMiner::new()),
        Box::new(NonordFpMiner::new()),
        Box::new(TinyStyleMiner::new()),
        Box::new(FpArrayStyleMiner::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_unique_names() {
        let miners = all_miners();
        let mut names: Vec<_> = miners.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), miners.len());
    }
}
