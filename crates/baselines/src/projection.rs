//! Pattern-base projection mining: the shared engine behind the
//! FP-growth-Tiny-style and FP-array-style baselines.
//!
//! Both systems avoid building *conditional trees*:
//!
//! - **FP-growth-Tiny** (Özkural & Aykanat) performs all work against the
//!   initial big FP-tree, materializing each item's conditional pattern
//!   base instead of a conditional tree. Its downfall in the paper's
//!   experiments is that the one big uncompressed tree (plus the
//!   materialized bases) exhausts memory early.
//! - **FP-array** (Liu et al., the PARSEC `freqmine` kernel) trades memory
//!   for cache locality by unrolling tree paths into contiguous arrays; it
//!   "loads the complete dataset into main memory during the first scan"
//!   and ends up using roughly as much memory as plain FP-growth.
//!
//! Here both mine through the same recursion over *weighted projected
//! transaction lists* (flattened into contiguous arrays, which is exactly
//! the FP-array layout); they differ in what they keep resident, which is
//! what drives their memory curves in Figure 8.

use cfp_data::{Item, ItemRecoder, ItemsetSink, MineStats, Miner, TransactionDb};
use cfp_fptree::FpTree;
use cfp_metrics::{HeapSize, MemGauge, Stopwatch};

/// A flattened list of weighted ascending item sequences.
#[derive(Clone, Debug, Default)]
pub(crate) struct ProjBase {
    items: Vec<u32>,
    offsets: Vec<u32>,
    weights: Vec<u32>,
    /// Size of the local item universe.
    num_items: usize,
}

impl ProjBase {
    pub(crate) fn new(num_items: usize) -> Self {
        ProjBase { items: Vec::new(), offsets: vec![0], weights: Vec::new(), num_items }
    }

    pub(crate) fn push(&mut self, path: &[u32], weight: u32) {
        debug_assert!(path.windows(2).all(|w| w[0] < w[1]));
        self.items.extend_from_slice(path);
        self.offsets.push(self.items.len() as u32);
        self.weights.push(weight);
    }

    pub(crate) fn len(&self) -> usize {
        self.weights.len()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (&[u32], u32)> + '_ {
        self.offsets
            .windows(2)
            .zip(&self.weights)
            .map(move |(w, &weight)| (&self.items[w[0] as usize..w[1] as usize], weight))
    }
}

impl HeapSize for ProjBase {
    /// Length-based (pool-allocator) accounting; see `FpTree::heap_bytes`.
    fn heap_bytes(&self) -> u64 {
        ((self.items.len() + self.offsets.len() + self.weights.len()) * std::mem::size_of::<u32>())
            as u64
    }
}

struct Ctx<'a> {
    sink: &'a mut dyn ItemsetSink,
    gauge: MemGauge,
    min_support: u64,
    suffix: Vec<Item>,
    emit_buf: Vec<Item>,
    itemsets: u64,
}

impl Ctx<'_> {
    fn emit(&mut self, support: u64) {
        self.emit_buf.clear();
        self.emit_buf.extend_from_slice(&self.suffix);
        self.emit_buf.sort_unstable();
        self.sink.emit(&self.emit_buf, support);
        self.itemsets += 1;
    }
}

/// Mines all frequent itemsets of `base` (whose items must already be
/// individually frequent within it), each combined with `ctx.suffix`.
fn mine_base(base: &ProjBase, globals: &[Item], ctx: &mut Ctx<'_>) {
    let mut freq = vec![0u64; base.num_items];
    for (path, w) in base.iter() {
        for &i in path {
            freq[i as usize] += w as u64;
        }
    }
    for j in (0..base.num_items as u32).rev() {
        if freq[j as usize] < ctx.min_support {
            continue;
        }
        ctx.suffix.push(globals[j as usize]);
        ctx.emit(freq[j as usize]);
        if j > 0 {
            // Conditional frequencies within transactions containing j.
            let mut cond_freq = vec![0u64; j as usize];
            for (path, w) in base.iter() {
                if path.binary_search(&j).is_ok() {
                    for &i in path.iter().take_while(|&&i| i < j) {
                        cond_freq[i as usize] += w as u64;
                    }
                }
            }
            let mut remap = vec![u32::MAX; j as usize];
            let mut cond_globals = Vec::new();
            for (old, &f) in cond_freq.iter().enumerate() {
                if f >= ctx.min_support {
                    remap[old] = cond_globals.len() as u32;
                    cond_globals.push(globals[old]);
                }
            }
            if !cond_globals.is_empty() {
                let mut projected = ProjBase::new(cond_globals.len());
                let mut filtered: Vec<u32> = Vec::new();
                for (path, w) in base.iter() {
                    if path.binary_search(&j).is_err() {
                        continue;
                    }
                    filtered.clear();
                    filtered.extend(
                        path.iter()
                            .take_while(|&&i| i < j)
                            .filter(|&&i| remap[i as usize] != u32::MAX)
                            .map(|&i| remap[i as usize]),
                    );
                    if !filtered.is_empty() {
                        projected.push(&filtered, w);
                    }
                }
                if projected.len() > 0 {
                    ctx.gauge.alloc(projected.heap_bytes());
                    ctx.gauge.checkpoint();
                    mine_base(&projected, &cond_globals, ctx);
                    ctx.gauge.free(projected.heap_bytes());
                }
            }
        }
        ctx.suffix.pop();
    }
}

fn finish(mut stats: MineStats, gauge: &MemGauge, itemsets: u64, sw: &mut Stopwatch) -> MineStats {
    stats.mine_time = sw.lap();
    stats.itemsets = itemsets;
    stats.peak_bytes = gauge.peak();
    stats.avg_bytes = gauge.average();
    stats
}

// ---------------------------------------------------------------------
// FP-growth-Tiny style
// ---------------------------------------------------------------------

/// FP-growth without conditional trees: the initial FP-tree stays, each
/// item's conditional pattern base is materialized and mined by
/// projection.
#[derive(Clone, Debug, Default)]
pub struct TinyStyleMiner;

impl TinyStyleMiner {
    /// A new FP-growth-Tiny-style miner.
    pub fn new() -> Self {
        Self
    }
}

impl Miner for TinyStyleMiner {
    fn name(&self) -> &'static str {
        "fpgrowth-tiny-style"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64, sink: &mut dyn ItemsetSink) -> MineStats {
        let mut stats = MineStats::default();
        let gauge = MemGauge::new();
        let mut sw = Stopwatch::start();

        let recoder = ItemRecoder::scan(db, min_support);
        let n = recoder.num_items();
        stats.scan_time = sw.lap();

        // The one big FP-tree, resident for the whole run.
        let tree = FpTree::from_db(db, &recoder);
        gauge.alloc(tree.heap_bytes());
        gauge.checkpoint();
        stats.build_time = sw.lap();
        stats.tree_nodes = tree.num_nodes() as u64;

        let globals: Vec<Item> = (0..n as u32).map(|i| recoder.original(i)).collect();
        let mut ctx = Ctx {
            sink,
            gauge: gauge.clone(),
            min_support,
            suffix: Vec::new(),
            emit_buf: Vec::new(),
            itemsets: 0,
        };
        let mut path = Vec::new();
        for item in (0..n as u32).rev() {
            ctx.suffix.push(globals[item as usize]);
            ctx.emit(tree.item_support(item));
            if item > 0 {
                // Materialize the conditional pattern base off the big tree.
                let mut base = ProjBase::new(item as usize);
                for idx in tree.nodelinks(item) {
                    tree.prefix_path(idx, &mut path);
                    if !path.is_empty() {
                        base.push(&path, tree.node(idx).count);
                    }
                }
                if base.len() > 0 {
                    gauge.alloc(base.heap_bytes());
                    gauge.checkpoint();
                    mine_base(&base, &globals, &mut ctx);
                    gauge.free(base.heap_bytes());
                }
            }
            ctx.suffix.pop();
        }
        let itemsets = ctx.itemsets;
        gauge.free(tree.heap_bytes());
        finish(stats, &gauge, itemsets, &mut sw)
    }
}

// ---------------------------------------------------------------------
// FP-array style
// ---------------------------------------------------------------------

/// Cache-conscious path-array mining: the full recoded dataset stays in
/// memory (as FP-array's first scan does) and the FP-tree is unrolled
/// into a contiguous weighted path database before mining.
#[derive(Clone, Debug, Default)]
pub struct FpArrayStyleMiner;

impl FpArrayStyleMiner {
    /// A new FP-array-style miner.
    pub fn new() -> Self {
        Self
    }
}

impl Miner for FpArrayStyleMiner {
    fn name(&self) -> &'static str {
        "fparray-style"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64, sink: &mut dyn ItemsetSink) -> MineStats {
        let mut stats = MineStats::default();
        let gauge = MemGauge::new();
        let mut sw = Stopwatch::start();

        let recoder = ItemRecoder::scan(db, min_support);
        let n = recoder.num_items();
        stats.scan_time = sw.lap();

        // FP-array keeps the complete (recoded) dataset in memory.
        let mut recoded = TransactionDb::new();
        let mut buf = Vec::new();
        for t in db.iter() {
            recoder.recode_transaction(t, &mut buf);
            recoded.push(&buf);
        }
        gauge.alloc(recoded.data_bytes());

        // Build the FP-tree directly from the recoded rows (already
        // sorted, deduped, dense), then unroll it into contiguous weighted
        // paths (each transaction-ending node yields one path).
        let mut tree = FpTree::new(n);
        for t in recoded.iter() {
            tree.insert(t, 1);
        }
        gauge.alloc(tree.heap_bytes());
        gauge.checkpoint();
        stats.build_time = sw.lap();
        stats.tree_nodes = tree.num_nodes() as u64;

        let mut base = ProjBase::new(n);
        let mut path = Vec::new();
        for item in 0..n as u32 {
            for idx in tree.nodelinks(item) {
                // pcount = count − Σ children counts; only transaction
                // ends carry paths.
                let node = tree.node(idx);
                let child_sum: u32 = bst_sum(&tree, node.suffix);
                let pcount = node.count - child_sum;
                if pcount > 0 {
                    tree.prefix_path(idx, &mut path);
                    path.push(item);
                    base.push(&path, pcount);
                }
            }
        }
        gauge.alloc(base.heap_bytes());
        gauge.checkpoint();
        gauge.free(tree.heap_bytes());
        drop(tree);
        stats.convert_time = sw.lap();

        let globals: Vec<Item> = (0..n as u32).map(|i| recoder.original(i)).collect();
        let mut ctx = Ctx {
            sink,
            gauge: gauge.clone(),
            min_support,
            suffix: Vec::new(),
            emit_buf: Vec::new(),
            itemsets: 0,
        };
        mine_base(&base, &globals, &mut ctx);
        let itemsets = ctx.itemsets;
        gauge.free(base.heap_bytes());
        gauge.free(recoded.data_bytes());
        finish(stats, &gauge, itemsets, &mut sw)
    }
}

/// Sum of the counts of the BST of children rooted at `idx`.
fn bst_sum(tree: &FpTree, idx: u32) -> u32 {
    if idx == cfp_fptree::NIL {
        return 0;
    }
    let node = tree.node(idx);
    node.count + bst_sum(tree, node.left) + bst_sum(tree, node.right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cfp_data::miner::CollectSink;

    fn mine_tiny(db: &TransactionDb, minsup: u64) -> Vec<(Vec<Item>, u64)> {
        let mut sink = CollectSink::new();
        TinyStyleMiner::new().mine(db, minsup, &mut sink);
        sink.into_sorted()
    }

    fn mine_fparray(db: &TransactionDb, minsup: u64) -> Vec<(Vec<Item>, u64)> {
        let mut sink = CollectSink::new();
        FpArrayStyleMiner::new().mine(db, minsup, &mut sink);
        sink.into_sorted()
    }

    #[test]
    fn textbook_example_both_miners() {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]);
        let expect = oracle::frequent_itemsets(&db, 2);
        assert_eq!(mine_tiny(&db, 2), expect);
        assert_eq!(mine_fparray(&db, 2), expect);
    }

    #[test]
    fn proj_base_round_trips() {
        let mut b = ProjBase::new(5);
        b.push(&[0, 2, 4], 3);
        b.push(&[1], 1);
        let v: Vec<(Vec<u32>, u32)> = b.iter().map(|(p, w)| (p.to_vec(), w)).collect();
        assert_eq!(v, vec![(vec![0, 2, 4], 3), (vec![1], 1)]);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn fparray_unrolls_exactly_the_transactions() {
        // The unrolled path database must reproduce the original weighted
        // transactions, so results match on repeated rows.
        let db = TransactionDb::from_rows(&[vec![0, 1, 2], vec![0, 1, 2], vec![0, 1], vec![2]]);
        assert_eq!(mine_fparray(&db, 2), oracle::frequent_itemsets(&db, 2));
    }

    #[test]
    fn random_equivalence_with_oracle() {
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(606);
        for trial in 0..20 {
            let n_items = rng.gen_range(1..=9);
            let mut db = TransactionDb::new();
            for _ in 0..rng.gen_range(1..=50) {
                let t: Vec<Item> = (0..n_items).filter(|_| rng.gen_bool(0.45)).collect();
                db.push(&t);
            }
            let minsup = rng.gen_range(1..=4);
            let expect = oracle::frequent_itemsets(&db, minsup);
            assert_eq!(mine_tiny(&db, minsup), expect, "tiny trial {trial}");
            assert_eq!(mine_fparray(&db, minsup), expect, "fparray trial {trial}");
        }
    }

    #[test]
    fn empty_database() {
        assert!(mine_tiny(&TransactionDb::new(), 1).is_empty());
        assert!(mine_fparray(&TransactionDb::new(), 1).is_empty());
    }
}
