//! Cooperative cancellation for long-running mining work.
//!
//! A [`CancelToken`] is a cheap, cloneable handle that mining loops poll
//! at *task boundaries* — between top-level items in the sequential
//! recursion, between claimed tasks in the parallel scheduler, between
//! partitions in the spill rung. Nothing is ever torn down mid-task, so
//! the emitted output always ends at an exact item boundary and a
//! checkpoint manifest can describe it precisely.
//!
//! Three independent triggers can flip a token:
//!
//! - an explicit [`cancel`](CancelToken::cancel) call (tests, embedders),
//! - an optional wall-clock **deadline** (`--deadline` in the CLI),
//! - a process-wide **signal flag** set by the SIGINT/SIGTERM handler
//!   installed via [`install_signal_handlers`], observed only by tokens
//!   created with [`observing_signals`](CancelToken::observing_signals).
//!
//! The signal shim is a minimal hand-rolled `sigaction(2)` binding (the
//! workspace is zero-dependency by policy, so no `libc` crate). The
//! handler body is async-signal-safe: a single relaxed atomic store.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Process-global flag set by the signal handler. Tokens created with
/// [`CancelToken::observing_signals`] poll it.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// A cheap cancellation handle polled at task boundaries.
///
/// Clones share the same underlying flag; cancelling any clone cancels
/// them all. The poll path is one or two relaxed atomic loads plus (when
/// a deadline is set and not yet expired) one monotonic clock read.
#[derive(Clone, Debug)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
    watch_signals: bool,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that only fires on an explicit [`cancel`](Self::cancel).
    pub fn new() -> Self {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), deadline: None, watch_signals: false }
    }

    /// Adds a wall-clock budget: the token reports cancelled once
    /// `budget` has elapsed from now.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Makes the token also observe the process-wide SIGINT/SIGTERM
    /// flag (see [`install_signal_handlers`]).
    pub fn observing_signals(mut self) -> Self {
        self.watch_signals = true;
        self
    }

    /// Requests cancellation. Idempotent and thread-safe.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once cancellation was requested, a watched signal arrived,
    /// or the deadline expired. Monotonic: never reverts to `false`.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if self.watch_signals && SIGNALLED.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                // Latch, so later polls skip the clock read.
                self.flag.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }
}

/// `true` once a SIGINT or SIGTERM has been caught by the handlers
/// installed via [`install_signal_handlers`]. Lets the CLI distinguish
/// "stopped by signal" from "stopped by deadline" in diagnostics.
pub fn signal_received() -> bool {
    SIGNALLED.load(Ordering::Relaxed)
}

/// Resets the process-global signal flag (test isolation only).
pub fn reset_signal_flag() {
    SIGNALLED.store(false, Ordering::Relaxed);
}

extern "C" fn on_signal(_sig: i32) {
    // Async-signal-safe: one atomic store, nothing else.
    SIGNALLED.store(true, Ordering::Relaxed);
}

/// Installs SIGINT and SIGTERM handlers that set the process-global
/// cancellation flag, turning either signal into a graceful stop at the
/// next task boundary. Returns `true` if both handlers were installed.
///
/// On non-Linux targets this is a no-op returning `false`: the miner
/// still honours explicit cancellation and deadlines, and the default
/// signal disposition (terminate) applies.
pub fn install_signal_handlers() -> bool {
    #[cfg(target_os = "linux")]
    {
        sys::install(sys::SIGINT) && sys::install(sys::SIGTERM)
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Minimal Linux `sigaction(2)` shim. The workspace links `std` (and
/// therefore glibc/musl) already, so declaring the one extern symbol we
/// need keeps the zero-dependency policy without raw syscalls.
#[cfg(target_os = "linux")]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
    /// Restart interruptible syscalls instead of surfacing EINTR; the
    /// mine loop notices the flag at its next boundary poll.
    const SA_RESTART: usize = 0x1000_0000;

    /// Userspace `struct sigaction` as laid out by both glibc and musl
    /// on Linux: handler union first, then the 1024-bit signal mask,
    /// flags, and the (unused) restorer.
    #[repr(C)]
    struct SigAction {
        sa_handler: usize,
        sa_mask: [u64; 16],
        sa_flags: usize,
        sa_restorer: usize,
    }

    extern "C" {
        fn sigaction(signum: i32, act: *const SigAction, oldact: *mut SigAction) -> i32;
    }

    pub fn install(signum: i32) -> bool {
        let act = SigAction {
            sa_handler: super::on_signal as *const () as usize,
            sa_mask: [0; 16],
            sa_flags: SA_RESTART,
            sa_restorer: 0,
        };
        // SAFETY: `act` is a valid, fully initialised sigaction whose
        // handler is async-signal-safe (single atomic store).
        unsafe { sigaction(signum, &act, std::ptr::null_mut()) == 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled(), "clones share the flag");
        assert!(t.is_cancelled(), "monotonic");
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::new().with_deadline(Duration::from_millis(0));
        assert!(t.is_cancelled(), "zero budget expires immediately");
        let t = CancelToken::new().with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled(), "an hour has not elapsed");
    }

    #[test]
    fn signal_flag_observed_only_when_requested() {
        reset_signal_flag();
        let plain = CancelToken::new();
        let watching = CancelToken::new().observing_signals();
        on_signal(15);
        assert!(!plain.is_cancelled(), "non-observing token ignores signals");
        assert!(watching.is_cancelled());
        assert!(signal_received());
        reset_signal_flag();
        assert!(!watching.is_cancelled());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn handlers_install_on_linux() {
        assert!(install_signal_handlers());
    }
}
