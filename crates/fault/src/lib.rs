//! Failure injection and the unified error type for the CFP-growth
//! pipeline.
//!
//! The paper's whole point is surviving on little memory, so running out
//! of a resource is a *first-class runtime condition*, not a programming
//! error. This crate supplies the two halves of that failure model:
//!
//! - [`CfpError`]: the single error enum every phase of the
//!   read → count → build → convert → mine pipeline reports through,
//!   with a stable [exit-code mapping](CfpError::exit_code) for the CLI.
//! - **Failpoints**: named injection sites ([`should_fail`]) that tests
//!   arm with deterministic triggers ([`FaultMode`]) to prove each
//!   recovery path actually fires.
//!
//! # Cost when disabled
//!
//! Failpoints are double-gated, mirroring `cfp-trace`. The cargo feature
//! `fault` (default **off**) compiles the sites in or out; without it,
//! [`should_fail`] is a constant `false` and dead-code elimination
//! removes every site, so release builds carry zero overhead. With the
//! feature on, an unarmed site costs one relaxed atomic load.
//!
//! # Determinism
//!
//! Every trigger is deterministic: fail-the-Nth-call and
//! fail-after-N-calls count per-site invocations, and the probabilistic
//! mode drives a seeded splitmix64 stream, so a failing run replays
//! exactly.
//!
//! ```
//! use cfp_fault::{configure, clear_all, should_fail, FaultMode};
//!
//! configure("demo.site", FaultMode::Nth(2));
//! assert!(!should_fail("demo.site") || cfg!(not(feature = "fault")));
//! // Second call fires (when the `fault` feature is compiled in).
//! assert_eq!(should_fail("demo.site"), cfg!(feature = "fault"));
//! clear_all();
//! ```

#![warn(missing_docs)]

pub mod cancel;
mod error;

pub use cancel::{install_signal_handlers, CancelToken};
pub use error::{CfpError, EXIT_USAGE};

/// When a configured failpoint fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultMode {
    /// Fire on every call.
    Always,
    /// Fire on exactly the `n`-th call (1-based), never again.
    Nth(u64),
    /// Fire on every call after the first `n` calls succeed.
    AfterN(u64),
    /// Fire independently with probability `p`, driven by a splitmix64
    /// stream seeded with `seed` (deterministic per site).
    Probability {
        /// Probability in `[0, 1]` that a call fires.
        p: f64,
        /// PRNG seed; the same seed replays the same fire pattern.
        seed: u64,
    },
}

#[cfg(feature = "fault")]
mod registry {
    use super::FaultMode;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    pub struct Site {
        pub mode: FaultMode,
        pub calls: u64,
        pub fired: u64,
        pub rng: u64,
    }

    /// Number of armed sites; the fast path of `should_fail` is one
    /// relaxed load of this.
    pub static ARMED: AtomicUsize = AtomicUsize::new(0);

    static SITES: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();

    pub fn sites() -> MutexGuard<'static, HashMap<String, Site>> {
        SITES.get_or_init(|| Mutex::new(HashMap::new())).lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn set_armed(n: usize) {
        ARMED.store(n, Ordering::Relaxed);
    }

    /// splitmix64: tiny, seedable, and good enough for fault dice.
    pub fn next_u64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Arms the failpoint `site` with `mode`, resetting its call count.
/// No-op without the `fault` feature.
pub fn configure(site: &str, mode: FaultMode) {
    #[cfg(feature = "fault")]
    {
        let mut sites = registry::sites();
        let seed = match mode {
            FaultMode::Probability { seed, .. } => seed,
            _ => 0,
        };
        sites.insert(site.to_string(), registry::Site { mode, calls: 0, fired: 0, rng: seed });
        registry::set_armed(sites.len());
    }
    #[cfg(not(feature = "fault"))]
    {
        let _ = (site, mode);
    }
}

/// Arms failpoints from the `CFP_FAULT` environment variable, so fault
/// runs can be driven through a spawned binary (the CI recovery matrix
/// does this to the CLI). Returns the number of sites armed.
///
/// Syntax: `site=mode` pairs separated by `;`, where mode is `always`,
/// `nth:N`, `after:N`, or `prob:P:SEED`. Malformed entries are ignored
/// (injection is a test aid; a typo must not take down a run). No-op
/// without the `fault` feature.
pub fn configure_from_env() -> usize {
    #[cfg(feature = "fault")]
    {
        let Ok(spec) = std::env::var("CFP_FAULT") else { return 0 };
        let mut armed = 0;
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            let Some((site, mode)) = entry.split_once('=') else { continue };
            let mode = match mode.trim().split(':').collect::<Vec<_>>().as_slice() {
                ["always"] => FaultMode::Always,
                ["nth", n] => match n.parse() {
                    Ok(n) => FaultMode::Nth(n),
                    Err(_) => continue,
                },
                ["after", n] => match n.parse() {
                    Ok(n) => FaultMode::AfterN(n),
                    Err(_) => continue,
                },
                ["prob", p, seed] => match (p.parse(), seed.parse()) {
                    (Ok(p), Ok(seed)) => FaultMode::Probability { p, seed },
                    _ => continue,
                },
                _ => continue,
            };
            configure(site.trim(), mode);
            armed += 1;
        }
        armed
    }
    #[cfg(not(feature = "fault"))]
    {
        0
    }
}

/// Disarms the failpoint `site`. No-op without the `fault` feature.
pub fn clear(site: &str) {
    #[cfg(feature = "fault")]
    {
        let mut sites = registry::sites();
        sites.remove(site);
        registry::set_armed(sites.len());
    }
    #[cfg(not(feature = "fault"))]
    let _ = site;
}

/// Disarms every failpoint. No-op without the `fault` feature.
pub fn clear_all() {
    #[cfg(feature = "fault")]
    {
        let mut sites = registry::sites();
        sites.clear();
        registry::set_armed(0);
    }
}

/// Number of times `site` has been evaluated since it was configured.
/// Always 0 without the `fault` feature.
pub fn calls(site: &str) -> u64 {
    #[cfg(feature = "fault")]
    {
        return registry::sites().get(site).map_or(0, |s| s.calls);
    }
    #[cfg(not(feature = "fault"))]
    {
        let _ = site;
        0
    }
}

/// Number of times `site` has fired since it was configured.
/// Always 0 without the `fault` feature.
pub fn fired(site: &str) -> u64 {
    #[cfg(feature = "fault")]
    {
        return registry::sites().get(site).map_or(0, |s| s.fired);
    }
    #[cfg(not(feature = "fault"))]
    {
        let _ = site;
        0
    }
}

/// Evaluates the failpoint `site`: `true` means the caller must take its
/// failure path now.
///
/// Without the `fault` feature this is a constant `false` that the
/// optimiser removes along with the failure branch. With the feature on,
/// an unarmed registry costs one relaxed atomic load.
#[inline(always)]
pub fn should_fail(site: &str) -> bool {
    #[cfg(feature = "fault")]
    {
        if registry::ARMED.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            return false;
        }
        should_fail_slow(site)
    }
    #[cfg(not(feature = "fault"))]
    {
        let _ = site;
        false
    }
}

#[cfg(feature = "fault")]
#[cold]
fn should_fail_slow(site: &str) -> bool {
    let mut sites = registry::sites();
    let Some(s) = sites.get_mut(site) else {
        return false;
    };
    s.calls += 1;
    let fire = match s.mode {
        FaultMode::Always => true,
        FaultMode::Nth(n) => s.calls == n,
        FaultMode::AfterN(n) => s.calls > n,
        FaultMode::Probability { p, .. } => {
            let dice = registry::next_u64(&mut s.rng) as f64 / (u64::MAX as f64);
            dice < p
        }
    };
    if fire {
        s.fired += 1;
    }
    fire
}

#[cfg(all(test, feature = "fault"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The registry is process-global; tests serialise through this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_sites_never_fire() {
        let _g = lock();
        clear_all();
        assert!(!should_fail("nope"));
        assert_eq!(calls("nope"), 0);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let _g = lock();
        clear_all();
        configure("t.nth", FaultMode::Nth(3));
        let fires: Vec<bool> = (0..6).map(|_| should_fail("t.nth")).collect();
        assert_eq!(fires, [false, false, true, false, false, false]);
        assert_eq!(calls("t.nth"), 6);
        assert_eq!(fired("t.nth"), 1);
        clear_all();
    }

    #[test]
    fn after_n_fires_from_then_on() {
        let _g = lock();
        clear_all();
        configure("t.after", FaultMode::AfterN(2));
        let fires: Vec<bool> = (0..5).map(|_| should_fail("t.after")).collect();
        assert_eq!(fires, [false, false, true, true, true]);
        clear_all();
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let _g = lock();
        clear_all();
        let run = |seed| {
            configure("t.prob", FaultMode::Probability { p: 0.5, seed });
            let v: Vec<bool> = (0..64).map(|_| should_fail("t.prob")).collect();
            clear("t.prob");
            v
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must replay the same pattern");
        assert_ne!(a, c, "different seeds must diverge");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f), "p=0.5 mixes outcomes");
        clear_all();
    }

    #[test]
    fn env_configuration_arms_sites() {
        let _g = lock();
        clear_all();
        // Setting an env var is process-global, like the registry this
        // test already serialises on.
        std::env::set_var(
            "CFP_FAULT",
            "a.site=always; b.site=nth:2 ;bad-entry;c.site=prob:0.5:7;d.site=wat:1",
        );
        assert_eq!(configure_from_env(), 3, "malformed entries are skipped");
        assert!(should_fail("a.site"));
        assert!(!should_fail("b.site"));
        assert!(should_fail("b.site"), "nth:2 fires on the second call");
        assert!(!should_fail("d.site"), "unknown mode is ignored");
        std::env::remove_var("CFP_FAULT");
        clear_all();
    }

    #[test]
    fn clear_disarms() {
        let _g = lock();
        clear_all();
        configure("t.clear", FaultMode::Always);
        assert!(should_fail("t.clear"));
        clear("t.clear");
        assert!(!should_fail("t.clear"));
        clear_all();
    }
}
