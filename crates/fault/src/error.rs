//! The unified error type of the mining pipeline.

use std::fmt;
use std::io;

/// Everything that can go wrong between reading a dataset and emitting
/// the last itemset.
///
/// Every phase of the pipeline reports through this one enum so callers
/// (the CLI above all) can map failures to stable exit codes and
/// diagnostics. Variants deliberately carry enough context to name the
/// failing phase and quantify the resource that ran out.
#[derive(Debug)]
pub enum CfpError {
    /// An operating-system I/O failure (open, read, write).
    Io(io::Error),
    /// A malformed input line rejected under
    /// `ParsePolicy::Strict`; `line` is 1-based.
    Parse {
        /// 1-based input line the bad token was found on.
        line: u64,
        /// What was wrong with it.
        message: String,
    },
    /// An arena allocation could not be satisfied: the configured
    /// `MemoryBudget` would be exceeded, the 40-bit address space is
    /// exhausted, or a failpoint injected the condition.
    MemoryExhausted {
        /// Pipeline phase that hit the wall (`"build"`, `"mine"`, …;
        /// empty until a phase attaches itself via
        /// [`with_phase`](CfpError::with_phase)).
        phase: &'static str,
        /// Bytes the failing allocation asked for.
        requested: u64,
        /// Arena bytes already carved when the allocation failed.
        footprint: u64,
        /// The configured budget in bytes (0 = no budget; the 40-bit
        /// address space ran out instead).
        limit: u64,
    },
    /// A worker thread of the parallel miner panicked or lost its
    /// result channel; the remaining workers were cancelled and the
    /// process kept running.
    WorkerPanic {
        /// Index of the failing worker.
        worker: usize,
        /// The panic payload (or channel diagnostic), stringified.
        message: String,
    },
    /// The watchdog saw no progress (no result batches, no heartbeat
    /// advance) from a parallel worker for the configured timeout; the
    /// siblings were cancelled via the poison flag and the run reported
    /// a structured error instead of hanging.
    WorkerTimeout {
        /// Index of the stalled worker.
        worker: usize,
        /// Milliseconds the watchdog waited without seeing progress.
        waited_ms: u64,
    },
    /// A spill-file operation of the out-of-core rung failed permanently
    /// (after bounded retries for transient kinds): ENOSPC or a short
    /// write while spilling a partition, a read error while loading one
    /// back, or a checksum/schema mismatch mapping the loaded bytes.
    Spill {
        /// The failing operation: `"write"`, `"read"`, or `"map"`.
        op: &'static str,
        /// The spill file (or directory) involved.
        path: String,
        /// The underlying failure, stringified.
        message: String,
    },
    /// The run was stopped cooperatively at a task boundary: SIGINT or
    /// SIGTERM arrived, or the `--deadline` wall-clock budget expired.
    /// Buffered output has been flushed and (when checkpointing is
    /// armed) a manifest committed, so the run is exactly resumable.
    Interrupted,
    /// A checkpoint manifest could not be written, or an existing one
    /// was rejected on resume: torn/truncated JSON, a checksum or schema
    /// mismatch, or a config fingerprint that does not match the
    /// current run. Resuming from a wrong manifest would silently remine
    /// wrong, so this is a hard structured error.
    Checkpoint {
        /// The manifest file (or directory) involved.
        path: String,
        /// What was wrong with it.
        message: String,
    },
    /// A shared state directory (`--spill-dir`, `--checkpoint-dir`) is
    /// locked by another live process; running two miners against the
    /// same directory would clobber each other's files.
    Locked {
        /// The lock file holding the claim.
        path: String,
        /// PID of the (live) process owning the lock.
        pid: u32,
    },
}

/// Exit code for command-line usage errors (bad flags, missing
/// arguments). Kept here so the code space is defined in one place.
pub const EXIT_USAGE: i32 = 2;

impl CfpError {
    /// The process exit code the CLI maps this error to.
    ///
    /// The space is documented in the README: 0 success, 1 I/O error,
    /// 2 usage error ([`EXIT_USAGE`]), 3 malformed input, 4 memory
    /// exhausted, 5 worker panic, 6 worker timeout, 7 spill failure,
    /// 8 interrupted (resumable), 9 checkpoint invalid, 10 directory
    /// locked by another run.
    pub fn exit_code(&self) -> i32 {
        match self {
            CfpError::Io(_) => 1,
            CfpError::Parse { .. } => 3,
            CfpError::MemoryExhausted { .. } => 4,
            CfpError::WorkerPanic { .. } => 5,
            CfpError::WorkerTimeout { .. } => 6,
            CfpError::Spill { .. } => 7,
            CfpError::Interrupted => 8,
            CfpError::Checkpoint { .. } => 9,
            CfpError::Locked { .. } => 10,
        }
    }

    /// Names the pipeline phase on a [`MemoryExhausted`]
    /// (CfpError::MemoryExhausted) error; other variants pass through
    /// unchanged. An already-named phase is kept (the innermost frame
    /// knows best).
    pub fn with_phase(self, phase: &'static str) -> CfpError {
        match self {
            CfpError::MemoryExhausted { phase: "", requested, footprint, limit } => {
                CfpError::MemoryExhausted { phase, requested, footprint, limit }
            }
            other => other,
        }
    }
}

impl fmt::Display for CfpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfpError::Io(e) => write!(f, "I/O error: {e}"),
            CfpError::Parse { line, message } => {
                write!(f, "malformed input at line {line}: {message}")
            }
            CfpError::MemoryExhausted { phase, requested, footprint, limit } => {
                let phase = if phase.is_empty() { "alloc" } else { phase };
                write!(
                    f,
                    "memory exhausted in {phase} phase: {requested} bytes requested, \
                     {footprint} bytes carved"
                )?;
                if *limit > 0 {
                    write!(f, ", budget {limit} bytes")?;
                }
                Ok(())
            }
            CfpError::WorkerPanic { worker, message } => {
                write!(f, "worker {worker} failed: {message}")
            }
            CfpError::WorkerTimeout { worker, waited_ms } => {
                write!(
                    f,
                    "worker {worker} stalled: no progress for {waited_ms} ms; siblings cancelled"
                )
            }
            CfpError::Spill { op, path, message } => {
                write!(f, "spill {op} failed at {path}: {message}")
            }
            CfpError::Interrupted => {
                write!(f, "interrupted at a task boundary; output is resumable")
            }
            CfpError::Checkpoint { path, message } => {
                write!(f, "checkpoint rejected at {path}: {message}")
            }
            CfpError::Locked { path, pid } => {
                write!(f, "directory locked by running process {pid} (lock file {path})")
            }
        }
    }
}

impl std::error::Error for CfpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CfpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CfpError {
    fn from(e: io::Error) -> Self {
        CfpError::Io(e)
    }
}

/// Lossy back-conversion for APIs whose signature predates [`CfpError`]
/// (`fimi::read` and friends return `io::Result`).
impl From<CfpError> for io::Error {
    fn from(e: CfpError) -> Self {
        match e {
            CfpError::Io(e) => e,
            CfpError::Parse { .. } => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
            CfpError::MemoryExhausted { .. } => {
                io::Error::new(io::ErrorKind::OutOfMemory, e.to_string())
            }
            CfpError::WorkerPanic { .. } => io::Error::other(e.to_string()),
            CfpError::WorkerTimeout { .. } => {
                io::Error::new(io::ErrorKind::TimedOut, e.to_string())
            }
            CfpError::Spill { .. } => io::Error::other(e.to_string()),
            CfpError::Interrupted => io::Error::new(io::ErrorKind::Interrupted, e.to_string()),
            CfpError::Checkpoint { .. } => {
                io::Error::new(io::ErrorKind::InvalidData, e.to_string())
            }
            CfpError::Locked { .. } => io::Error::new(io::ErrorKind::WouldBlock, e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_documented() {
        let errs = [
            CfpError::Io(io::Error::other("x")),
            CfpError::Parse { line: 1, message: "x".into() },
            CfpError::MemoryExhausted { phase: "build", requested: 1, footprint: 2, limit: 3 },
            CfpError::WorkerPanic { worker: 0, message: "x".into() },
            CfpError::WorkerTimeout { worker: 0, waited_ms: 100 },
            CfpError::Spill { op: "write", path: "/tmp/p0.cfpa".into(), message: "x".into() },
            CfpError::Interrupted,
            CfpError::Checkpoint { path: "/ckpt/manifest.json".into(), message: "x".into() },
            CfpError::Locked { path: "/ckpt/cfp.lock".into(), pid: 1234 },
        ];
        let mut codes: Vec<i32> = errs.iter().map(CfpError::exit_code).collect();
        codes.push(EXIT_USAGE);
        codes.push(0); // success
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len(), "exit codes must not collide: {codes:?}");
        assert_eq!(codes, vec![1, 3, 4, 5, 6, 7, 8, 9, 10, 2, 0]);
    }

    #[test]
    fn with_phase_fills_only_empty_phase() {
        let e = CfpError::MemoryExhausted { phase: "", requested: 8, footprint: 64, limit: 0 };
        match e.with_phase("build") {
            CfpError::MemoryExhausted { phase, .. } => assert_eq!(phase, "build"),
            other => panic!("{other:?}"),
        }
        let e = CfpError::MemoryExhausted { phase: "mine", requested: 8, footprint: 64, limit: 0 };
        match e.with_phase("build") {
            CfpError::MemoryExhausted { phase, .. } => assert_eq!(phase, "mine"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn display_names_the_phase_and_budget() {
        let e = CfpError::MemoryExhausted {
            phase: "build",
            requested: 24,
            footprint: 960,
            limit: 1024,
        };
        let s = e.to_string();
        assert!(s.contains("build"), "{s}");
        assert!(s.contains("1024"), "{s}");
        let e = CfpError::Parse { line: 17, message: "bad item \"x\"".into() };
        assert!(e.to_string().contains("line 17"));
        let e = CfpError::WorkerTimeout { worker: 3, waited_ms: 750 };
        let s = e.to_string();
        assert!(s.contains("worker 3") && s.contains("750"), "{s}");
        let e = CfpError::Spill {
            op: "write",
            path: "/spill/p3.cfpa".into(),
            message: "No space left on device".into(),
        };
        let s = e.to_string();
        assert!(s.contains("write") && s.contains("p3.cfpa") && s.contains("space"), "{s}");
        let e = CfpError::Checkpoint { path: "/c/manifest.json".into(), message: "torn".into() };
        let s = e.to_string();
        assert!(s.contains("manifest.json") && s.contains("torn"), "{s}");
        let e = CfpError::Locked { path: "/c/cfp.lock".into(), pid: 77 };
        let s = e.to_string();
        assert!(s.contains("cfp.lock") && s.contains("77"), "{s}");
        assert!(CfpError::Interrupted.to_string().contains("resumable"));
    }

    #[test]
    fn io_round_trip_preserves_kind() {
        let e = CfpError::from(io::Error::new(io::ErrorKind::BrokenPipe, "pipe"));
        let back: io::Error = e.into();
        assert_eq!(back.kind(), io::ErrorKind::BrokenPipe);
    }
}
