//! Logical depth-first traversal of the CFP-tree.
//!
//! The traversal yields the *logical* FP-tree: chain entries and embedded
//! leaves appear as ordinary nodes. Siblings are visited in ascending item
//! order (in-order over the sibling BST), which makes the traversal — and
//! everything derived from it, like the CFP-array layout — deterministic.
//!
//! Events come in balanced `Enter`/`Leave` pairs; consumers reconstruct
//! absolute items by accumulating `Δitem` along the current path (the
//! virtual root sits at item −1, so a root child with item `i` carries
//! `Δitem = i + 1`).

use crate::node::{self, ChainNode, StdNode};
use crate::tree::CfpTree;
use cfp_encoding::mask::is_chain;

/// One traversal event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DfsEvent {
    /// A node is entered (pre-order position).
    Enter {
        /// Delta to the parent's item (≥ 1; relative to −1 at the root).
        ditem: u32,
        /// The node's partial count.
        pcount: u32,
    },
    /// The most recently entered unclosed node is left (post-order).
    Leave,
}

enum Frame {
    /// Resolve a raw slot value (BST in-order for allocated nodes).
    Slot(u64),
    /// Emit the body of a standard node, then its suffix subtree.
    StdBody { ditem: u32, pcount: u32, suffix: u64 },
    /// Emit chain entry `idx`, then deeper entries / the suffix.
    ChainEntry { chain: ChainNode, idx: usize },
    /// Emit a `Leave`.
    Leave,
}

/// Iterator over the logical DFS events of a [`CfpTree`].
pub struct DfsIter<'t> {
    tree: &'t CfpTree,
    stack: Vec<Frame>,
}

impl<'t> DfsIter<'t> {
    /// Starts a traversal at the root.
    pub fn new(tree: &'t CfpTree) -> Self {
        DfsIter { tree, stack: vec![Frame::Slot(tree.root_value())] }
    }
}

impl Iterator for DfsIter<'_> {
    type Item = DfsEvent;

    fn next(&mut self) -> Option<DfsEvent> {
        while let Some(frame) = self.stack.pop() {
            match frame {
                Frame::Slot(raw) => {
                    if raw == 0 {
                        continue;
                    }
                    if node::is_embedded(raw) {
                        let (ditem, pcount) = node::unembed(raw);
                        self.stack.push(Frame::Leave);
                        return Some(DfsEvent::Enter { ditem, pcount });
                    }
                    let buf = self.tree.arena().tail(raw);
                    if is_chain(buf[0]) {
                        let (chain, _) = ChainNode::decode(buf);
                        self.stack.push(Frame::ChainEntry { chain, idx: 0 });
                    } else {
                        let (std, _) = StdNode::decode(buf);
                        // In-order: left subtree, node body, right subtree.
                        self.stack.push(Frame::Slot(std.right));
                        self.stack.push(Frame::StdBody {
                            ditem: std.ditem,
                            pcount: std.pcount,
                            suffix: std.suffix,
                        });
                        self.stack.push(Frame::Slot(std.left));
                    }
                }
                Frame::StdBody { ditem, pcount, suffix } => {
                    self.stack.push(Frame::Leave);
                    self.stack.push(Frame::Slot(suffix));
                    return Some(DfsEvent::Enter { ditem, pcount });
                }
                Frame::ChainEntry { chain, idx } => {
                    let last = idx + 1 == chain.len;
                    let ditem = chain.ditems[idx] as u32;
                    let pcount = if last { chain.pcount } else { 0 };
                    self.stack.push(Frame::Leave);
                    if last {
                        self.stack.push(Frame::Slot(chain.suffix));
                    } else {
                        self.stack.push(Frame::ChainEntry { chain, idx: idx + 1 });
                    }
                    return Some(DfsEvent::Enter { ditem, pcount });
                }
                Frame::Leave => return Some(DfsEvent::Leave),
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(tree: &CfpTree) -> Vec<DfsEvent> {
        DfsIter::new(tree).collect()
    }

    #[test]
    fn empty_tree_yields_no_events() {
        let t = CfpTree::new(3);
        assert!(events(&t).is_empty());
    }

    #[test]
    fn events_are_balanced() {
        let mut t = CfpTree::new(16);
        t.insert(&[0, 1, 2], 1);
        t.insert(&[0, 3], 2);
        t.insert(&[5], 1);
        let evs = events(&t);
        let mut depth = 0i64;
        for e in &evs {
            match e {
                DfsEvent::Enter { .. } => depth += 1,
                DfsEvent::Leave => {
                    depth -= 1;
                    assert!(depth >= 0);
                }
            }
        }
        assert_eq!(depth, 0);
        let enters = evs.iter().filter(|e| matches!(e, DfsEvent::Enter { .. })).count();
        assert_eq!(enters as u64, t.num_nodes());
    }

    #[test]
    fn siblings_visited_in_ascending_item_order() {
        let mut t = CfpTree::new(64);
        for item in [31u32, 5, 47, 0, 63, 22] {
            t.insert(&[item], 1);
        }
        let mut items = Vec::new();
        // All nodes are root children (depth 1), so the parent item is the
        // virtual root's −1 throughout.
        for e in events(&t) {
            if let DfsEvent::Enter { ditem, .. } = e {
                items.push(ditem - 1);
            }
        }
        assert_eq!(items, vec![0, 5, 22, 31, 47, 63]);
    }

    #[test]
    fn nesting_reflects_paths() {
        let mut t = CfpTree::new(8);
        t.insert(&[1, 2, 4], 3);
        let evs = events(&t);
        assert_eq!(
            evs,
            vec![
                DfsEvent::Enter { ditem: 2, pcount: 0 },
                DfsEvent::Enter { ditem: 1, pcount: 0 },
                DfsEvent::Enter { ditem: 2, pcount: 3 },
                DfsEvent::Leave,
                DfsEvent::Leave,
                DfsEvent::Leave,
            ]
        );
    }

    #[test]
    fn pcounts_sum_to_inserted_weight() {
        let mut t = CfpTree::new(10);
        t.insert(&[0, 1], 2);
        t.insert(&[0, 1, 2], 1);
        t.insert(&[4], 7);
        let total: u64 = events(&t)
            .iter()
            .filter_map(|e| match e {
                DfsEvent::Enter { pcount, .. } => Some(*pcount as u64),
                _ => None,
            })
            .sum();
        assert_eq!(total, t.weight_total());
    }
}
