//! Compressibility statistics of the CFP-tree (Table 2 and Figure 6(a)).

use crate::dfs::{DfsEvent, DfsIter};
use crate::node;
use crate::tree::CfpTree;
use cfp_encoding::mask::is_chain;
use cfp_metrics::LeadingZeroHistogram;

/// Leading-zero-byte histograms of the CFP-tree's data fields (Table 2).
#[derive(Clone, Debug, Default)]
pub struct CfpTreeFieldStats {
    /// The Δitem field over all logical nodes.
    pub ditem: LeadingZeroHistogram,
    /// The pcount field over all logical nodes.
    pub pcount: LeadingZeroHistogram,
}

/// Analyzes the logical nodes of `tree` (Table 2 rows).
pub fn analyze(tree: &CfpTree) -> CfpTreeFieldStats {
    let mut stats = CfpTreeFieldStats::default();
    for ev in DfsIter::new(tree) {
        if let DfsEvent::Enter { ditem, pcount } = ev {
            stats.ditem.record(ditem);
            stats.pcount.record(pcount);
        }
    }
    stats
}

/// Breakdown of the physical node population (Figure 6(a) discussion).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeBreakdown {
    /// Allocated standard nodes.
    pub standard: u64,
    /// Allocated chain nodes.
    pub chain_nodes: u64,
    /// Logical entries stored inside chain nodes.
    pub chain_entries: u64,
    /// Leaves embedded in their parents' pointer fields.
    pub embedded: u64,
}

impl NodeBreakdown {
    /// Total logical FP-tree nodes represented.
    pub fn logical_nodes(&self) -> u64 {
        self.standard + self.chain_entries + self.embedded
    }
}

/// Counts the physical node kinds of `tree`.
pub fn node_breakdown(tree: &CfpTree) -> NodeBreakdown {
    let mut b = NodeBreakdown::default();
    // Walk physical nodes: reuse the DFS by resolving slots ourselves.
    let mut stack = vec![tree.root_value()];
    while let Some(raw) = stack.pop() {
        if raw == 0 {
            continue;
        }
        if node::is_embedded(raw) {
            b.embedded += 1;
            continue;
        }
        let buf = tree.arena().tail(raw);
        if is_chain(buf[0]) {
            let (chain, _) = node::ChainNode::decode(buf);
            b.chain_nodes += 1;
            b.chain_entries += chain.len as u64;
            stack.push(chain.suffix);
        } else {
            let (std, _) = node::StdNode::decode(buf);
            b.standard += 1;
            stack.push(std.left);
            stack.push(std.right);
            stack.push(std.suffix);
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcount_is_mostly_zero_on_shared_prefixes() {
        let mut t = CfpTree::new(32);
        let base: Vec<u32> = (0..20).collect();
        for tail in 20..30u32 {
            let mut txn = base.clone();
            txn.push(tail);
            t.insert(&txn, 1);
        }
        let s = analyze(&t);
        // Only the 10 leaves end transactions; 20 shared-prefix nodes have
        // pcount 0 (4 leading zero bytes).
        assert_eq!(s.pcount.buckets()[4], 20);
        assert_eq!(s.pcount.total(), t.num_nodes());
    }

    #[test]
    fn ditem_is_never_zero() {
        let mut t = CfpTree::new(16);
        t.insert(&[0, 3, 9], 1);
        t.insert(&[1, 3], 1);
        let s = analyze(&t);
        assert_eq!(s.ditem.buckets()[4], 0, "Δitem 0 must not occur");
    }

    #[test]
    fn breakdown_accounts_for_every_logical_node() {
        let mut t = CfpTree::new(64);
        t.insert(&(0..10).collect::<Vec<_>>(), 1); // chain
        t.insert(&[20], 1); // embedded leaf
        t.insert(&[20, 40], 1); // unembeds, new embedded child
        t.insert(&[0, 5], 1); // splits the chain
        let b = node_breakdown(&t);
        assert_eq!(b.logical_nodes(), t.num_nodes());
        assert!(b.chain_nodes >= 1);
        assert!(b.embedded >= 1);
        assert!(b.standard >= 1);
    }

    #[test]
    fn empty_tree_breakdown_is_zero() {
        let t = CfpTree::new(4);
        assert_eq!(node_breakdown(&t), NodeBreakdown::default());
    }
}
