//! Compressibility statistics of the CFP-tree (Table 2 and Figure 6(a)).
//!
//! Beyond the paper-table histograms, [`tree_report`] produces the full
//! per-structure report behind `cfp-memstat/1`: physical node counts,
//! chain-length and fanout distributions, and an *exact-sum* savings
//! ladder that itemizes what each §2.3 encoding trick contributes. The
//! ladder starts from a naive pointer-based node (4-byte item + 4-byte
//! count + three 8-byte pointers = 32 bytes per logical node) and
//! subtracts each trick, then adds the encoding's own overheads back,
//! landing *exactly* on the arena's live bytes — see
//! [`CfpTreeReport::identity_residual`].

use crate::dfs::{DfsEvent, DfsIter};
use crate::node;
use crate::tree::CfpTree;
use cfp_encoding::mask::{is_chain, NodeMask, MAX_CHAIN_LEN};
use cfp_encoding::varint;
use cfp_memman::MIN_CHUNK;
use cfp_metrics::LeadingZeroHistogram;

/// Leading-zero-byte histograms of the CFP-tree's data fields (Table 2).
#[derive(Clone, Debug, Default)]
pub struct CfpTreeFieldStats {
    /// The Δitem field over all logical nodes.
    pub ditem: LeadingZeroHistogram,
    /// The pcount field over all logical nodes.
    pub pcount: LeadingZeroHistogram,
}

/// Analyzes the logical nodes of `tree` (Table 2 rows).
pub fn analyze(tree: &CfpTree) -> CfpTreeFieldStats {
    let mut stats = CfpTreeFieldStats::default();
    for ev in DfsIter::new(tree) {
        if let DfsEvent::Enter { ditem, pcount } = ev {
            stats.ditem.record(ditem);
            stats.pcount.record(pcount);
        }
    }
    stats
}

/// Breakdown of the physical node population (Figure 6(a) discussion).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeBreakdown {
    /// Allocated standard nodes.
    pub standard: u64,
    /// Allocated chain nodes.
    pub chain_nodes: u64,
    /// Logical entries stored inside chain nodes.
    pub chain_entries: u64,
    /// Leaves embedded in their parents' pointer fields.
    pub embedded: u64,
}

impl NodeBreakdown {
    /// Total logical FP-tree nodes represented.
    pub fn logical_nodes(&self) -> u64 {
        self.standard + self.chain_entries + self.embedded
    }
}

/// Counts the physical node kinds of `tree`.
pub fn node_breakdown(tree: &CfpTree) -> NodeBreakdown {
    let mut b = NodeBreakdown::default();
    // Walk physical nodes: reuse the DFS by resolving slots ourselves.
    let mut stack = vec![tree.root_value()];
    while let Some(raw) = stack.pop() {
        if raw == 0 {
            continue;
        }
        if node::is_embedded(raw) {
            b.embedded += 1;
            continue;
        }
        let buf = tree.arena().tail(raw);
        if is_chain(buf[0]) {
            let (chain, _) = node::ChainNode::decode(buf);
            b.chain_nodes += 1;
            b.chain_entries += chain.len as u64;
            stack.push(chain.suffix);
        } else {
            let (std, _) = node::StdNode::decode(buf);
            b.standard += 1;
            stack.push(std.left);
            stack.push(std.right);
            stack.push(std.suffix);
        }
    }
    b
}

/// Bytes of a naive pointer-based FP-tree node: 4-byte item, 4-byte
/// count, three native 8-byte pointers (parent-of-the-paper layouts).
pub const NAIVE_NODE_BYTES: u64 = 4 + 4 + 3 * 8;

/// Fanout histogram buckets: exact counts 0..=15, last bucket is 16+.
pub const FANOUT_BUCKETS: usize = 17;

/// The full per-structure report of a CFP-tree for `cfp-memstat/1`.
///
/// All byte figures are exact, derived from one walk over the physical
/// nodes. The savings ladder satisfies, by construction,
///
/// ```text
/// naive_bytes - ptr40_saved - null_suppression_saved
///             - zero_suppression_saved
///             + header_bytes + chunk_rounding + root slot (5)
///     == arena_used
/// ```
///
/// so every byte of the paper's compression claim is itemized rather
/// than asserted ([`identity_residual`](Self::identity_residual) is the
/// left side minus the right side, pinned to 0 in tests and in the CI
/// audit). Chain and embedding contributions overlap the suppression
/// rows (a chain entry avoids a mask *and* pointer bytes), so they are
/// reported as memo rows outside the exact sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfpTreeReport {
    /// Physical node population.
    pub breakdown: NodeBreakdown,
    /// Live arena bytes (all node chunks plus the 5-byte root slot).
    pub arena_used: u64,
    /// Carved arena bytes (bump high-water mark, excluding the burned
    /// null byte) — what the pool accounts for.
    pub arena_carved: u64,
    /// Stored 5-byte pointer fields across all allocated nodes.
    pub stored_ptr_fields: u64,
    /// Stored Δitem/pcount payload bytes across all allocated nodes.
    pub field_bytes: u64,
    /// Mask/header bytes (one per allocated node).
    pub header_bytes: u64,
    /// Σ encoded node sizes (excluding the root slot).
    pub encoded_bytes: u64,
    /// Bytes lost to the arena's minimum chunk size
    /// (`Σ max(encoded, MIN_CHUNK) − encoded`).
    pub chunk_rounding: u64,
    /// The naive baseline: `NAIVE_NODE_BYTES ×` logical nodes.
    pub naive_bytes: u64,
    /// Bytes saved by 40-bit pointers: 3 bytes × 3 fields per logical
    /// node.
    pub ptr40_saved: u64,
    /// Bytes saved by not storing absent pointers:
    /// `5 × (3 × logical − stored_ptr_fields)`.
    pub null_suppression_saved: u64,
    /// Bytes saved by zero-suppressed/varint payloads:
    /// `8 × logical − field_bytes`.
    pub zero_suppression_saved: u64,
    /// Memo row: bytes chain packing avoids vs encoding every entry as
    /// a minimal standard node (6 per non-terminal entry). Overlaps the
    /// suppression rows.
    pub chain_memo_saved: u64,
    /// Memo row: bytes embedding avoids — the minimal standard-node
    /// encoding of every embedded leaf (its payload rides in a parent
    /// slot that exists either way). Overlaps the suppression rows.
    pub embed_memo_saved: u64,
    /// Standard-node pointer-presence histogram, indexed by
    /// `has_left | has_right << 1 | has_suffix << 2`.
    pub ptr_mask_hist: [u64; 8],
    /// Chain-length histogram (index = entries per chain node; lengths
    /// are 2..=15, so indexes 0 and 1 stay empty).
    pub chain_len_hist: [u64; MAX_CHAIN_LEN + 1],
    /// Trie-fanout histogram over logical nodes (children per node;
    /// last bucket is 16+).
    pub fanout_hist: [u64; FANOUT_BUCKETS],
    /// Fanout of the virtual root (number of distinct first items).
    /// Reported separately so `fanout_hist` totals the logical nodes.
    pub root_fanout: u64,
}

impl CfpTreeReport {
    /// Logical FP-tree nodes represented.
    pub fn logical_nodes(&self) -> u64 {
        self.breakdown.logical_nodes()
    }

    /// Average live bytes per logical node (0 when empty).
    pub fn bytes_per_node(&self) -> f64 {
        let n = self.logical_nodes();
        if n == 0 {
            0.0
        } else {
            self.arena_used as f64 / n as f64
        }
    }

    /// The documented exact-sum identity, as `claimed − actual`; must
    /// be 0 for the report to be trustworthy.
    pub fn identity_residual(&self) -> i64 {
        let claimed = self.naive_bytes as i64
            - self.ptr40_saved as i64
            - self.null_suppression_saved as i64
            - self.zero_suppression_saved as i64
            + self.header_bytes as i64
            + self.chunk_rounding as i64
            + MIN_CHUNK as i64; // the root slot
        claimed - self.arena_used as i64
    }
}

/// Number of siblings in the BST a slot value roots (the trie fanout of
/// the node owning that slot).
fn bst_count(tree: &CfpTree, slot: u64) -> u64 {
    let mut n = 0;
    let mut stack = vec![slot];
    while let Some(raw) = stack.pop() {
        if raw == 0 {
            continue;
        }
        n += 1;
        if node::is_embedded(raw) {
            continue;
        }
        let buf = tree.arena().tail(raw);
        if is_chain(buf[0]) {
            // Chain nodes carry no sibling pointers: a chain is always
            // a lone child in its BST position.
            continue;
        }
        let (std, _) = node::StdNode::decode(buf);
        stack.push(std.left);
        stack.push(std.right);
    }
    n
}

/// Walks the physical nodes of `tree` and produces the full
/// [`CfpTreeReport`]. One pass plus a per-node BST count for fanout —
/// analytics cost, not mining cost.
pub fn tree_report(tree: &CfpTree) -> CfpTreeReport {
    let mut r = CfpTreeReport {
        breakdown: NodeBreakdown::default(),
        arena_used: tree.arena().used(),
        arena_carved: tree.arena().footprint().saturating_sub(1),
        stored_ptr_fields: 0,
        field_bytes: 0,
        header_bytes: 0,
        encoded_bytes: 0,
        chunk_rounding: 0,
        naive_bytes: 0,
        ptr40_saved: 0,
        null_suppression_saved: 0,
        zero_suppression_saved: 0,
        chain_memo_saved: 0,
        embed_memo_saved: 0,
        ptr_mask_hist: [0; 8],
        chain_len_hist: [0; MAX_CHAIN_LEN + 1],
        fanout_hist: [0; FANOUT_BUCKETS],
        root_fanout: bst_count(tree, tree.root_value()),
    };
    let record_fanout = |hist: &mut [u64; FANOUT_BUCKETS], fanout: u64| {
        hist[(fanout as usize).min(FANOUT_BUCKETS - 1)] += 1;
    };
    let mut stack = vec![tree.root_value()];
    while let Some(raw) = stack.pop() {
        if raw == 0 {
            continue;
        }
        if node::is_embedded(raw) {
            let (ditem, pcount) = node::unembed(raw);
            r.breakdown.embedded += 1;
            record_fanout(&mut r.fanout_hist, 0);
            // What this leaf would cost as a minimal standard node.
            let as_std = node::StdNode { ditem, pcount, ..Default::default() };
            r.embed_memo_saved += as_std.encoded_size() as u64;
            continue;
        }
        let buf = tree.arena().tail(raw);
        let size = node::node_size(buf);
        r.encoded_bytes += size as u64;
        r.chunk_rounding += (size.max(MIN_CHUNK) - size) as u64;
        r.header_bytes += 1;
        if is_chain(buf[0]) {
            let (chain, _) = node::ChainNode::decode(buf);
            r.breakdown.chain_nodes += 1;
            r.breakdown.chain_entries += chain.len as u64;
            r.chain_len_hist[chain.len] += 1;
            // Entries + the varint pcount are payload bytes.
            r.field_bytes += chain.len as u64 + varint::encoded_len(chain.pcount as u64) as u64;
            if chain.suffix != 0 {
                r.stored_ptr_fields += 1;
            }
            // Non-terminal entries have exactly one child; the last
            // entry's fanout is whatever its suffix BST holds.
            for _ in 1..chain.len {
                record_fanout(&mut r.fanout_hist, 1);
            }
            record_fanout(&mut r.fanout_hist, bst_count(tree, chain.suffix));
            r.chain_memo_saved += 6 * (chain.len as u64 - 1);
            stack.push(chain.suffix);
        } else {
            let (std, _) = node::StdNode::decode(buf);
            let mask = NodeMask::decode(buf[0]);
            r.breakdown.standard += 1;
            r.ptr_mask_hist[mask.has_left as usize
                | (mask.has_right as usize) << 1
                | (mask.has_suffix as usize) << 2] += 1;
            r.field_bytes += (mask.ditem_len + mask.pcount_len) as u64;
            r.stored_ptr_fields +=
                mask.has_left as u64 + mask.has_right as u64 + mask.has_suffix as u64;
            record_fanout(&mut r.fanout_hist, bst_count(tree, std.suffix));
            stack.push(std.left);
            stack.push(std.right);
            stack.push(std.suffix);
        }
    }
    let logical = r.breakdown.logical_nodes();
    r.naive_bytes = NAIVE_NODE_BYTES * logical;
    r.ptr40_saved = 3 * 3 * logical;
    r.null_suppression_saved = 5 * (3 * logical).saturating_sub(r.stored_ptr_fields);
    r.zero_suppression_saved = (8 * logical).saturating_sub(r.field_bytes);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcount_is_mostly_zero_on_shared_prefixes() {
        let mut t = CfpTree::new(32);
        let base: Vec<u32> = (0..20).collect();
        for tail in 20..30u32 {
            let mut txn = base.clone();
            txn.push(tail);
            t.insert(&txn, 1);
        }
        let s = analyze(&t);
        // Only the 10 leaves end transactions; 20 shared-prefix nodes have
        // pcount 0 (4 leading zero bytes).
        assert_eq!(s.pcount.buckets()[4], 20);
        assert_eq!(s.pcount.total(), t.num_nodes());
    }

    #[test]
    fn ditem_is_never_zero() {
        let mut t = CfpTree::new(16);
        t.insert(&[0, 3, 9], 1);
        t.insert(&[1, 3], 1);
        let s = analyze(&t);
        assert_eq!(s.ditem.buckets()[4], 0, "Δitem 0 must not occur");
    }

    #[test]
    fn breakdown_accounts_for_every_logical_node() {
        let mut t = CfpTree::new(64);
        t.insert(&(0..10).collect::<Vec<_>>(), 1); // chain
        t.insert(&[20], 1); // embedded leaf
        t.insert(&[20, 40], 1); // unembeds, new embedded child
        t.insert(&[0, 5], 1); // splits the chain
        let b = node_breakdown(&t);
        assert_eq!(b.logical_nodes(), t.num_nodes());
        assert!(b.chain_nodes >= 1);
        assert!(b.embedded >= 1);
        assert!(b.standard >= 1);
    }

    #[test]
    fn empty_tree_breakdown_is_zero() {
        let t = CfpTree::new(4);
        assert_eq!(node_breakdown(&t), NodeBreakdown::default());
    }

    /// A mixed-shape tree: a long chain, embedded leaves, splits.
    fn mixed_tree() -> CfpTree {
        let mut t = CfpTree::new(64);
        t.insert(&(0..12).collect::<Vec<_>>(), 1); // chain
        t.insert(&[20], 3); // embedded leaf
        t.insert(&[20, 40], 1); // unembeds, new embedded child
        t.insert(&[0, 5], 2); // splits the chain
        t.insert(&[0, 5, 9], 1);
        t.insert(&[1, 2, 3], 1);
        t
    }

    #[test]
    fn savings_ladder_identity_is_exact() {
        for t in [mixed_tree(), CfpTree::new(4), {
            let mut t = CfpTree::new(32);
            let base: Vec<u32> = (0..20).collect();
            for tail in 20..30u32 {
                let mut txn = base.clone();
                txn.push(tail);
                t.insert(&txn, 1);
            }
            t
        }] {
            let r = tree_report(&t);
            assert_eq!(r.identity_residual(), 0, "ladder must land exactly on arena bytes: {r:#?}");
        }
    }

    #[test]
    fn report_agrees_with_breakdown_and_arena() {
        let t = mixed_tree();
        let r = tree_report(&t);
        assert_eq!(r.breakdown, node_breakdown(&t));
        assert_eq!(r.logical_nodes(), t.num_nodes());
        assert_eq!(r.arena_used, t.arena_used());
        assert_eq!(r.arena_carved, t.arena_footprint() - 1);
        assert!(r.bytes_per_node() > 0.0);
        // The encoded bytes plus rounding plus the root slot are the
        // live bytes.
        assert_eq!(r.encoded_bytes + r.chunk_rounding + 5, r.arena_used);
    }

    #[test]
    fn fanout_hist_covers_every_logical_node() {
        let t = mixed_tree();
        let r = tree_report(&t);
        assert_eq!(r.fanout_hist.iter().sum::<u64>(), t.num_nodes());
        assert!(r.root_fanout >= 3, "items 0, 1, 20 head distinct subtrees");
        // Leaves exist, so fanout-0 is populated.
        assert!(r.fanout_hist[0] > 0);
    }

    #[test]
    fn chain_and_mask_histograms_match_population() {
        let t = mixed_tree();
        let r = tree_report(&t);
        assert_eq!(r.chain_len_hist.iter().sum::<u64>(), r.breakdown.chain_nodes);
        assert_eq!(r.chain_len_hist[0] + r.chain_len_hist[1], 0, "chains have >= 2 entries");
        assert_eq!(r.ptr_mask_hist.iter().sum::<u64>(), r.breakdown.standard);
        assert!(r.chain_memo_saved > 0);
        assert!(r.embed_memo_saved > 0);
    }

    #[test]
    fn savings_rows_are_itemized_and_positive_on_real_shapes() {
        let t = mixed_tree();
        let r = tree_report(&t);
        assert!(r.ptr40_saved > 0);
        assert!(r.null_suppression_saved > 0);
        assert!(r.zero_suppression_saved > 0);
        assert!(r.naive_bytes > r.arena_used, "the tree must beat the naive layout");
    }
}
