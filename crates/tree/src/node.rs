//! Byte-level codec for ternary CFP-tree nodes.
//!
//! Three physical layouts share the arena (see the crate docs): standard
//! nodes, chain nodes, and embedded leaves. The first two are allocated
//! chunks whose first byte discriminates them (the chain tag of
//! [`cfp_encoding::mask`]); embedded leaves live inside 5-byte *slot*
//! values and are discriminated by their `0xFF` top byte.
//!
//! A **slot value** is the raw 40-bit content of a pointer field:
//!
//! - `0`: empty (no child),
//! - top byte `0xFF`: an embedded leaf (`Δitem` in the next byte, 24-bit
//!   `pcount` in the rest),
//! - anything else: the arena offset of a standard or chain node.

use cfp_encoding::mask::{is_chain, ChainHeader, NodeMask, MAX_CHAIN_LEN};
use cfp_encoding::ptr40::{read_raw40, write_raw40, EMBED_MARKER};
use cfp_encoding::{varint, zerosup};

/// Maximum pcount storable in an embedded leaf (24 bits).
pub const EMBED_MAX_PCOUNT: u32 = (1 << 24) - 1;

/// Maximum Δitem storable in an embedded leaf or chain entry.
pub const EMBED_MAX_DITEM: u32 = 255;

// ---------------------------------------------------------------------
// Slot values
// ---------------------------------------------------------------------

/// Whether a slot value holds an embedded leaf.
#[inline]
pub fn is_embedded(raw: u64) -> bool {
    (raw >> 32) as u8 == EMBED_MARKER
}

/// Builds an embedded-leaf slot value, or `None` if the fields don't fit.
#[inline]
pub fn embed(ditem: u32, pcount: u32) -> Option<u64> {
    if (1..=EMBED_MAX_DITEM).contains(&ditem) && pcount <= EMBED_MAX_PCOUNT {
        Some(((EMBED_MARKER as u64) << 32) | ((ditem as u64) << 24) | pcount as u64)
    } else {
        None
    }
}

/// Extracts `(Δitem, pcount)` from an embedded-leaf slot value.
#[inline]
pub fn unembed(raw: u64) -> (u32, u32) {
    debug_assert!(is_embedded(raw));
    (((raw >> 24) & 0xFF) as u32, (raw & 0xFF_FFFF) as u32)
}

/// Reads the slot value stored at `buf[..5]`.
#[inline]
pub fn read_slot(buf: &[u8]) -> u64 {
    read_raw40(buf)
}

/// Writes a slot value into `buf[..5]`.
#[inline]
pub fn write_slot(buf: &mut [u8], raw: u64) {
    write_raw40(buf, raw);
}

// ---------------------------------------------------------------------
// Standard nodes
// ---------------------------------------------------------------------

/// Decoded fields of a standard node. Pointer fields hold raw slot values
/// (0 when absent).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StdNode {
    /// Delta to the parent's item id (≥ 1).
    pub ditem: u32,
    /// Partial count.
    pub pcount: u32,
    /// Left sibling-BST child slot value.
    pub left: u64,
    /// Right sibling-BST child slot value.
    pub right: u64,
    /// First-child slot value.
    pub suffix: u64,
}

impl StdNode {
    /// Encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        self.mask().node_size()
    }

    fn mask(&self) -> NodeMask {
        NodeMask {
            ditem_len: zerosup::significant_bytes_min1(self.ditem),
            pcount_len: zerosup::significant_bytes(self.pcount),
            has_left: self.left != 0,
            has_right: self.right != 0,
            has_suffix: self.suffix != 0,
        }
    }

    /// Encodes the node into `buf`, returning the byte count.
    pub fn encode(&self, buf: &mut [u8]) -> usize {
        debug_assert!(self.ditem >= 1, "Δitem must be positive");
        let mask = self.mask();
        buf[0] = mask.encode();
        let mut at = 1;
        zerosup::write_bytes(&mut buf[at..], self.ditem, mask.ditem_len);
        at += mask.ditem_len;
        zerosup::write_bytes(&mut buf[at..], self.pcount, mask.pcount_len);
        at += mask.pcount_len;
        for (present, value) in [
            (mask.has_left, self.left),
            (mask.has_right, self.right),
            (mask.has_suffix, self.suffix),
        ] {
            if present {
                write_raw40(&mut buf[at..], value);
                at += 5;
            }
        }
        debug_assert_eq!(at, mask.node_size());
        at
    }

    /// Decodes a standard node, returning it and its encoded size.
    pub fn decode(buf: &[u8]) -> (StdNode, usize) {
        let mask = NodeMask::decode(buf[0]);
        let mut at = 1;
        let ditem = zerosup::read_bytes(&buf[at..], mask.ditem_len);
        at += mask.ditem_len;
        let pcount = zerosup::read_bytes(&buf[at..], mask.pcount_len);
        at += mask.pcount_len;
        let mut node = StdNode { ditem, pcount, ..Default::default() };
        if mask.has_left {
            node.left = read_raw40(&buf[at..]);
            at += 5;
        }
        if mask.has_right {
            node.right = read_raw40(&buf[at..]);
            at += 5;
        }
        if mask.has_suffix {
            node.suffix = read_raw40(&buf[at..]);
            at += 5;
        }
        (node, at)
    }
}

/// Which pointer field of a standard node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtrField {
    /// The left sibling-BST pointer.
    Left,
    /// The right sibling-BST pointer.
    Right,
    /// The first-child pointer.
    Suffix,
}

/// Byte offset of a pointer field within an encoded standard node, or
/// `None` when the field is absent.
pub fn std_ptr_offset(buf: &[u8], field: PtrField) -> Option<usize> {
    let mask = NodeMask::decode(buf[0]);
    let (present, before) = match field {
        PtrField::Left => (mask.has_left, 0),
        PtrField::Right => (mask.has_right, mask.has_left as usize),
        PtrField::Suffix => (mask.has_suffix, mask.has_left as usize + mask.has_right as usize),
    };
    present.then(|| 1 + mask.ditem_len + mask.pcount_len + 5 * before)
}

// ---------------------------------------------------------------------
// Chain nodes
// ---------------------------------------------------------------------

/// Decoded fields of a chain node: up to 15 logical nodes in one chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainNode {
    /// The Δitem of each entry, top-most first. Only `len` are valid.
    pub ditems: [u8; MAX_CHAIN_LEN],
    /// Number of entries (2..=15).
    pub len: usize,
    /// pcount of the **last** entry (all earlier entries have pcount 0).
    pub pcount: u32,
    /// Slot value continuing below the last entry (0 when absent).
    pub suffix: u64,
}

impl Default for ChainNode {
    fn default() -> Self {
        ChainNode { ditems: [0; MAX_CHAIN_LEN], len: 0, pcount: 0, suffix: 0 }
    }
}

impl ChainNode {
    /// Builds a chain from a slice of entry deltas.
    ///
    /// # Panics
    ///
    /// Panics (debug) unless `2 <= entries.len() <= 15` and every delta
    /// fits a byte.
    pub fn from_entries(entries: &[u32], pcount: u32, suffix: u64) -> Self {
        debug_assert!((2..=MAX_CHAIN_LEN).contains(&entries.len()));
        let mut ditems = [0u8; MAX_CHAIN_LEN];
        for (d, &e) in ditems.iter_mut().zip(entries) {
            debug_assert!((1..=EMBED_MAX_DITEM).contains(&e));
            *d = e as u8;
        }
        ChainNode { ditems, len: entries.len(), pcount, suffix }
    }

    /// The valid entries.
    pub fn entries(&self) -> &[u8] {
        &self.ditems[..self.len]
    }

    /// Encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        1 + self.len
            + varint::encoded_len(self.pcount as u64)
            + if self.suffix != 0 { 5 } else { 0 }
    }

    /// Encodes the chain into `buf`, returning the byte count.
    pub fn encode(&self, buf: &mut [u8]) -> usize {
        let header = ChainHeader { len: self.len, has_suffix: self.suffix != 0 };
        buf[0] = header.encode();
        buf[1..1 + self.len].copy_from_slice(self.entries());
        let mut at = 1 + self.len;
        at += varint::write_u64_into(&mut buf[at..], self.pcount as u64);
        if self.suffix != 0 {
            write_raw40(&mut buf[at..], self.suffix);
            at += 5;
        }
        debug_assert_eq!(at, self.encoded_size());
        at
    }

    /// Decodes a chain node, returning it and its encoded size.
    pub fn decode(buf: &[u8]) -> (ChainNode, usize) {
        let header = ChainHeader::decode(buf[0]);
        let mut node = ChainNode { len: header.len, ..Default::default() };
        node.ditems[..header.len].copy_from_slice(&buf[1..1 + header.len]);
        let mut at = 1 + header.len;
        let (pc, n) = varint::read_u64_unchecked(&buf[at..]);
        node.pcount = pc as u32;
        at += n;
        if header.has_suffix {
            node.suffix = read_raw40(&buf[at..]);
            at += 5;
        }
        (node, at)
    }

    /// Byte offset of the suffix pointer within the encoded chain, or
    /// `None` when absent.
    pub fn suffix_offset(buf: &[u8]) -> Option<usize> {
        let header = ChainHeader::decode(buf[0]);
        if !header.has_suffix {
            return None;
        }
        let at = 1 + header.len;
        Some(at + varint::skip(&buf[at..]))
    }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// A decoded allocated node (standard or chain).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Node {
    /// A standard node.
    Std(StdNode),
    /// A chain node.
    Chain(ChainNode),
}

/// Decodes the node starting at `buf[0]`, returning it and its size.
pub fn decode(buf: &[u8]) -> (Node, usize) {
    if is_chain(buf[0]) {
        let (c, n) = ChainNode::decode(buf);
        (Node::Chain(c), n)
    } else {
        let (s, n) = StdNode::decode(buf);
        (Node::Std(s), n)
    }
}

/// Size in bytes of the node starting at `buf[0]` without fully decoding.
pub fn node_size(buf: &[u8]) -> usize {
    if is_chain(buf[0]) {
        let header = ChainHeader::decode(buf[0]);
        let at = 1 + header.len;
        at + varint::skip(&buf[at..]) + if header.has_suffix { 5 } else { 0 }
    } else {
        let mask = NodeMask::decode(buf[0]);
        mask.node_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_leaf_round_trip() {
        let raw = embed(7, 123_456).unwrap();
        assert!(is_embedded(raw));
        assert_eq!(unembed(raw), (7, 123_456));
        // And it survives a slot write/read.
        let mut buf = [0u8; 5];
        write_slot(&mut buf, raw);
        assert_eq!(buf[0], EMBED_MARKER);
        assert_eq!(read_slot(&buf), raw);
    }

    #[test]
    fn embed_limits() {
        assert!(embed(0, 1).is_none(), "Δitem 0 impossible");
        assert!(embed(256, 1).is_none());
        assert!(embed(255, EMBED_MAX_PCOUNT).is_some());
        assert!(embed(255, EMBED_MAX_PCOUNT + 1).is_none());
        assert!(embed(1, 0).is_some(), "pcount 0 embeds (used mid-split)");
    }

    #[test]
    fn embedded_values_never_collide_with_offsets() {
        let raw = embed(1, 0).unwrap();
        assert!(raw > cfp_encoding::ptr40::MAX_OFFSET);
    }

    #[test]
    fn figure4_node_is_seven_bytes() {
        // Figure 4: Δitem=3, pcount=0, only a suffix pointer.
        let node = StdNode { ditem: 3, pcount: 0, suffix: 0x1234, ..Default::default() };
        assert_eq!(node.encoded_size(), 7);
        let mut buf = [0u8; 24];
        let n = node.encode(&mut buf);
        assert_eq!(n, 7);
        let (back, size) = StdNode::decode(&buf);
        assert_eq!(back, node);
        assert_eq!(size, 7);
    }

    #[test]
    fn std_round_trip_extremes() {
        for node in [
            StdNode { ditem: 1, pcount: 0, ..Default::default() },
            StdNode { ditem: u32::MAX, pcount: u32::MAX, left: 1, right: 2, suffix: 3 },
            StdNode { ditem: 256, pcount: 1 << 24, left: 0, right: 0xFF_FFFF_FFFF - 1, suffix: 0 },
        ] {
            let mut buf = [0u8; 24];
            let n = node.encode(&mut buf);
            assert_eq!(n, node.encoded_size());
            assert_eq!(StdNode::decode(&buf), (node, n));
        }
    }

    #[test]
    fn std_stores_embedded_children_verbatim() {
        let child = embed(9, 42).unwrap();
        let node = StdNode { ditem: 2, pcount: 0, suffix: child, ..Default::default() };
        let mut buf = [0u8; 24];
        node.encode(&mut buf);
        let (back, _) = StdNode::decode(&buf);
        assert!(is_embedded(back.suffix));
        assert_eq!(unembed(back.suffix), (9, 42));
    }

    #[test]
    fn ptr_offsets_locate_fields() {
        let node = StdNode { ditem: 300, pcount: 7, left: 0xAA, right: 0, suffix: 0xBB };
        let mut buf = [0u8; 24];
        node.encode(&mut buf);
        let l = std_ptr_offset(&buf, PtrField::Left).unwrap();
        assert_eq!(read_raw40(&buf[l..]), 0xAA);
        assert_eq!(std_ptr_offset(&buf, PtrField::Right), None);
        let s = std_ptr_offset(&buf, PtrField::Suffix).unwrap();
        assert_eq!(read_raw40(&buf[s..]), 0xBB);
        // ditem 300 needs 2 bytes, pcount 7 needs 1: left at 1+2+1 = 4.
        assert_eq!(l, 4);
        assert_eq!(s, 9, "suffix follows left when right is absent");
    }

    #[test]
    fn chain_round_trip() {
        let chain = ChainNode::from_entries(&[1, 2, 255, 1], 70000, 0xDEAD);
        let mut buf = [0u8; 32];
        let n = chain.encode(&mut buf);
        assert_eq!(n, chain.encoded_size());
        assert_eq!(ChainNode::decode(&buf), (chain, n));
        assert_eq!(ChainNode::suffix_offset(&buf), Some(n - 5));
    }

    #[test]
    fn chain_without_suffix() {
        let chain = ChainNode::from_entries(&[5, 5], 1, 0);
        let mut buf = [0u8; 32];
        let n = chain.encode(&mut buf);
        assert_eq!(n, 1 + 2 + 1, "header + 2 entries + 1-byte pcount");
        assert_eq!(ChainNode::suffix_offset(&buf), None);
        assert_eq!(ChainNode::decode(&buf).0, chain);
    }

    #[test]
    fn chain_max_size_fits_arena_chunks() {
        let entries = [255u32; MAX_CHAIN_LEN];
        let chain = ChainNode::from_entries(&entries, u32::MAX, 0x1234);
        // header 1 + 15 entries + 5-byte varint + 5-byte suffix = 26.
        assert_eq!(chain.encoded_size(), 26);
        assert!(chain.encoded_size() <= cfp_memman::MAX_CHUNK);
    }

    #[test]
    fn dispatch_distinguishes_kinds() {
        let mut buf = [0u8; 32];
        let std = StdNode { ditem: 4, pcount: 2, ..Default::default() };
        std.encode(&mut buf);
        assert!(matches!(decode(&buf).0, Node::Std(s) if s == std));
        assert_eq!(node_size(&buf), std.encoded_size());

        let chain = ChainNode::from_entries(&[1, 1, 1], 0, 0);
        chain.encode(&mut buf);
        assert!(matches!(decode(&buf).0, Node::Chain(c) if c == chain));
        assert_eq!(node_size(&buf), chain.encoded_size());
    }

    /// Property tests require the optional `proptest` dependency,
    /// which offline builds cannot fetch. Enable with
    /// `--features proptest` after restoring the dev-dependency
    /// (see README § Offline builds).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_std_round_trip(
                ditem in 1u32..,
                pcount in any::<u32>(),
                left in prop_oneof![Just(0u64), 1u64..(1<<39)],
                right in prop_oneof![Just(0u64), 1u64..(1<<39)],
                suffix in prop_oneof![Just(0u64), 1u64..(1<<39)],
            ) {
                let node = StdNode { ditem, pcount, left, right, suffix };
                let mut buf = [0u8; 24];
                let n = node.encode(&mut buf);
                prop_assert_eq!(n, node.encoded_size());
                prop_assert_eq!(StdNode::decode(&buf), (node, n));
                prop_assert_eq!(node_size(&buf), n);
            }

            #[test]
            fn prop_chain_round_trip(
                entries in proptest::collection::vec(1u32..=255, 2..=MAX_CHAIN_LEN),
                pcount in any::<u32>(),
                suffix in prop_oneof![Just(0u64), 1u64..(1<<39)],
            ) {
                let chain = ChainNode::from_entries(&entries, pcount, suffix);
                let mut buf = [0u8; 32];
                let n = chain.encode(&mut buf);
                prop_assert_eq!(n, chain.encoded_size());
                prop_assert_eq!(ChainNode::decode(&buf), (chain, n));
                prop_assert_eq!(node_size(&buf), n);
            }

            #[test]
            fn prop_embed_round_trip(ditem in 1u32..=255, pcount in 0u32..=EMBED_MAX_PCOUNT) {
                let raw = embed(ditem, pcount).unwrap();
                prop_assert!(is_embedded(raw));
                prop_assert_eq!(unembed(raw), (ditem, pcount));
            }
        }
    }
}
