//! The CFP-tree data structure and its insertion algorithm.
//!
//! All nodes live in a [`cfp_memman::Arena`]; a node is referenced by the
//! 40-bit *slot value* stored in its parent (see [`crate::node`]). The
//! tree keeps one 5-byte root slot inside the arena, so the insertion walk
//! treats the root like any other pointer field.
//!
//! Insertion follows the transaction's strictly ascending recoded items
//! down the tree. At each step the current slot resolves to one of
//!
//! - **empty** → the remaining items become a fresh branch (embedded leaf,
//!   standard node, or chain, built bottom-up),
//! - **embedded leaf** → matched in place when possible, otherwise
//!   *unembedded* into a standard node so a sibling or child can attach,
//! - **standard node** → binary-search-tree navigation among siblings via
//!   `left`/`right`, descent via `suffix`; attaching a new pointer or
//!   growing `pcount` past a byte boundary re-encodes the node through the
//!   memory manager (grow/shrink in Appendix A),
//! - **chain node** → entries are matched one by one; any structural
//!   change inside the chain (divergence, mid-chain transaction end)
//!   splits it into prefix chain / pivot standard node / remainder chain,
//!   exactly the "chain nodes may be split" behaviour of §4.1.

use crate::node::{
    self, embed, is_embedded, unembed, ChainNode, PtrField, StdNode, EMBED_MAX_DITEM,
};
use cfp_data::{ItemRecoder, TransactionDb};
use cfp_encoding::mask::{is_chain, MAX_CHAIN_LEN};
use cfp_fault::CfpError;
use cfp_memman::{AllocError, Arena, ArenaOptions, MemoryBudget};
use cfp_metrics::HeapSize;
use cfp_trace::counters as tc;

/// Tuning knobs of the physical representation, mainly for ablation
/// studies of the paper's design choices (leading-zero suppression and
/// pointer null-suppression are inherent to the node format and cannot be
/// disabled).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CfpTreeConfig {
    /// Maximum entries per chain node; values < 2 disable chains.
    /// The paper restricts chains to 15 entries (§4.1).
    pub max_chain_len: usize,
    /// Whether small leaves are embedded into their parents' pointer
    /// fields (§3.3).
    pub embed_leaves: bool,
}

impl Default for CfpTreeConfig {
    fn default() -> Self {
        CfpTreeConfig { max_chain_len: MAX_CHAIN_LEN, embed_leaves: true }
    }
}

/// A compressed prefix tree over recoded items `0..num_items`.
#[derive(Debug)]
pub struct CfpTree {
    arena: Arena,
    root_slot: u64,
    config: CfpTreeConfig,
    num_items: u32,
    /// Logical FP-tree nodes (chain entries and embedded leaves count one
    /// each) — the denominator of the paper's bytes-per-node metric.
    num_nodes: u64,
    /// Total inserted weight (= sum of all pcounts).
    weight_total: u64,
    /// Support of each item within this tree.
    item_supports: Vec<u64>,
}

/// Outcome of one step through a chain node.
enum ChainStep {
    /// The insertion finished inside the chain.
    Done,
    /// All entries matched; continue at this slot (the chain's suffix).
    Descend(u64),
}

impl CfpTree {
    /// Creates an empty tree over `num_items` recoded items.
    pub fn new(num_items: usize) -> Self {
        Self::with_config(num_items, CfpTreeConfig::default())
    }

    /// Creates an empty tree with explicit representation knobs.
    pub fn with_config(num_items: usize, config: CfpTreeConfig) -> Self {
        Self::try_with_budget(num_items, config, None).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates an empty tree whose arena is capped at `budget` carved
    /// bytes. Once the budget is hit, [`try_insert`](Self::try_insert)
    /// reports [`CfpError::MemoryExhausted`] instead of panicking.
    pub fn try_with_budget(
        num_items: usize,
        config: CfpTreeConfig,
        budget: Option<MemoryBudget>,
    ) -> Result<Self, CfpError> {
        Self::try_with_options(num_items, config, ArenaOptions { budget, ..Default::default() })
    }

    /// Creates an empty tree whose arena is configured by `opts`: a local
    /// budget, a shared [`cfp_memman::BudgetPool`] (so several trees —
    /// e.g. per-worker conditional trees — answer to one limit), and
    /// compact-on-pressure retry. The recovery ladder threads these down
    /// from the run supervisor.
    pub fn try_with_options(
        num_items: usize,
        config: CfpTreeConfig,
        opts: ArenaOptions,
    ) -> Result<Self, CfpError> {
        assert!(
            config.max_chain_len <= MAX_CHAIN_LEN,
            "chain length {} exceeds the 4-bit header limit {MAX_CHAIN_LEN}",
            config.max_chain_len
        );
        let mut arena = Arena::with_options(opts);
        let root_slot = arena.try_alloc(5).map_err(|e| CfpError::from(e).with_phase("build"))?;
        arena.bytes_mut(root_slot, 5).fill(0);
        Ok(CfpTree {
            arena,
            root_slot,
            config,
            num_items: num_items as u32,
            num_nodes: 0,
            weight_total: 0,
            item_supports: vec![0; num_items],
        })
    }

    /// Creates an empty tree inside a recycled `arena` instead of a fresh
    /// one, keeping the arena's budget/pool wiring and — crucially — its
    /// already-reserved `Vec` capacity. This is the mine-phase recycling
    /// path: a worker builds one conditional tree, converts it, takes the
    /// arena back via [`into_arena`](Self::into_arena), resets it, and
    /// hands it here for the next conditional tree, avoiding a fresh heap
    /// allocation per first-level item.
    ///
    /// The arena must be empty (freshly created or [`cfp_memman::Arena::reset`]);
    /// stale contents would corrupt node decoding.
    pub fn try_with_arena(
        num_items: usize,
        config: CfpTreeConfig,
        mut arena: Arena,
    ) -> Result<Self, CfpError> {
        assert!(
            config.max_chain_len <= MAX_CHAIN_LEN,
            "chain length {} exceeds the 4-bit header limit {MAX_CHAIN_LEN}",
            config.max_chain_len
        );
        assert!(arena.live_allocs() == 0 && arena.footprint() == 1, "recycled arena not empty");
        let root_slot = arena.try_alloc(5).map_err(|e| CfpError::from(e).with_phase("build"))?;
        arena.bytes_mut(root_slot, 5).fill(0);
        Ok(CfpTree {
            arena,
            root_slot,
            config,
            num_items: num_items as u32,
            num_nodes: 0,
            weight_total: 0,
            item_supports: vec![0; num_items],
        })
    }

    /// Consumes the tree and returns its arena for recycling (see
    /// [`try_with_arena`](Self::try_with_arena)). The caller is expected to
    /// [`cfp_memman::Arena::reset`] it before reuse.
    pub fn into_arena(self) -> Arena {
        self.arena
    }

    /// The representation configuration of this tree.
    pub fn config(&self) -> CfpTreeConfig {
        self.config
    }

    /// Builds the initial CFP-tree from a database (second scan of
    /// CFP-growth): recodes each transaction and inserts it with weight 1.
    pub fn from_db(db: &TransactionDb, recoder: &ItemRecoder) -> Self {
        Self::try_from_db(db, recoder, None).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`from_db`](Self::from_db): the build phase respects an
    /// optional [`MemoryBudget`] and reports exhaustion as
    /// [`CfpError::MemoryExhausted`] with the phase set to `"build"`,
    /// leaving the process (though not the partial tree) fully usable.
    pub fn try_from_db(
        db: &TransactionDb,
        recoder: &ItemRecoder,
        budget: Option<MemoryBudget>,
    ) -> Result<Self, CfpError> {
        Self::try_from_db_with(db, recoder, ArenaOptions { budget, ..Default::default() })
    }

    /// [`try_from_db`](Self::try_from_db) with full [`ArenaOptions`]:
    /// shared pool and compact-on-pressure in addition to the local
    /// budget.
    pub fn try_from_db_with(
        db: &TransactionDb,
        recoder: &ItemRecoder,
        opts: ArenaOptions,
    ) -> Result<Self, CfpError> {
        let mut tree =
            CfpTree::try_with_options(recoder.num_items(), CfpTreeConfig::default(), opts)?;
        let mut buf = Vec::new();
        for t in db.iter() {
            recoder.recode_transaction(t, &mut buf);
            tree.try_insert(&buf, 1).map_err(|e| CfpError::from(e).with_phase("build"))?;
        }
        Ok(tree)
    }

    /// Number of items this tree was created for.
    pub fn num_items(&self) -> usize {
        self.num_items as usize
    }

    /// Number of logical FP-tree nodes.
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Total inserted weight (equals the sum of all pcounts).
    pub fn weight_total(&self) -> u64 {
        self.weight_total
    }

    /// Support of `item` within this tree.
    pub fn item_support(&self, item: u32) -> u64 {
        self.item_supports[item as usize]
    }

    /// Per-item supports.
    pub fn item_supports(&self) -> &[u64] {
        &self.item_supports
    }

    /// Whether no transaction has been inserted.
    pub fn is_empty(&self) -> bool {
        self.root_value() == 0
    }

    /// The slot value of the root's child structure (0 when empty).
    pub fn root_value(&self) -> u64 {
        node::read_slot(self.arena.bytes(self.root_slot, 5))
    }

    /// Read-only access to the arena (for DFS and conversion).
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    /// Live node bytes in the arena (the paper's compressed tree size).
    pub fn arena_used(&self) -> u64 {
        self.arena.used()
    }

    /// Total carved arena bytes including freed fragments.
    pub fn arena_footprint(&self) -> u64 {
        self.arena.footprint()
    }

    /// Average physical bytes per logical node.
    pub fn avg_node_bytes(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.arena_used() as f64 / self.num_nodes as f64
        }
    }

    /// Checks every structural invariant of the physical representation:
    /// Δitem positivity, chain-length bounds, embedded-leaf field ranges,
    /// reconstructed absolute items staying inside the item universe, and
    /// the logical node count matching [`num_nodes`](Self::num_nodes).
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        // (slot value, parent absolute item)
        let mut stack: Vec<(u64, i64)> = vec![(self.root_value(), -1)];
        let mut logical = 0u64;
        while let Some((raw, parent_item)) = stack.pop() {
            if raw == 0 {
                continue;
            }
            if is_embedded(raw) {
                let (d, _p) = unembed(raw);
                if !(1..=EMBED_MAX_DITEM).contains(&d) {
                    return Err(format!("embedded Δitem {d} out of range"));
                }
                let item = parent_item + d as i64;
                if item >= self.num_items as i64 {
                    return Err(format!("embedded item {item} outside universe"));
                }
                logical += 1;
                continue;
            }
            let buf = self.arena.tail(raw);
            if is_chain(buf[0]) {
                let (chain, _) = ChainNode::decode(buf);
                if !(2..=MAX_CHAIN_LEN).contains(&chain.len) {
                    return Err(format!("chain length {} out of range", chain.len));
                }
                let mut item = parent_item;
                for &e in chain.entries() {
                    if e == 0 {
                        return Err("chain entry Δitem 0".into());
                    }
                    item += e as i64;
                }
                if item >= self.num_items as i64 {
                    return Err(format!("chain tail item {item} outside universe"));
                }
                if chain.pcount == 0 && chain.suffix == 0 {
                    return Err("chain with neither pcount nor suffix".into());
                }
                logical += chain.len as u64;
                stack.push((chain.suffix, item));
            } else {
                let (std, _) = StdNode::decode(buf);
                if std.ditem == 0 {
                    return Err("standard node with Δitem 0".into());
                }
                let item = parent_item + std.ditem as i64;
                if item >= self.num_items as i64 {
                    return Err(format!("standard item {item} outside universe"));
                }
                logical += 1;
                stack.push((std.suffix, item));
                // Siblings share this node's parent.
                stack.push((std.left, parent_item));
                stack.push((std.right, parent_item));
            }
        }
        if logical != self.num_nodes {
            return Err(format!("walked {logical} logical nodes, counter says {}", self.num_nodes));
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Insertion
    // -----------------------------------------------------------------

    /// Inserts a transaction of strictly ascending recoded items with the
    /// given weight (weights > 1 arise when conditional trees are built
    /// from counted prefix paths). Panics on arena exhaustion; see
    /// [`try_insert`](Self::try_insert) for the fallible variant.
    pub fn insert(&mut self, items: &[u32], weight: u32) {
        if let Err(e) = self.try_insert(items, weight) {
            panic!("{e}");
        }
    }

    /// Fallible [`insert`](Self::insert): returns an [`AllocError`] when
    /// the arena's 40-bit address space or its [`MemoryBudget`] runs out
    /// mid-insertion.
    ///
    /// **A tree that returned `Err` is poisoned**: the interrupted
    /// insertion may have updated supports and weights without attaching
    /// the branch, so the only safe operation afterwards is dropping the
    /// tree. The arena itself stays consistent — failure never corrupts
    /// previously inserted nodes, so read-only inspection (stats,
    /// `validate` of counters aside) remains possible for diagnostics.
    pub fn try_insert(&mut self, items: &[u32], weight: u32) -> Result<(), AllocError> {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "items must ascend");
        if items.is_empty() || weight == 0 {
            return Ok(());
        }
        for &it in items {
            self.item_supports[it as usize] += weight as u64;
        }
        self.weight_total += weight as u64;

        let mut slot = self.root_slot;
        let mut prev: i64 = -1;
        let mut pos = 0usize;
        loop {
            let want = (items[pos] as i64 - prev) as u32;
            let raw = node::read_slot(self.arena.bytes(slot, 5));
            if raw == 0 {
                let value = self.make_branch(&items[pos..], prev, weight)?;
                self.set_slot(slot, value);
                return Ok(());
            }
            if is_embedded(raw) {
                let (ed, ep) = unembed(raw);
                if ed == want {
                    if pos + 1 == items.len() {
                        // The transaction ends at the embedded leaf.
                        let np = ep.checked_add(weight).expect("pcount overflow");
                        match embed(ed, np) {
                            Some(v) => self.set_slot(slot, v),
                            None => {
                                // pcount outgrew the 24-bit embed field.
                                if cfp_trace::enabled() {
                                    tc::TREE_UNEMBEDS.inc();
                                }
                                let off = self.alloc_std(StdNode {
                                    ditem: ed,
                                    pcount: np,
                                    ..Default::default()
                                })?;
                                self.set_slot(slot, off);
                            }
                        }
                        return Ok(());
                    }
                    // Descend below the leaf: unembed with the remainder
                    // attached as suffix.
                    if cfp_trace::enabled() {
                        tc::TREE_UNEMBEDS.inc();
                    }
                    let child = self.make_branch(&items[pos + 1..], items[pos] as i64, weight)?;
                    let off = self.alloc_std(StdNode {
                        ditem: ed,
                        pcount: ep,
                        suffix: child,
                        ..Default::default()
                    })?;
                    self.set_slot(slot, off);
                    return Ok(());
                }
                // Sibling needed: unembed into a standard node and retry
                // the slot, which now holds a pointer.
                if cfp_trace::enabled() {
                    tc::TREE_UNEMBEDS.inc();
                }
                let off =
                    self.alloc_std(StdNode { ditem: ed, pcount: ep, ..Default::default() })?;
                self.set_slot(slot, off);
                continue;
            }

            // `raw` is an arena offset.
            let off = raw;
            if is_chain(self.arena.byte(off)) {
                match self.step_chain(slot, off, items, &mut pos, &mut prev, weight)? {
                    ChainStep::Done => return Ok(()),
                    ChainStep::Descend(next_slot) => {
                        slot = next_slot;
                        continue;
                    }
                }
            }

            let (std, size) = StdNode::decode(self.arena.tail(off));
            match want.cmp(&std.ditem) {
                std::cmp::Ordering::Equal => {
                    prev = items[pos] as i64;
                    pos += 1;
                    if pos == items.len() {
                        self.bump_std_pcount(slot, off, std, size, weight)?;
                        return Ok(());
                    }
                    if std.suffix != 0 {
                        let field =
                            node::std_ptr_offset(self.arena.bytes(off, size), PtrField::Suffix)
                                .expect("suffix present");
                        slot = off + field as u64;
                        continue;
                    }
                    let child = self.make_branch(&items[pos..], prev, weight)?;
                    let updated = StdNode { suffix: child, ..std };
                    self.rewrite_std(slot, off, size, updated)?;
                    return Ok(());
                }
                std::cmp::Ordering::Less => {
                    if std.left != 0 {
                        let field =
                            node::std_ptr_offset(self.arena.bytes(off, size), PtrField::Left)
                                .expect("left present");
                        slot = off + field as u64;
                        continue;
                    }
                    let child = self.make_branch(&items[pos..], prev, weight)?;
                    let updated = StdNode { left: child, ..std };
                    self.rewrite_std(slot, off, size, updated)?;
                    return Ok(());
                }
                std::cmp::Ordering::Greater => {
                    if std.right != 0 {
                        let field =
                            node::std_ptr_offset(self.arena.bytes(off, size), PtrField::Right)
                                .expect("right present");
                        slot = off + field as u64;
                        continue;
                    }
                    let child = self.make_branch(&items[pos..], prev, weight)?;
                    let updated = StdNode { right: child, ..std };
                    self.rewrite_std(slot, off, size, updated)?;
                    return Ok(());
                }
            }
        }
    }

    /// Walks `items[pos..]` through the chain node at `off`. Any
    /// structural change is applied and [`ChainStep::Done`] returned;
    /// matching all entries returns the suffix slot to continue from.
    fn step_chain(
        &mut self,
        slot: u64,
        off: u64,
        items: &[u32],
        pos: &mut usize,
        prev: &mut i64,
        weight: u32,
    ) -> Result<ChainStep, AllocError> {
        let (chain, size) = ChainNode::decode(self.arena.tail(off));
        let mut j = 0usize;
        loop {
            let want = (items[*pos] as i64 - *prev) as u32;
            let dj = chain.ditems[j] as u32;
            if want != dj {
                return self
                    .split_chain_diverge(slot, off, size, &chain, j, items, *pos, *prev, weight);
            }
            *prev = items[*pos] as i64;
            *pos += 1;
            let last = j + 1 == chain.len;
            if *pos == items.len() {
                // Transaction ends at entry j.
                if last {
                    let updated = ChainNode {
                        pcount: chain.pcount.checked_add(weight).expect("pcount overflow"),
                        ..chain
                    };
                    self.rewrite_chain(slot, off, size, updated)?;
                } else {
                    // Split: entries[..=j] end the transaction; the rest
                    // keeps the old trailing pcount and suffix.
                    if cfp_trace::enabled() {
                        tc::TREE_CHAIN_SPLITS.inc();
                    }
                    let rem = self.part_value(
                        &chain.ditems[j + 1..chain.len],
                        chain.pcount,
                        chain.suffix,
                    )?;
                    let pre = self.part_value(&chain.ditems[..=j], weight, rem)?;
                    self.arena.free(off, size);
                    self.set_slot(slot, pre);
                }
                return Ok(ChainStep::Done);
            }
            if last {
                if chain.suffix != 0 {
                    let field = ChainNode::suffix_offset(self.arena.bytes(off, size))
                        .expect("suffix present");
                    return Ok(ChainStep::Descend(off + field as u64));
                }
                // Attach the remainder below the chain.
                let child = self.make_branch(&items[*pos..], *prev, weight)?;
                let updated = ChainNode { suffix: child, ..chain };
                self.rewrite_chain(slot, off, size, updated)?;
                return Ok(ChainStep::Done);
            }
            j += 1;
        }
    }

    /// Splits the chain at a diverging entry `j`: entries before `j`
    /// become a prefix part, entry `j` becomes a standard node holding
    /// both the old continuation and the new branch as BST children.
    #[allow(clippy::too_many_arguments)]
    fn split_chain_diverge(
        &mut self,
        slot: u64,
        off: u64,
        size: usize,
        chain: &ChainNode,
        j: usize,
        items: &[u32],
        pos: usize,
        prev: i64,
        weight: u32,
    ) -> Result<ChainStep, AllocError> {
        if cfp_trace::enabled() {
            tc::TREE_CHAIN_SPLITS.inc();
        }
        let dj = chain.ditems[j] as u32;
        let want = (items[pos] as i64 - prev) as u32;
        let last = j + 1 == chain.len;
        let (pivot_pcount, pivot_suffix) = if last {
            (chain.pcount, chain.suffix)
        } else {
            let rem =
                self.part_value(&chain.ditems[j + 1..chain.len], chain.pcount, chain.suffix)?;
            (0, rem)
        };
        let branch = self.make_branch(&items[pos..], prev, weight)?;
        let mut pivot =
            StdNode { ditem: dj, pcount: pivot_pcount, suffix: pivot_suffix, ..Default::default() };
        if want < dj {
            pivot.left = branch;
        } else {
            pivot.right = branch;
        }
        let pivot_off = self.alloc_std(pivot)?;
        let head =
            if j == 0 { pivot_off } else { self.part_value_ptr(&chain.ditems[..j], 0, pivot_off)? };
        self.arena.free(off, size);
        self.set_slot(slot, head);
        Ok(ChainStep::Done)
    }

    /// Builds the slot value for a run of chain entries (1..=14 of them)
    /// carrying a trailing `pcount` and `suffix`. Single entries embed
    /// when possible; longer runs become chain nodes.
    fn part_value(&mut self, entries: &[u8], pcount: u32, suffix: u64) -> Result<u64, AllocError> {
        debug_assert!(!entries.is_empty());
        if entries.len() == 1 {
            let d = entries[0] as u32;
            if suffix == 0 && self.config.embed_leaves {
                if let Some(e) = embed(d, pcount) {
                    if cfp_trace::enabled() {
                        tc::TREE_EMBEDDED_LEAVES.inc();
                    }
                    return Ok(e);
                }
            }
            return self.alloc_std(StdNode { ditem: d, pcount, suffix, ..Default::default() });
        }
        let entries_u32: Vec<u32> = entries.iter().map(|&b| b as u32).collect();
        let chain = ChainNode::from_entries(&entries_u32, pcount, suffix);
        self.alloc_chain(chain)
    }

    /// Like [`part_value`](Self::part_value) but never embeds (the part
    /// must stay addressable as a prefix wrapping a pivot pointer).
    fn part_value_ptr(
        &mut self,
        entries: &[u8],
        pcount: u32,
        suffix: u64,
    ) -> Result<u64, AllocError> {
        debug_assert!(!entries.is_empty());
        if entries.len() == 1 {
            let d = entries[0] as u32;
            return self.alloc_std(StdNode { ditem: d, pcount, suffix, ..Default::default() });
        }
        let entries_u32: Vec<u32> = entries.iter().map(|&b| b as u32).collect();
        self.alloc_chain(ChainNode::from_entries(&entries_u32, pcount, suffix))
    }

    /// Builds a fresh branch for `items` (relative to the item `prev`)
    /// ending with `pcount = weight`, and returns its slot value. Runs of
    /// small deltas become chains; a single final small node embeds.
    fn make_branch(&mut self, items: &[u32], prev: i64, weight: u32) -> Result<u64, AllocError> {
        debug_assert!(!items.is_empty());
        let d0 = (items[0] as i64 - prev) as u32;
        if items.len() == 1 {
            self.num_nodes += 1;
            if self.config.embed_leaves {
                if let Some(e) = embed(d0, weight) {
                    if cfp_trace::enabled() {
                        tc::TREE_EMBEDDED_LEAVES.inc();
                    }
                    return Ok(e);
                }
            }
            return self.alloc_std(StdNode { ditem: d0, pcount: weight, ..Default::default() });
        }
        if d0 <= EMBED_MAX_DITEM && self.config.max_chain_len >= 2 {
            // Extend the run while deltas stay single-byte.
            let mut run = 1usize;
            while run < items.len() && run < self.config.max_chain_len {
                let d = items[run] - items[run - 1];
                if d > EMBED_MAX_DITEM {
                    break;
                }
                run += 1;
            }
            if run >= 2 {
                let mut deltas = [0u32; MAX_CHAIN_LEN];
                deltas[0] = d0;
                for k in 1..run {
                    deltas[k] = items[k] - items[k - 1];
                }
                self.num_nodes += run as u64;
                if run == items.len() {
                    return self.alloc_chain(ChainNode::from_entries(&deltas[..run], weight, 0));
                }
                let child = self.make_branch(&items[run..], items[run - 1] as i64, weight)?;
                return self.alloc_chain(ChainNode::from_entries(&deltas[..run], 0, child));
            }
        }
        let child = self.make_branch(&items[1..], items[0] as i64, weight)?;
        self.num_nodes += 1;
        self.alloc_std(StdNode { ditem: d0, pcount: 0, suffix: child, ..Default::default() })
    }

    // -----------------------------------------------------------------
    // Low-level arena helpers
    // -----------------------------------------------------------------

    fn set_slot(&mut self, slot: u64, raw: u64) {
        node::write_slot(self.arena.bytes_mut(slot, 5), raw);
    }

    fn alloc_std(&mut self, std: StdNode) -> Result<u64, AllocError> {
        let size = std.encoded_size();
        let off = self.arena.try_alloc(size)?;
        std.encode(self.arena.bytes_mut(off, size));
        if cfp_trace::enabled() {
            tc::TREE_STANDARD_NODES.inc();
            // First byte of a standard node is its compression mask.
            tc::TREE_MASK_BYTES.record(self.arena.byte(off) as usize);
        }
        Ok(off)
    }

    fn alloc_chain(&mut self, chain: ChainNode) -> Result<u64, AllocError> {
        let size = chain.encoded_size();
        let off = self.arena.try_alloc(size)?;
        chain.encode(self.arena.bytes_mut(off, size));
        if cfp_trace::enabled() {
            tc::TREE_CHAIN_NODES.inc();
        }
        Ok(off)
    }

    fn rewrite_std(
        &mut self,
        slot: u64,
        off: u64,
        old_size: usize,
        updated: StdNode,
    ) -> Result<(), AllocError> {
        let new_size = updated.encoded_size();
        if new_size == old_size {
            updated.encode(self.arena.bytes_mut(off, old_size));
            return Ok(());
        }
        let new_off = self.arena.try_alloc(new_size)?;
        updated.encode(self.arena.bytes_mut(new_off, new_size));
        self.arena.free(off, old_size);
        self.set_slot(slot, new_off);
        Ok(())
    }

    fn rewrite_chain(
        &mut self,
        slot: u64,
        off: u64,
        old_size: usize,
        updated: ChainNode,
    ) -> Result<(), AllocError> {
        let new_size = updated.encoded_size();
        if new_size == old_size {
            updated.encode(self.arena.bytes_mut(off, old_size));
            return Ok(());
        }
        let new_off = self.arena.try_alloc(new_size)?;
        updated.encode(self.arena.bytes_mut(new_off, new_size));
        self.arena.free(off, old_size);
        self.set_slot(slot, new_off);
        Ok(())
    }

    fn bump_std_pcount(
        &mut self,
        slot: u64,
        off: u64,
        std: StdNode,
        size: usize,
        weight: u32,
    ) -> Result<(), AllocError> {
        let updated =
            StdNode { pcount: std.pcount.checked_add(weight).expect("pcount overflow"), ..std };
        self.rewrite_std(slot, off, size, updated)
    }
}

impl HeapSize for CfpTree {
    fn heap_bytes(&self) -> u64 {
        self.arena.footprint() + self.item_supports.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::{DfsEvent, DfsIter};
    use std::collections::BTreeMap;

    /// Reconstructs the multiset of inserted (transaction, weight) pairs
    /// from the tree: every node with pcount > 0 marks a transaction end.
    fn reconstruct(tree: &CfpTree) -> BTreeMap<Vec<u32>, u64> {
        let mut out = BTreeMap::new();
        let mut path: Vec<u32> = Vec::new();
        let mut item: i64 = -1;
        for ev in DfsIter::new(tree) {
            match ev {
                DfsEvent::Enter { ditem, pcount } => {
                    item += ditem as i64;
                    path.push(item as u32);
                    if pcount > 0 {
                        *out.entry(path.clone()).or_default() += pcount as u64;
                    }
                }
                DfsEvent::Leave => {
                    path.pop().expect("balanced events");
                    item = path.last().map_or(-1, |&v| v as i64);
                }
            }
        }
        out
    }

    fn tree_from(rows: &[&[u32]]) -> CfpTree {
        let max = rows.iter().flat_map(|r| r.iter()).max().copied().unwrap_or(0);
        let mut t = CfpTree::new(max as usize + 1);
        for r in rows {
            t.insert(r, 1);
        }
        t
    }

    #[test]
    fn empty_tree() {
        let t = CfpTree::new(4);
        assert!(t.is_empty());
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(t.weight_total(), 0);
        assert!(reconstruct(&t).is_empty());
    }

    #[test]
    fn single_transaction_embeds_or_chains() {
        let t = tree_from(&[&[0]]);
        assert_eq!(t.num_nodes(), 1);
        assert!(is_embedded(t.root_value()), "lone small leaf should embed");
        assert_eq!(reconstruct(&t), BTreeMap::from([(vec![0], 1)]));

        let t = tree_from(&[&[0, 1, 2, 3]]);
        assert_eq!(t.num_nodes(), 4);
        assert!(!is_embedded(t.root_value()));
        assert!(is_chain(t.arena().byte(t.root_value())), "run of 4 should chain");
        assert_eq!(reconstruct(&t), BTreeMap::from([(vec![0, 1, 2, 3], 1)]));
    }

    #[test]
    fn repeated_transaction_bumps_pcount_only() {
        let mut t = CfpTree::new(4);
        for _ in 0..5 {
            t.insert(&[0, 1, 2], 1);
        }
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.weight_total(), 5);
        assert_eq!(reconstruct(&t), BTreeMap::from([(vec![0, 1, 2], 5)]));
    }

    #[test]
    fn prefix_end_splits_chain() {
        let mut t = CfpTree::new(8);
        t.insert(&[0, 1, 2, 3, 4], 1);
        t.insert(&[0, 1], 1); // ends mid-chain
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(reconstruct(&t), BTreeMap::from([(vec![0, 1, 2, 3, 4], 1), (vec![0, 1], 1)]));
    }

    #[test]
    fn divergence_splits_chain_into_bst() {
        let mut t = CfpTree::new(8);
        t.insert(&[0, 1, 2], 1);
        t.insert(&[0, 5, 6], 1); // diverges at depth 1
        t.insert(&[0, 1, 7], 1); // diverges at depth 2
        assert_eq!(
            reconstruct(&t),
            BTreeMap::from([(vec![0, 1, 2], 1), (vec![0, 5, 6], 1), (vec![0, 1, 7], 1)])
        );
        assert_eq!(t.num_nodes(), 6, "nodes 0,1,2,7 plus 5,6 under shared prefix 0");
    }

    #[test]
    fn sibling_bst_orders_many_children() {
        let mut t = CfpTree::new(64);
        for item in [31u32, 5, 47, 0, 63, 22, 9, 40] {
            t.insert(&[item], 1);
        }
        let rec = reconstruct(&t);
        assert_eq!(rec.len(), 8);
        for item in [31u32, 5, 47, 0, 63, 22, 9, 40] {
            assert_eq!(rec[&vec![item]], 1);
        }
    }

    #[test]
    fn extending_a_leaf_descends() {
        let mut t = CfpTree::new(8);
        t.insert(&[0], 1);
        t.insert(&[0, 1], 1); // embedded leaf gains a child
        t.insert(&[0, 1, 2], 1);
        assert_eq!(
            reconstruct(&t),
            BTreeMap::from([(vec![0], 1), (vec![0, 1], 1), (vec![0, 1, 2], 1)])
        );
        assert_eq!(t.num_nodes(), 3);
    }

    #[test]
    fn large_deltas_force_standard_nodes() {
        // Delta 1000 exceeds the single-byte chain/embed limit.
        let mut t = CfpTree::new(3000);
        t.insert(&[100, 1100, 2100], 1);
        assert_eq!(reconstruct(&t), BTreeMap::from([(vec![100, 1100, 2100], 1)]));
        assert_eq!(t.num_nodes(), 3);
    }

    #[test]
    fn long_runs_split_across_chain_nodes() {
        let items: Vec<u32> = (0..40).collect();
        let mut t = CfpTree::new(40);
        t.insert(&items, 1);
        assert_eq!(t.num_nodes(), 40);
        assert_eq!(reconstruct(&t), BTreeMap::from([(items, 1)]));
    }

    #[test]
    fn weights_accumulate() {
        let mut t = CfpTree::new(4);
        t.insert(&[0, 2], 3);
        t.insert(&[0, 2], 4);
        t.insert(&[0], 2);
        assert_eq!(t.weight_total(), 9);
        assert_eq!(t.item_support(0), 9);
        assert_eq!(t.item_support(2), 7);
        assert_eq!(reconstruct(&t), BTreeMap::from([(vec![0, 2], 7), (vec![0], 2)]));
    }

    #[test]
    fn embedded_pcount_overflow_unembeds() {
        let mut t = CfpTree::new(2);
        t.insert(&[1], node::EMBED_MAX_PCOUNT);
        assert!(is_embedded(t.root_value()));
        t.insert(&[1], 1);
        assert!(!is_embedded(t.root_value()), "2^24 pcount must unembed");
        assert_eq!(reconstruct(&t), BTreeMap::from([(vec![1], node::EMBED_MAX_PCOUNT as u64 + 1)]));
    }

    #[test]
    fn from_db_matches_manual_inserts() {
        let db =
            TransactionDb::from_rows(&[vec![10u32, 20, 30], vec![10, 30], vec![20, 30], vec![30]]);
        let recoder = ItemRecoder::scan(&db, 2);
        let t = CfpTree::from_db(&db, &recoder);
        // item 30 (support 4) -> 0, 10 -> 1, 20 -> 2.
        assert_eq!(t.weight_total(), 4);
        assert_eq!(t.item_support(0), 4);
        let rec = reconstruct(&t);
        assert_eq!(rec[&vec![0u32, 1, 2]], 1);
        assert_eq!(rec[&vec![0u32]], 1);
    }

    #[test]
    fn stress_against_reference_multiset() {
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(4242);
        for trial in 0..50 {
            let n_items = rng.gen_range(1..40);
            let mut t = CfpTree::new(n_items);
            let mut expect: BTreeMap<Vec<u32>, u64> = BTreeMap::new();
            let mut supports = vec![0u64; n_items];
            for _ in 0..rng.gen_range(1..80) {
                let mut txn: Vec<u32> = (0..n_items as u32).filter(|_| rng.gen_bool(0.3)).collect();
                txn.sort_unstable();
                txn.dedup();
                if txn.is_empty() {
                    continue;
                }
                let w = rng.gen_range(1..4u32);
                t.insert(&txn, w);
                for &i in &txn {
                    supports[i as usize] += w as u64;
                }
                *expect.entry(txn).or_default() += w as u64;
            }
            assert_eq!(reconstruct(&t), expect, "trial {trial}");
            t.validate().unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            for (i, &s) in supports.iter().enumerate() {
                assert_eq!(t.item_support(i as u32), s, "trial {trial} item {i}");
            }
            assert!(t.arena().live_allocs() < 10_000);
        }
    }

    #[test]
    fn chain_torture() {
        // Long-run transactions with aggressive shared prefixes, forcing
        // every chain case: full traversal, mid-chain transaction ends,
        // divergence at every entry position, suffix attachment, and
        // splits of splits.
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xC4A1);
        for trial in 0..40 {
            let n_items = 60usize;
            let mut t = CfpTree::new(n_items);
            let mut expect: BTreeMap<Vec<u32>, u64> = BTreeMap::new();
            // A base long run shared by many transactions.
            let base: Vec<u32> = (0..40).collect();
            for _ in 0..rng.gen_range(2..25) {
                let txn: Vec<u32> = match rng.gen_range(0..4) {
                    // Prefix of the base run (mid-chain end).
                    0 => base[..rng.gen_range(1..=base.len())].to_vec(),
                    // Base prefix + divergent tail (mid-chain split).
                    1 => {
                        let cut = rng.gen_range(0..base.len());
                        let mut v = base[..cut].to_vec();
                        let mut next = cut as u32 + rng.gen_range(1..20);
                        while v.len() < cut + rng.gen_range(1..5) && (next as usize) < n_items {
                            v.push(next);
                            next += rng.gen_range(1..6);
                        }
                        if v.is_empty() {
                            vec![0]
                        } else {
                            v
                        }
                    }
                    // Base + extension below the chain (suffix attach).
                    2 => {
                        let mut v = base.clone();
                        let mut next = 40u32;
                        for _ in 0..rng.gen_range(1..10) {
                            if (next as usize) >= n_items {
                                break;
                            }
                            v.push(next);
                            next += rng.gen_range(1..3);
                        }
                        v
                    }
                    // Random sparse transaction.
                    _ => {
                        let mut v: Vec<u32> =
                            (0..n_items as u32).filter(|_| rng.gen_bool(0.15)).collect();
                        if v.is_empty() {
                            v.push(rng.gen_range(0..n_items as u32));
                        }
                        v
                    }
                };
                let w = rng.gen_range(1..3u32);
                t.insert(&txn, w);
                *expect.entry(txn).or_default() += w as u64;
            }
            assert_eq!(reconstruct(&t), expect, "trial {trial}");
            t.validate().unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            assert_eq!(t.weight_total(), expect.values().sum::<u64>(), "trial {trial}");
        }
    }

    #[test]
    fn ablation_configs_preserve_logical_structure() {
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(77);
        let configs = [
            CfpTreeConfig::default(),
            CfpTreeConfig { max_chain_len: 0, embed_leaves: true },
            CfpTreeConfig { max_chain_len: 15, embed_leaves: false },
            CfpTreeConfig { max_chain_len: 0, embed_leaves: false },
            CfpTreeConfig { max_chain_len: 4, embed_leaves: true },
        ];
        for trial in 0..10 {
            let n_items = rng.gen_range(2..30usize);
            let mut txns: Vec<(Vec<u32>, u32)> = Vec::new();
            for _ in 0..rng.gen_range(1..60) {
                let txn: Vec<u32> = (0..n_items as u32).filter(|_| rng.gen_bool(0.3)).collect();
                if !txn.is_empty() {
                    txns.push((txn, rng.gen_range(1..3)));
                }
            }
            let mut reference = None;
            for cfg in configs {
                let mut t = CfpTree::with_config(n_items, cfg);
                for (txn, w) in &txns {
                    t.insert(txn, *w);
                }
                let rec = reconstruct(&t);
                match &reference {
                    None => reference = Some(rec),
                    Some(r) => assert_eq!(&rec, r, "trial {trial} config {cfg:?}"),
                }
            }
        }
    }

    #[test]
    fn disabling_techniques_costs_memory() {
        let build = |cfg: CfpTreeConfig| {
            let mut t = CfpTree::with_config(40, cfg);
            let base: Vec<u32> = (0..20).collect();
            for tail in 20..40u32 {
                let mut txn = base.clone();
                txn.push(tail);
                t.insert(&txn, 1);
            }
            t.arena_used()
        };
        let full = build(CfpTreeConfig::default());
        let no_chains = build(CfpTreeConfig { max_chain_len: 0, embed_leaves: true });
        let no_embed = build(CfpTreeConfig { max_chain_len: 15, embed_leaves: false });
        assert!(no_chains > full, "chains must save memory on long runs");
        assert!(no_embed >= full, "embedding never costs memory");
    }

    #[test]
    fn budgeted_build_fails_structured_and_unbudgeted_retry_succeeds() {
        let db = TransactionDb::from_rows(&[
            vec![1u32, 2, 3, 4, 5],
            vec![1, 2, 3, 6, 7],
            vec![2, 3, 8, 9, 10],
            vec![1, 4, 6, 8, 10],
        ]);
        let recoder = ItemRecoder::scan(&db, 1);
        let err = CfpTree::try_from_db(&db, &recoder, Some(MemoryBudget::new(16)))
            .expect_err("16 bytes cannot hold this tree");
        match err {
            CfpError::MemoryExhausted { phase, limit, .. } => {
                assert_eq!(phase, "build");
                assert_eq!(limit, 16);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The failure is recoverable: a budget-free retry works.
        let t = CfpTree::try_from_db(&db, &recoder, None).expect("unbudgeted build");
        assert_eq!(t.weight_total(), 4);
        t.validate().expect("valid tree after retry");
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let db = TransactionDb::from_rows(&[vec![1u32, 2, 3], vec![1, 2], vec![3]]);
        let recoder = ItemRecoder::scan(&db, 1);
        let capped = CfpTree::try_from_db(&db, &recoder, Some(MemoryBudget::new(1 << 20)))
            .expect("1 MiB is plenty");
        let free = CfpTree::from_db(&db, &recoder);
        assert_eq!(capped.arena_used(), free.arena_used());
        assert_eq!(reconstruct(&capped), reconstruct(&free));
    }

    #[test]
    fn compression_beats_fptree_on_shared_prefixes() {
        let mut t = CfpTree::new(32);
        let base: Vec<u32> = (0..20).collect();
        for tail in 20..32u32 {
            let mut txn = base.clone();
            txn.push(tail);
            t.insert(&txn, 1);
        }
        let per_node = t.avg_node_bytes();
        assert!(per_node < 8.0, "avg node bytes {per_node} should be far below 28");
    }
}
