//! The CFP-tree: a compressed prefix tree for the build phase of
//! CFP-growth (§3.2–§3.3 of the paper).
//!
//! Structurally the CFP-tree is identical to the FP-tree; the information
//! per node differs so that every stored value is *small*:
//!
//! - `Δitem` replaces `item`: the difference to the parent's item
//!   identifier. Items are recoded in descending support order, so ids
//!   strictly increase along every path and `Δitem ≥ 1` — usually a single
//!   byte.
//! - `pcount` (*partial count*) replaces `count`: inserting a transaction
//!   increments only the **final** node of its path, and the classic count
//!   is recoverable as `pcount + Σ children counts`. Most nodes never end
//!   a transaction, so `pcount` is usually 0 and vanishes entirely under
//!   leading-zero suppression. The sum of all pcounts equals the number of
//!   inserted transactions.
//!
//! The *ternary CFP-tree* is the physical representation: each node packs
//! a compression-mask byte, the zero-suppressed `Δitem` and `pcount`, and
//! only its non-null `left`/`right`/`suffix` pointers as 40-bit offsets
//! into the [`cfp_memman::Arena`]. Two further layouts eliminate whole
//! pointers:
//!
//! - **Embedded leaves**: a leaf with `Δitem < 256` and `pcount < 2^24` is
//!   stored *inside* the 5-byte pointer field of its parent, behind a
//!   `0xFF` marker byte the arena never produces as an address byte.
//! - **Chain nodes**: runs of single-child nodes ("chains") collapse into
//!   one node holding up to 15 single-byte `Δitem` entries, the trailing
//!   node's pcount, and at most one suffix pointer. Chains are created
//!   only when a new leaf is inserted and are split when later insertions
//!   diverge inside them (§4.1).
//!
//! Parent pointers and nodelinks — used only by the mine phase — are not
//! stored at all; the mine phase runs on the CFP-array instead.
//!
//! ```
//! use cfp_tree::CfpTree;
//!
//! // Items must be recoded: dense ids, ascending within a transaction.
//! let mut tree = CfpTree::new(4);
//! tree.insert(&[0, 1, 2], 1);
//! tree.insert(&[0, 1, 2], 1);
//! tree.insert(&[0, 3], 1);
//!
//! assert_eq!(tree.num_nodes(), 4);          // 0,1,2 shared + 3
//! assert_eq!(tree.weight_total(), 3);       // Σ pcount = transactions
//! assert_eq!(tree.item_support(0), 3);
//! assert!(tree.avg_node_bytes() < 8.0);     // far below 28–40 B/node
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod dfs;
pub mod node;
pub mod tree;

pub use dfs::{DfsEvent, DfsIter};
pub use tree::{CfpTree, CfpTreeConfig};
