//! Laptop-scale dataset profiles mimicking the paper's workloads.
//!
//! The paper evaluates on the FIMI repository's real-world datasets
//! (retail, connect, kosarak, accidents, webdocs) and on two IBM Quest
//! datasets (Quest1, Quest2; Table 3). The real datasets are not
//! redistributable with this repository and the Quest datasets are 13/26 GB,
//! so each profile here is a *generator configuration* that reproduces the
//! published shape of the corresponding dataset — distinct-item count,
//! average transaction cardinality, density, and popularity skew — at a
//! size that builds and mines in seconds. All generators are seeded, so
//! every experiment is reproducible bit for bit.
//!
//! | profile        | models    | shape                                        |
//! |----------------|-----------|----------------------------------------------|
//! | `retail-like`  | retail    | sparse, many items, Zipf popularity          |
//! | `connect-like` | connect   | dense, 129 items, fixed length 43            |
//! | `kosarak-like` | kosarak   | clickstream, heavy-tail Zipf, short rows     |
//! | `accidents-like`| accidents| dense attribute groups, avg length ≈ 34      |
//! | `webdocs-like` | webdocs   | long rows, large skewed vocabulary           |
//! | `quest1`       | Quest1    | IBM Quest generator, scaled down ~250×       |
//! | `quest2`       | Quest2    | same, twice the transactions (as the paper)  |

use crate::quest::{generate as quest_generate, QuestConfig};
use crate::rng::{Rng, StdRng};
use crate::types::{Item, TransactionDb};
use crate::zipf::Zipf;

/// How a profile generates its transactions.
#[derive(Clone, Debug)]
enum ProfileKind {
    /// The IBM Quest generator.
    Quest(QuestConfig),
    /// Independent Zipf draws per transaction.
    ZipfRows { num_transactions: usize, num_items: usize, exponent: f64, avg_len: f64, seed: u64 },
    /// One value per attribute group (dense, connect/accidents-shaped).
    DenseAttributes {
        num_transactions: usize,
        groups: usize,
        values_per_group: usize,
        /// Probability that a group appears in a transaction.
        group_presence: f64,
        /// Within-group skew: value v has probability ∝ skew^v.
        value_skew: f64,
        seed: u64,
    },
}

/// A named reproducible workload.
#[derive(Clone, Debug)]
pub struct DatasetProfile {
    /// Identifier used on the command line and in benchmark tables.
    pub name: &'static str,
    /// What the profile models.
    pub description: &'static str,
    /// Relative minimum supports (high, medium, low) used by the node-size
    /// experiments (Figure 6). Chosen per profile so that `low` still
    /// builds a tree in seconds.
    pub supports: [f64; 3],
    kind: ProfileKind,
}

impl DatasetProfile {
    /// Generates the dataset (deterministic per profile).
    pub fn generate(&self) -> TransactionDb {
        match &self.kind {
            ProfileKind::Quest(cfg) => quest_generate(cfg),
            ProfileKind::ZipfRows { num_transactions, num_items, exponent, avg_len, seed } => {
                zipf_rows(*num_transactions, *num_items, *exponent, *avg_len, *seed)
            }
            ProfileKind::DenseAttributes {
                num_transactions,
                groups,
                values_per_group,
                group_presence,
                value_skew,
                seed,
            } => dense_attributes(
                *num_transactions,
                *groups,
                *values_per_group,
                *group_presence,
                *value_skew,
                *seed,
            ),
        }
    }

    /// Absolute minimum support for one of the three levels (0 = high).
    pub fn absolute_support(&self, db: &TransactionDb, level: usize) -> u64 {
        ((db.len() as f64 * self.supports[level]).ceil() as u64).max(1)
    }
}

fn zipf_rows(
    num_transactions: usize,
    num_items: usize,
    exponent: f64,
    avg_len: f64,
    seed: u64,
) -> TransactionDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(num_items, exponent);
    let mut db = TransactionDb::with_capacity(
        num_transactions,
        (num_transactions as f64 * avg_len) as usize,
    );
    let mut txn: Vec<Item> = Vec::new();
    for _ in 0..num_transactions {
        let len = sample_len(&mut rng, avg_len);
        txn.clear();
        let mut attempts = 0;
        while txn.len() < len && attempts < 4 * len {
            attempts += 1;
            let item = zipf.sample(&mut rng) as Item;
            if !txn.contains(&item) {
                txn.push(item);
            }
        }
        txn.sort_unstable();
        db.push(&txn);
    }
    db
}

fn dense_attributes(
    num_transactions: usize,
    groups: usize,
    values_per_group: usize,
    group_presence: f64,
    value_skew: f64,
    seed: u64,
) -> TransactionDb {
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-group cumulative value distribution: P(v) ∝ value_skew^v.
    let mut cdf = Vec::with_capacity(values_per_group);
    let mut acc = 0.0;
    for v in 0..values_per_group {
        acc += value_skew.powi(v as i32);
        cdf.push(acc);
    }
    let total = acc;
    let mut db = TransactionDb::with_capacity(
        num_transactions,
        (num_transactions as f64 * groups as f64 * group_presence) as usize,
    );
    let mut txn: Vec<Item> = Vec::new();
    for _ in 0..num_transactions {
        txn.clear();
        for g in 0..groups {
            if group_presence < 1.0 && rng.gen::<f64>() >= group_presence {
                continue;
            }
            let u: f64 = rng.gen::<f64>() * total;
            let v = cdf.partition_point(|&c| c < u).min(values_per_group - 1);
            txn.push((g * values_per_group + v) as Item);
        }
        db.push(&txn);
    }
    db
}

/// Poisson-ish transaction length with a minimum of 1.
fn sample_len(rng: &mut impl Rng, mean: f64) -> usize {
    // Same Knuth sampler as the Quest generator, kept private there; a
    // geometric mixture is close enough for lengths and cheaper for large
    // means, but our means are small, so Poisson it is.
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen();
    let mut n = 0usize;
    while product > limit {
        product *= rng.gen::<f64>();
        n += 1;
    }
    n.max(1)
}

/// Quest1 at laptop scale: the paper's 25M × ~100-item dataset scaled down
/// to 100k × ~14 items (relative claims are scale-free; see DESIGN.md).
pub fn quest1_config() -> QuestConfig {
    QuestConfig {
        num_transactions: 100_000,
        avg_transaction_len: 14.0,
        avg_pattern_len: 5.0,
        num_patterns: 3_000,
        num_items: 2_000,
        correlation: 0.25,
        seed: 0x9E3779B9,
    }
}

/// Quest2: identical to Quest1 but twice the transactions, exactly as in
/// the paper ("the larger Quest2 dataset, which has twice as many
/// transactions").
pub fn quest2_config() -> QuestConfig {
    QuestConfig { num_transactions: 200_000, ..quest1_config() }
}

/// All built-in profiles.
pub fn all() -> Vec<DatasetProfile> {
    vec![
        DatasetProfile {
            name: "retail-like",
            description: "sparse market-basket data with Zipf item popularity (models FIMI retail)",
            supports: [0.02, 0.008, 0.003],
            kind: ProfileKind::ZipfRows {
                num_transactions: 30_000,
                num_items: 4_000,
                exponent: 1.05,
                avg_len: 10.3,
                seed: 101,
            },
        },
        DatasetProfile {
            name: "connect-like",
            description:
                "dense game-state data: 43 attributes over 129 items (models FIMI connect)",
            supports: [0.9, 0.5, 0.06],
            kind: ProfileKind::DenseAttributes {
                num_transactions: 20_000,
                groups: 43,
                values_per_group: 3,
                group_presence: 1.0,
                value_skew: 0.08,
                seed: 102,
            },
        },
        DatasetProfile {
            name: "kosarak-like",
            description: "clickstream with heavy-tailed popularity (models FIMI kosarak)",
            supports: [0.02, 0.008, 0.003],
            kind: ProfileKind::ZipfRows {
                num_transactions: 60_000,
                num_items: 8_000,
                exponent: 1.4,
                avg_len: 8.1,
                seed: 103,
            },
        },
        DatasetProfile {
            name: "accidents-like",
            description: "dense attribute data, avg cardinality ~34 (models FIMI accidents)",
            supports: [0.35, 0.25, 0.15],
            kind: ProfileKind::DenseAttributes {
                num_transactions: 30_000,
                groups: 45,
                values_per_group: 10,
                group_presence: 0.75,
                value_skew: 0.45,
                seed: 104,
            },
        },
        DatasetProfile {
            name: "webdocs-like",
            description: "long documents over a large skewed vocabulary (models FIMI webdocs)",
            supports: [0.2, 0.1, 0.05],
            kind: ProfileKind::ZipfRows {
                num_transactions: 30_000,
                num_items: 10_000,
                exponent: 1.1,
                avg_len: 47.0,
                seed: 105,
            },
        },
        DatasetProfile {
            name: "quest1",
            description: "IBM Quest synthetic dataset (paper's Quest1, scaled ~250x)",
            supports: [0.01, 0.005, 0.002],
            kind: ProfileKind::Quest(quest1_config()),
        },
        DatasetProfile {
            name: "quest2",
            description: "IBM Quest synthetic dataset with 2x transactions (paper's Quest2)",
            supports: [0.01, 0.005, 0.002],
            kind: ProfileKind::Quest(quest2_config()),
        },
    ]
}

/// Looks a profile up by name.
pub fn by_name(name: &str) -> Option<DatasetProfile> {
    all().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_have_unique_names() {
        let profiles = all();
        let mut names: Vec<_> = profiles.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), profiles.len());
    }

    #[test]
    fn by_name_finds_each_profile() {
        for p in all() {
            assert!(by_name(p.name).is_some());
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn profiles_are_deterministic() {
        let p = by_name("retail-like").unwrap();
        assert_eq!(p.generate(), p.generate());
    }

    #[test]
    fn connect_like_is_dense_and_fixed_length() {
        let db = by_name("connect-like").unwrap().generate();
        assert_eq!(db.len(), 20_000);
        for t in db.iter().take(100) {
            assert_eq!(t.len(), 43);
        }
        assert!(db.max_item().unwrap() < 43 * 3);
    }

    #[test]
    fn accidents_like_has_long_rows() {
        let db = by_name("accidents-like").unwrap().generate();
        let avg = db.avg_transaction_len();
        assert!((28.0..40.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn webdocs_like_is_long_and_skewed() {
        let db = by_name("webdocs-like").unwrap().generate();
        let avg = db.avg_transaction_len();
        assert!((35.0..50.0).contains(&avg), "avg {avg}");
        let counts = crate::count::count_supports(&db);
        let max = counts.iter().copied().max().unwrap();
        assert!(max as f64 > db.len() as f64 * 0.5, "top item should be near-universal");
    }

    #[test]
    fn quest2_doubles_quest1_transactions() {
        assert_eq!(quest2_config().num_transactions, 2 * quest1_config().num_transactions);
    }

    #[test]
    fn absolute_support_rounds_up_and_is_positive() {
        let p = by_name("retail-like").unwrap();
        let db = TransactionDb::from_rows(&vec![vec![1u32]; 1000]);
        assert_eq!(p.absolute_support(&db, 0), 20);
        let tiny = TransactionDb::from_rows(&[vec![1u32]]);
        assert_eq!(p.absolute_support(&tiny, 2), 1);
    }
}
