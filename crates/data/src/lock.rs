//! Single-owner locking for shared state directories.
//!
//! The spill rung and the checkpoint layer both persist files under a
//! user-supplied directory (`--spill-dir`, `--checkpoint-dir`). Two
//! concurrent runs pointed at the same directory would clobber each
//! other's partitions and manifests, so the CLI takes a [`DirLock`] on
//! every such directory before mining and fails fast with
//! [`CfpError::Locked`] (exit code 10) when another *live* process
//! already holds it.
//!
//! The lock is a `cfp.lock` file created with `O_CREAT|O_EXCL` and
//! containing the owner's PID. Crashes (SIGKILL, power loss) leave the
//! file behind, so acquisition performs **stale-lock detection**: if the
//! recorded PID is no longer alive (no `/proc/<pid>` on Linux), the
//! stale file is removed and acquisition retried once. An unreadable or
//! unparsable lock file is treated as stale — it cannot name a live
//! owner, and leaving it would wedge the directory forever.

use cfp_fault::CfpError;
use std::fs::{self, OpenOptions};
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};

/// Name of the lock file inside a guarded directory.
pub const LOCK_FILE: &str = "cfp.lock";

/// An exclusive claim on a state directory, released on drop.
///
/// Dropping removes the lock file; a process killed before the drop
/// leaves a stale file that the next acquirer detects and reclaims.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
}

impl DirLock {
    /// Claims `dir` for this process, creating the directory if needed.
    ///
    /// Fails with [`CfpError::Locked`] when another live process holds
    /// the lock; stale locks (dead or unparsable owner) are reclaimed
    /// transparently.
    pub fn acquire(dir: &Path) -> Result<DirLock, CfpError> {
        fs::create_dir_all(dir)?;
        let path = dir.join(LOCK_FILE);
        // Two attempts: create, or (after removing a stale file) create
        // again. A second EEXIST means we raced a live acquirer — treat
        // it as locked rather than spinning.
        for attempt in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    // Best-effort: a lock file without a readable PID is
                    // simply treated as stale by the next acquirer.
                    let _ = writeln!(f, "{}", std::process::id());
                    let _ = f.sync_all();
                    return Ok(DirLock { path });
                }
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    let owner =
                        fs::read_to_string(&path).ok().and_then(|s| s.trim().parse::<u32>().ok());
                    match owner {
                        Some(pid) if pid != std::process::id() && pid_alive(pid) => {
                            return Err(CfpError::Locked { path: path.display().to_string(), pid });
                        }
                        // Dead owner, our own stale PID, or garbage
                        // content: reclaim.
                        _ => {
                            if attempt == 1 {
                                return Err(CfpError::Locked {
                                    path: path.display().to_string(),
                                    pid: owner.unwrap_or(0),
                                });
                            }
                            match fs::remove_file(&path) {
                                Ok(()) => {}
                                // Lost a reclaim race; loop and retry.
                                Err(e) if e.kind() == ErrorKind::NotFound => {}
                                Err(e) => return Err(CfpError::Io(e)),
                            }
                        }
                    }
                }
                Err(e) => return Err(CfpError::Io(e)),
            }
        }
        unreachable!("both acquisition attempts returned");
    }

    /// The lock file path (diagnostics and tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Whether `pid` names a live process.
fn pid_alive(pid: u32) -> bool {
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        // Without /proc we cannot probe liveness cheaply; err on the
        // side of respecting the lock.
        let _ = pid;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cfp-lock-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn acquire_creates_and_drop_releases() {
        let dir = tmp_dir("basic");
        let lock = DirLock::acquire(&dir).unwrap();
        assert!(lock.path().exists());
        let lock_path = lock.path().to_path_buf();
        drop(lock);
        assert!(!lock_path.exists(), "drop removes the lock file");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_acquire_by_live_owner_fails_structured() {
        let dir = tmp_dir("live");
        fs::create_dir_all(&dir).unwrap();
        // Simulate another live process: PID 1 (init) always exists.
        fs::write(dir.join(LOCK_FILE), "1\n").unwrap();
        match DirLock::acquire(&dir) {
            Err(CfpError::Locked { pid, path }) => {
                assert_eq!(pid, 1);
                assert!(path.ends_with(LOCK_FILE), "{path}");
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn stale_lock_is_reclaimed() {
        let dir = tmp_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        // A PID from the far end of the default pid space; if it is
        // somehow alive on the test machine, acquisition correctly
        // reports Locked and this test would flag it.
        fs::write(dir.join(LOCK_FILE), "3999999\n").unwrap();
        let lock = DirLock::acquire(&dir).expect("stale lock must be reclaimed");
        drop(lock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_lock_content_is_stale() {
        let dir = tmp_dir("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(LOCK_FILE), "not-a-pid\n").unwrap();
        let lock = DirLock::acquire(&dir).expect("unparsable lock must be reclaimed");
        drop(lock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn own_stale_pid_is_reclaimed() {
        let dir = tmp_dir("own");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(LOCK_FILE), format!("{}\n", std::process::id())).unwrap();
        let lock = DirLock::acquire(&dir)
            .expect("a lock naming our own pid is from a previous life of this pid");
        drop(lock);
        fs::remove_dir_all(&dir).unwrap();
    }
}
