//! Item-range partitioning of a transaction database for fallback
//! mining under a memory budget.
//!
//! When the monolithic CFP-tree does not fit, Grahne & Zhu's partitioning
//! scheme (PAPERS.md, "Mining Frequent Itemsets from Secondary Memory")
//! still yields *exact* results: split the frequent items — in the global
//! support-descending recode order — into `k` disjoint ranges
//! `[lo, hi)`, and for each range build the projection
//!
//! > `DB_j = { t ∩ items(0..hi) : t ∈ DB, t contains an item in [lo, hi) }`
//!
//! Mining `DB_j` in full and keeping only itemsets whose *maximum*
//! global-recoded item falls in `[lo, hi)` gives every such itemset its
//! exact global support: a transaction contains the itemset iff it
//! contains the itemset's maximum item (which is in the range, so the
//! transaction is in `DB_j`) and all its other items (all recoded below
//! `hi`, so the projection kept them). Each itemset has exactly one
//! maximum item and therefore belongs to exactly one range — the union
//! over ranges is the exact global result, merged by concatenation.
//!
//! Ranges are balanced by *support mass* rather than item count: an
//! item's support bounds the number of tree nodes it can contribute, so
//! equal-mass ranges give roughly equal projection footprints.

use crate::count::ItemRecoder;
use crate::types::{Item, TransactionDb};

/// Splits the recoded item domain `[0, num_items)` into `k` contiguous
/// ranges `(lo, hi)` of roughly equal support mass.
///
/// `k` is clamped to `[1, num_items]`; the returned ranges are disjoint,
/// non-empty, and cover the whole domain in order. Returns an empty
/// vector when the recoder holds no frequent items.
pub fn ranges_by_mass(recoder: &ItemRecoder, k: usize) -> Vec<(u32, u32)> {
    let n = recoder.num_items();
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    let total: u64 = recoder.supports().iter().sum();
    let mut ranges = Vec::with_capacity(k);
    let mut cum = 0u64;
    let mut lo = 0usize;
    for j in 0..k {
        // Leave at least one item for each of the remaining ranges.
        let max_hi = n - (k - 1 - j);
        let goal = (j as u64 + 1) * total / k as u64;
        cum += recoder.support(lo as u32);
        let mut hi = lo + 1;
        while hi < max_hi && cum < goal {
            cum += recoder.support(hi as u32);
            hi += 1;
        }
        if j == k - 1 {
            hi = n;
        }
        ranges.push((lo as u32, hi as u32));
        lo = hi;
    }
    ranges
}

/// Builds the projection `DB_j` of `db` for the recoded item range
/// `[lo, hi)` under `recoder`'s global order.
///
/// A transaction enters the projection iff it contains a frequent item
/// whose recoded id is in `[lo, hi)`; of its items, those recoded below
/// `hi` are kept (mapped back to *original* ids, so the projection is a
/// self-contained database any miner can run on). Infrequent items are
/// dropped — they cannot appear in any frequent itemset, and any item of
/// a globally frequent itemset is also frequent within the projection
/// (its projected support is at least the itemset's global support).
pub fn project(db: &TransactionDb, recoder: &ItemRecoder, lo: u32, hi: u32) -> TransactionDb {
    let mut out = TransactionDb::new();
    let mut recoded: Vec<u32> = Vec::new();
    let mut items: Vec<Item> = Vec::new();
    for t in db.iter() {
        recoded.clear();
        recoder.recode_transaction(t, &mut recoded);
        if !recoded.iter().any(|&i| lo <= i && i < hi) {
            continue;
        }
        items.clear();
        items.extend(recoded.iter().filter(|&&i| i < hi).map(|&i| recoder.original(i)));
        items.sort_unstable();
        out.push(&items);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The textbook dataset used across the workspace (items 1..=5).
    fn textbook() -> TransactionDb {
        TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ])
    }

    #[test]
    fn ranges_cover_the_domain_disjointly() {
        let db = textbook();
        let recoder = ItemRecoder::scan(&db, 2);
        let n = recoder.num_items() as u32;
        for k in 1..=n as usize + 3 {
            let ranges = ranges_by_mass(&recoder, k);
            assert_eq!(ranges.len(), k.min(n as usize), "k={k}");
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must tile the domain");
                assert!(w[0].0 < w[0].1, "ranges must be non-empty");
            }
        }
    }

    #[test]
    fn ranges_balance_support_mass() {
        // Heavily skewed supports: one dominant item, many light ones.
        let mut rows = Vec::new();
        for i in 0..40u32 {
            rows.push(vec![0, 100 + i]); // item 0 in every transaction
            rows.push(vec![100 + i]);
        }
        let db = TransactionDb::from_rows(&rows);
        let recoder = ItemRecoder::scan(&db, 2);
        let ranges = ranges_by_mass(&recoder, 2);
        assert_eq!(ranges.len(), 2);
        // Ranges are balanced by mass, not item count: the first range
        // (led by the dominant item) must hold far fewer items than the
        // second, and the two masses must come out nearly equal.
        let mass = |(lo, hi): (u32, u32)| -> u64 { (lo..hi).map(|i| recoder.support(i)).sum() };
        let (m0, m1) = (mass(ranges[0]), mass(ranges[1]));
        assert!(ranges[0].1 - ranges[0].0 < ranges[1].1 - ranges[1].0, "{ranges:?}");
        let max_support = recoder.support(0);
        assert!(m0.abs_diff(m1) <= max_support, "masses {m0} vs {m1} out of balance");
    }

    #[test]
    fn empty_recoder_yields_no_ranges() {
        let db = TransactionDb::from_rows(&[vec![1], vec![2]]);
        let recoder = ItemRecoder::scan(&db, 5); // nothing frequent
        assert!(ranges_by_mass(&recoder, 4).is_empty());
    }

    #[test]
    fn projection_keeps_context_below_hi_and_filters_rows() {
        let db = textbook();
        let recoder = ItemRecoder::scan(&db, 2);
        let n = recoder.num_items() as u32;
        // The last range: rows must contain one of its items; all
        // frequent items are kept as context (hi == n).
        let lo = n - 1;
        let proj = project(&db, &recoder, lo, n);
        let rare_original = recoder.original(n - 1);
        for t in proj.iter() {
            assert!(t.contains(&rare_original), "{t:?} lacks the range item");
        }
        // Every projected transaction is a subset of some original one.
        assert!(proj.len() <= db.len());

        // The first range keeps only items recoded below its hi.
        let (lo0, hi0) = (0u32, 1u32);
        let proj0 = project(&db, &recoder, lo0, hi0);
        let top_original = recoder.original(0);
        for t in proj0.iter() {
            assert_eq!(t, &[top_original], "only the top item fits below hi=1");
        }
        // The top item is in 7 of the 9 textbook transactions (item 2
        // or item 1, both support 7 — whichever recodes first).
        assert_eq!(proj0.len(), 7);
    }

    #[test]
    fn projections_drop_infrequent_items() {
        let db = TransactionDb::from_rows(&[vec![1, 2, 99], vec![1, 2], vec![1, 2]]);
        let recoder = ItemRecoder::scan(&db, 2);
        let n = recoder.num_items() as u32;
        let proj = project(&db, &recoder, 0, n);
        for t in proj.iter() {
            assert!(!t.contains(&99), "infrequent item must not survive projection");
        }
        assert_eq!(proj.len(), 3);
    }
}
