//! Zipf-distributed sampling over a finite item universe.
//!
//! The real-world FIMI datasets (retail, kosarak, webdocs) have heavily
//! skewed item popularity; we model that with a Zipf distribution whose
//! cumulative table is precomputed once, so each sample is one uniform
//! draw plus a binary search.

use crate::rng::Rng;

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty universe");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point: the last entry must be exactly 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the universe is empty (never true; `new` rejects n = 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..len()`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn skew_favors_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[60]);
        // Rank 0 should hold a large share under s = 1.2.
        assert!(counts[0] as f64 / 20_000.0 > 0.1);
    }

    #[test]
    fn zero_exponent_is_uniformish() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "empty universe")]
    fn empty_universe_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
