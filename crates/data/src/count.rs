//! The first database scan: support counting and support-ordered recoding.
//!
//! FP-growth's first pass counts the support of every item; only frequent
//! items are retained, and the items of each transaction are then sorted in
//! descending order of support (§2.1). This module implements that pass and
//! the *recoding* used throughout the workspace: frequent items receive
//! dense new identifiers `0..n` assigned in descending support order (ties
//! broken by original id, so recoding is deterministic). Recoded ids have
//! two properties the compressed structures rely on:
//!
//! - sorting a transaction by descending support = sorting recoded ids
//!   ascending, and
//! - ids strictly increase along every root-to-leaf tree path, so the
//!   `Δitem` delta to the parent is always ≥ 1.

use crate::types::{Item, TransactionDb};
use cfp_metrics::HeapSize;

/// Adds one transaction to a growable support-count table (streaming
/// version of [`count_supports`]; duplicates within the transaction count
/// once).
pub fn count_transaction(transaction: &[Item], counts: &mut Vec<u64>) {
    for (i, &item) in transaction.iter().enumerate() {
        if transaction[..i].contains(&item) {
            continue;
        }
        if counts.len() <= item as usize {
            counts.resize(item as usize + 1, 0);
        }
        counts[item as usize] += 1;
    }
}

/// Counts the support of every item in `db`.
///
/// Returns a vector indexed by item id (length `max_item + 1`).
pub fn count_supports(db: &TransactionDb) -> Vec<u64> {
    let mut counts = vec![0u64; db.max_item().map_or(0, |m| m as usize + 1)];
    for t in db.iter() {
        // A FIMI transaction may repeat an item; support counts presence,
        // not multiplicity. Detect duplicates only when they occur.
        for (i, &item) in t.iter().enumerate() {
            if t[..i].contains(&item) {
                continue;
            }
            counts[item as usize] += 1;
        }
    }
    counts
}

/// Maps frequent items to dense ids in descending support order.
#[derive(Clone, Debug)]
pub struct ItemRecoder {
    /// `old -> new + 1`; 0 means infrequent (filtered out).
    old_to_new: Vec<u32>,
    /// `new -> old`.
    new_to_old: Vec<Item>,
    /// Support per *new* id (non-increasing).
    supports: Vec<u64>,
    min_support: u64,
}

impl ItemRecoder {
    /// Builds a recoder from per-item supports and a minimum support.
    pub fn from_supports(supports_by_item: &[u64], min_support: u64) -> Self {
        let mut frequent: Vec<Item> = (0..supports_by_item.len() as u32)
            .filter(|&i| supports_by_item[i as usize] >= min_support)
            .collect();
        // Descending support, ascending original id for determinism.
        frequent.sort_by(|&a, &b| {
            supports_by_item[b as usize].cmp(&supports_by_item[a as usize]).then(a.cmp(&b))
        });
        let mut old_to_new = vec![0u32; supports_by_item.len()];
        let mut supports = Vec::with_capacity(frequent.len());
        for (new, &old) in frequent.iter().enumerate() {
            old_to_new[old as usize] = new as u32 + 1;
            supports.push(supports_by_item[old as usize]);
        }
        ItemRecoder { old_to_new, new_to_old: frequent, supports, min_support }
    }

    /// Runs the first scan over `db` and builds the recoder.
    pub fn scan(db: &TransactionDb, min_support: u64) -> Self {
        Self::from_supports(&count_supports(db), min_support)
    }

    /// Number of frequent items.
    pub fn num_items(&self) -> usize {
        self.new_to_old.len()
    }

    /// The minimum support this recoder was built with.
    pub fn min_support(&self) -> u64 {
        self.min_support
    }

    /// New id of `old`, or `None` if the item is infrequent.
    #[inline]
    pub fn recode(&self, old: Item) -> Option<u32> {
        match self.old_to_new.get(old as usize) {
            Some(&v) if v != 0 => Some(v - 1),
            _ => None,
        }
    }

    /// Original id of a recoded item.
    #[inline]
    pub fn original(&self, new: u32) -> Item {
        self.new_to_old[new as usize]
    }

    /// Support of a recoded item.
    #[inline]
    pub fn support(&self, new: u32) -> u64 {
        self.supports[new as usize]
    }

    /// Supports indexed by new id (non-increasing).
    pub fn supports(&self) -> &[u64] {
        &self.supports
    }

    /// Recodes a transaction into `out`: infrequent items dropped,
    /// duplicates removed, result sorted ascending (= descending support).
    pub fn recode_transaction(&self, transaction: &[Item], out: &mut Vec<u32>) {
        out.clear();
        for &item in transaction {
            if let Some(new) = self.recode(item) {
                out.push(new);
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

impl HeapSize for ItemRecoder {
    fn heap_bytes(&self) -> u64 {
        self.old_to_new.heap_bytes() + self.new_to_old.heap_bytes() + self.supports.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> TransactionDb {
        // supports: 1 -> 3, 2 -> 2, 3 -> 4, 5 -> 1
        TransactionDb::from_rows(&[vec![1, 2, 3], vec![1, 3], vec![2, 3, 5], vec![3, 1]])
    }

    #[test]
    fn count_supports_ignores_duplicates_within_a_transaction() {
        let db = TransactionDb::from_rows(&[vec![4, 4, 4], vec![4]]);
        let counts = count_supports(&db);
        assert_eq!(counts[4], 2);
    }

    #[test]
    fn recoder_orders_by_descending_support() {
        let r = ItemRecoder::scan(&sample_db(), 2);
        // item 3 (support 4) -> 0, item 1 (support 3) -> 1, item 2 -> 2
        assert_eq!(r.num_items(), 3);
        assert_eq!(r.recode(3), Some(0));
        assert_eq!(r.recode(1), Some(1));
        assert_eq!(r.recode(2), Some(2));
        assert_eq!(r.recode(5), None, "support 1 < minsup 2");
        assert_eq!(r.original(0), 3);
        assert_eq!(r.support(0), 4);
        assert_eq!(r.supports(), &[4, 3, 2]);
    }

    #[test]
    fn ties_break_by_original_id() {
        let db = TransactionDb::from_rows(&[vec![9, 4], vec![4, 9]]);
        let r = ItemRecoder::scan(&db, 1);
        assert_eq!(r.recode(4), Some(0));
        assert_eq!(r.recode(9), Some(1));
    }

    #[test]
    fn recode_transaction_filters_sorts_dedups() {
        let r = ItemRecoder::scan(&sample_db(), 2);
        let mut out = Vec::new();
        r.recode_transaction(&[5, 2, 3, 2, 1], &mut out);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn recode_out_of_range_items_is_none() {
        let r = ItemRecoder::scan(&sample_db(), 2);
        assert_eq!(r.recode(1_000_000), None);
    }

    #[test]
    fn empty_db_yields_empty_recoder() {
        let r = ItemRecoder::scan(&TransactionDb::new(), 1);
        assert_eq!(r.num_items(), 0);
    }

    #[test]
    fn min_support_zero_keeps_everything_present() {
        let r = ItemRecoder::scan(&sample_db(), 1);
        assert_eq!(r.num_items(), 4);
    }
}
