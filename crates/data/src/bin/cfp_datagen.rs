//! `cfp-datagen` — writes the built-in dataset profiles (or a custom IBM
//! Quest configuration) as FIMI files, so external tools and the file-based
//! mining pipeline can consume them.
//!
//! ```text
//! cfp-datagen list
//! cfp-datagen <profile> <output.dat>
//! cfp-datagen quest --transactions 50000 --avg-len 12 --items 1000 \
//!                   --patterns 2000 --pattern-len 4 --seed 7 <output.dat>
//! ```

use cfp_data::quest::QuestConfig;
use cfp_data::{fimi, profiles};
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: cfp-datagen list");
    eprintln!("       cfp-datagen <profile> <output.dat>");
    eprintln!("       cfp-datagen quest [--transactions N] [--avg-len F] [--items N]");
    eprintln!("                         [--patterns N] [--pattern-len F] [--seed N] <output.dat>");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for p in profiles::all() {
                println!("{:<16} {}", p.name, p.description);
            }
        }
        Some("quest") => {
            let mut cfg = QuestConfig::default();
            let mut output = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .unwrap_or_else(|| {
                            eprintln!("missing value for {name}");
                            usage()
                        })
                        .clone()
                };
                match arg.as_str() {
                    "--transactions" => cfg.num_transactions = parse(&value(arg)),
                    "--avg-len" => cfg.avg_transaction_len = parse(&value(arg)),
                    "--items" => cfg.num_items = parse(&value(arg)),
                    "--patterns" => cfg.num_patterns = parse(&value(arg)),
                    "--pattern-len" => cfg.avg_pattern_len = parse(&value(arg)),
                    "--seed" => cfg.seed = parse(&value(arg)),
                    other if !other.starts_with('-') && output.is_none() => {
                        output = Some(other.to_string());
                    }
                    other => {
                        eprintln!("unknown flag {other:?}");
                        usage();
                    }
                }
            }
            let Some(output) = output else { usage() };
            let db = cfp_data::quest::generate(&cfg);
            write(&db, &output);
        }
        Some(name) => {
            let Some(profile) = profiles::by_name(name) else {
                eprintln!("unknown profile {name:?} (try `cfp-datagen list`)");
                exit(2);
            };
            let Some(output) = args.get(1) else { usage() };
            let db = profile.generate();
            write(&db, output);
        }
        None => usage(),
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {s:?}");
        usage()
    })
}

fn write(db: &cfp_data::TransactionDb, path: &str) {
    if let Err(e) = fimi::write_file(db, path) {
        eprintln!("failed to write {path}: {e}");
        exit(1);
    }
    println!(
        "wrote {path}: {} transactions, {} distinct items, avg length {:.1}",
        db.len(),
        db.distinct_items(),
        db.avg_transaction_len()
    );
}
