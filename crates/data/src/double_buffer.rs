//! Asynchronous double-buffered data input (§4.1).
//!
//! The paper: "We implemented asynchronous double buffering, i.e., we work
//! with two input buffers: one that is being processed and one that is
//! being loaded from disk." The build phase of the initial tree is I/O
//! bound, so overlapping parsing with insertion hides most of the input
//! latency.
//!
//! [`DoubleBufferedReader`] spawns one background thread that reads and
//! parses chunks of transactions into a [`TransactionDb`] buffer while the
//! consumer processes the previously filled buffer. Exactly two buffers
//! circulate between the threads, so memory stays bounded no matter how
//! large the input file is.
//!
//! # Failure model
//!
//! Failures on the reading thread never panic the consumer. An I/O error
//! (or a strict-policy parse error) is forwarded through the buffer
//! channel and surfaces as the `Err` of the next
//! [`next_chunk`](DoubleBufferedReader::next_chunk) call — chunks read
//! before the failure are still delivered in order first. Even a failed
//! thread spawn is reported this way instead of panicking.

use crate::fimi::{parse_line_with_policy, ParsePolicy, ParseStats};
use crate::types::{Item, TransactionDb};
use std::io::{self, BufRead, BufReader, Read};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Default number of transactions per buffer.
pub const DEFAULT_CHUNK: usize = 8192;

enum Filled {
    Chunk(TransactionDb),
    Err(io::Error),
}

/// Streams transactions from a reader with one background parsing thread
/// and two circulating buffers.
pub struct DoubleBufferedReader {
    filled_rx: Receiver<Filled>,
    empty_tx: Option<SyncSender<TransactionDb>>,
    worker: Option<JoinHandle<()>>,
    stats: Arc<Mutex<ParseStats>>,
}

impl DoubleBufferedReader {
    /// Starts reading `input` with the default chunk size.
    pub fn new(input: impl Read + Send + 'static) -> Self {
        Self::with_chunk_size(input, DEFAULT_CHUNK)
    }

    /// Starts reading `input`, grouping `chunk` transactions per buffer.
    pub fn with_chunk_size(input: impl Read + Send + 'static, chunk: usize) -> Self {
        Self::with_policy(input, chunk, ParsePolicy::Strict)
    }

    /// Starts reading `input` under an explicit [`ParsePolicy`], grouping
    /// `chunk` transactions per buffer.
    pub fn with_policy(
        input: impl Read + Send + 'static,
        chunk: usize,
        policy: ParsePolicy,
    ) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        let (filled_tx, filled_rx) = sync_channel::<Filled>(2);
        let (empty_tx, empty_rx) = sync_channel::<TransactionDb>(2);
        // Two buffers circulate: one being filled, one being drained.
        empty_tx.send(TransactionDb::new()).expect("fresh channel");
        empty_tx.send(TransactionDb::new()).expect("fresh channel");

        let stats = Arc::new(Mutex::new(ParseStats::default()));
        let worker_stats = Arc::clone(&stats);
        let spawn_tx = filled_tx.clone();
        let worker = std::thread::Builder::new().name("cfp-data-reader".into()).spawn(move || {
            let mut reader = BufReader::new(input);
            let mut line = String::new();
            let mut items: Vec<Item> = Vec::new();
            let mut local = ParseStats::default();
            let flush = |local: &ParseStats| {
                *worker_stats.lock().unwrap_or_else(|e| e.into_inner()) = *local;
            };
            'outer: while let Ok(mut db) = empty_rx.recv() {
                db.clear(); // reuse the recycled buffer's allocation
                let mut n = 0;
                loop {
                    line.clear();
                    if cfp_fault::should_fail("data.read") {
                        flush(&local);
                        let _ = filled_tx.send(Filled::Err(io::Error::other(
                            "injected I/O failure (failpoint data.read)",
                        )));
                        break 'outer;
                    }
                    match reader.read_line(&mut line) {
                        Ok(0) => {
                            flush(&local);
                            if !db.is_empty() {
                                if cfp_trace::events::capturing() {
                                    cfp_trace::events::record(cfp_trace::EventKind::BufferSwap {
                                        rows: n as u32,
                                    });
                                }
                                let _ = filled_tx.send(Filled::Chunk(db));
                            }
                            break 'outer;
                        }
                        Ok(_) => {
                            local.lines += 1;
                            items.clear();
                            match parse_line_with_policy(
                                &line,
                                local.lines,
                                policy,
                                &mut items,
                                &mut local,
                            ) {
                                Ok(true) => {
                                    db.push(&items);
                                    n += 1;
                                    if n == chunk {
                                        flush(&local);
                                        if cfp_trace::events::capturing() {
                                            cfp_trace::events::record(
                                                cfp_trace::EventKind::BufferSwap { rows: n as u32 },
                                            );
                                        }
                                        if filled_tx.send(Filled::Chunk(db)).is_err() {
                                            break 'outer; // consumer dropped
                                        }
                                        continue 'outer;
                                    }
                                }
                                Ok(false) => {} // line skipped under ParsePolicy::Skip
                                Err(e) => {
                                    flush(&local);
                                    let _ = filled_tx.send(Filled::Err(e.into()));
                                    break 'outer;
                                }
                            }
                        }
                        Err(e) => {
                            flush(&local);
                            let _ = filled_tx.send(Filled::Err(e));
                            break 'outer;
                        }
                    }
                }
            }
        });
        let worker = match worker {
            Ok(h) => Some(h),
            Err(e) => {
                // Report the failed spawn through the normal error path
                // instead of panicking the consumer.
                let _ = spawn_tx.send(Filled::Err(e));
                None
            }
        };

        DoubleBufferedReader { filled_rx, empty_tx: Some(empty_tx), worker, stats }
    }

    /// Receives the next filled buffer, or `None` at end of input.
    ///
    /// The previous buffer should be handed back via
    /// [`recycle`](Self::recycle) to keep both buffers circulating.
    pub fn next_chunk(&mut self) -> io::Result<Option<TransactionDb>> {
        let wait_t0 = cfp_trace::hist::maybe_now();
        let received = self.filled_rx.recv();
        cfp_trace::hist::record_since(&cfp_trace::hist::DATA_BUFFER_WAIT_NANOS, wait_t0);
        match received {
            Ok(Filled::Chunk(db)) => Ok(Some(db)),
            Ok(Filled::Err(e)) => Err(e),
            Err(_) => Ok(None), // worker finished and dropped its sender
        }
    }

    /// Returns a drained buffer to the reading thread.
    pub fn recycle(&mut self, buffer: TransactionDb) {
        if let Some(tx) = &self.empty_tx {
            let _ = tx.send(buffer);
        }
    }

    /// Parse statistics observed so far. Updated at chunk boundaries and
    /// on stream end, so the value is only final once
    /// [`next_chunk`](Self::next_chunk) has returned `Ok(None)` or `Err`.
    pub fn parse_stats(&self) -> ParseStats {
        *self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Drives the whole stream through `f`, recycling buffers internally.
    pub fn for_each_transaction(mut self, mut f: impl FnMut(&[Item])) -> io::Result<()> {
        while let Some(chunk) = self.next_chunk()? {
            for t in chunk.iter() {
                f(t);
            }
            self.recycle(chunk);
        }
        Ok(())
    }

    /// Collects the entire stream into one database.
    pub fn collect(mut self) -> io::Result<TransactionDb> {
        let mut out = TransactionDb::new();
        while let Some(chunk) = self.next_chunk()? {
            for t in chunk.iter() {
                out.push(t);
            }
            self.recycle(chunk);
        }
        Ok(out)
    }
}

impl Drop for DoubleBufferedReader {
    fn drop(&mut self) {
        // Closing the empty-buffer channel tells the worker to stop.
        self.empty_tx.take();
        // Drain anything in flight so the worker's send doesn't block.
        while self.filled_rx.try_recv().is_ok() {}
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fimi;

    fn sample_text(n: usize) -> String {
        let mut s = String::new();
        for i in 0..n {
            s.push_str(&format!("{} {} {}\n", i % 10, i % 7 + 10, i % 3 + 20));
        }
        s
    }

    #[test]
    fn collect_matches_plain_reader() {
        let text = sample_text(1000);
        let via_plain = fimi::read(text.as_bytes()).unwrap();
        let via_db =
            DoubleBufferedReader::with_chunk_size(std::io::Cursor::new(text.into_bytes()), 64)
                .collect()
                .unwrap();
        assert_eq!(via_db, via_plain);
    }

    #[test]
    fn for_each_visits_every_transaction_in_order() {
        let text = sample_text(257); // not a multiple of the chunk size
        let rdr =
            DoubleBufferedReader::with_chunk_size(std::io::Cursor::new(text.into_bytes()), 100);
        let mut seen = Vec::new();
        rdr.for_each_transaction(|t| seen.push(t.to_vec())).unwrap();
        assert_eq!(seen.len(), 257);
        assert_eq!(seen[0], vec![0, 10, 20]);
        assert_eq!(seen[256], vec![256 % 10, 256 % 7 + 10, 256 % 3 + 20]);
    }

    #[test]
    fn empty_input_yields_nothing() {
        let rdr = DoubleBufferedReader::new(std::io::Cursor::new(Vec::<u8>::new()));
        let db = rdr.collect().unwrap();
        assert!(db.is_empty());
    }

    #[test]
    fn parse_errors_propagate() {
        let rdr = DoubleBufferedReader::new(std::io::Cursor::new(b"1 2\n3 oops\n".to_vec()));
        assert!(rdr.collect().is_err());
    }

    #[test]
    fn strict_error_cites_the_line_number() {
        let mut rdr =
            DoubleBufferedReader::new(std::io::Cursor::new(b"1 2\n2 3\nbad x\n".to_vec()));
        let first = rdr.next_chunk();
        // The single chunk errors out because the bad line arrives before
        // the chunk boundary; the message names line 3.
        let err = first.expect_err("strict parse must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn skip_policy_drops_bad_lines_and_counts_them() {
        let text = b"1 2\nbad x\n3 4\n".to_vec();
        let mut rdr =
            DoubleBufferedReader::with_policy(std::io::Cursor::new(text), 64, ParsePolicy::Skip);
        let mut rows = Vec::new();
        while let Some(chunk) = rdr.next_chunk().unwrap() {
            for t in chunk.iter() {
                rows.push(t.to_vec());
            }
            rdr.recycle(chunk);
        }
        assert_eq!(rows, vec![vec![1, 2], vec![3, 4]]);
        let stats = rdr.parse_stats();
        assert_eq!(stats.lines, 3);
        assert_eq!(stats.skipped_lines, 1);
        assert_eq!(stats.bad_tokens, 2);
    }

    #[test]
    fn skip_policy_damage_accounting_spans_chunk_boundaries() {
        // Malformed, blank, and valid lines interleaved, with a chunk
        // size small enough that the damage spreads over many chunks —
        // the final stats must still see every line exactly once.
        let mut text = String::new();
        let mut expected_rows = 0u64;
        for i in 0..50u32 {
            text.push_str(&format!("{} {}\n", i, i + 1)); // valid
            text.push('\n'); // blank: valid empty transaction
            text.push_str("oops -3\n"); // malformed: 2 bad tokens
            expected_rows += 2;
        }
        let mut rdr = DoubleBufferedReader::with_policy(
            std::io::Cursor::new(text.into_bytes()),
            4,
            ParsePolicy::Skip,
        );
        let mut rows = 0u64;
        while let Some(chunk) = rdr.next_chunk().unwrap() {
            rows += chunk.len() as u64;
            rdr.recycle(chunk);
        }
        assert_eq!(rows, expected_rows);
        let stats = rdr.parse_stats();
        assert_eq!(stats.lines, 150);
        assert_eq!(stats.skipped_lines, 50);
        assert_eq!(stats.bad_tokens, 100);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn skip_policy_trace_counters_through_double_buffer() {
        use cfp_trace::counters as tc;
        let before_lines = tc::DATA_SKIPPED_LINES.get();
        let before_tokens = tc::DATA_BAD_TOKENS.get();
        cfp_trace::set_enabled(true);
        let text = b"1 2\nbad\n\n3\nworse yet\n".to_vec();
        let mut rdr =
            DoubleBufferedReader::with_policy(std::io::Cursor::new(text), 2, ParsePolicy::Skip);
        while let Some(chunk) = rdr.next_chunk().unwrap() {
            rdr.recycle(chunk);
        }
        cfp_trace::set_enabled(false);
        let stats = rdr.parse_stats();
        assert_eq!(stats.skipped_lines, 2);
        assert_eq!(stats.bad_tokens, 3);
        // Trace counters mirror the per-read stats (>= because other
        // trace-gated tests share the global registry).
        assert!(tc::DATA_SKIPPED_LINES.get() >= before_lines + 2);
        assert!(tc::DATA_BAD_TOKENS.get() >= before_tokens + 3);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn buffer_swaps_land_on_the_reader_threads_event_track() {
        cfp_trace::events::set_capture(true);
        let text = sample_text(250);
        let rdr =
            DoubleBufferedReader::with_chunk_size(std::io::Cursor::new(text.into_bytes()), 100);
        let db = rdr.collect().unwrap();
        assert_eq!(db.len(), 250);
        cfp_trace::events::set_capture(false);
        let tracks = cfp_trace::events::drain();
        let reader = tracks
            .iter()
            .find(|t| t.name == "cfp-data-reader")
            .expect("reader thread must have a named track");
        let swaps: Vec<u32> = reader
            .events
            .iter()
            .filter_map(|e| match e.kind {
                cfp_trace::EventKind::BufferSwap { rows } => Some(rows),
                _ => None,
            })
            .collect();
        // 250 rows in chunks of 100: two full buffers plus the final
        // partial one at end of input.
        assert_eq!(swaps, vec![100, 100, 50]);
    }

    #[test]
    fn dropping_early_does_not_hang() {
        let text = sample_text(100_000);
        let mut rdr =
            DoubleBufferedReader::with_chunk_size(std::io::Cursor::new(text.into_bytes()), 128);
        let first = rdr.next_chunk().unwrap();
        assert!(first.is_some());
        drop(rdr); // must join cleanly even with data still in flight
    }
}
