//! A small, self-contained deterministic PRNG.
//!
//! The workspace builds in offline environments where crates.io is not
//! reachable, so the `rand` crate is not a dependency. Every seeded random
//! draw in the workspace — the Quest generator, the Zipf sampler, the
//! dataset profiles, and the randomized stress tests — goes through this
//! module instead. The API mirrors the subset of `rand` those call sites
//! use (`StdRng::seed_from_u64`, `gen`, `gen_range`, `gen_bool`) so the
//! call sites read identically.
//!
//! The generator is xoshiro256++ seeded through SplitMix64: fast, tiny,
//! and statistically solid for simulation workloads (it is the generator
//! family `rand`'s own `SmallRng` used). It is **not** cryptographically
//! secure, which is irrelevant here: all uses are synthetic data generation
//! and test-case shuffling.

/// A source of uniformly distributed 64-bit values, with the sampling
/// helpers the workspace uses.
pub trait Rng {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (see [`SampleValue`]).
    fn gen<T: SampleValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool({p}) out of range");
        self.gen::<f64>() < p
    }
}

/// The default generator: xoshiro256++.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Deterministically expands `seed` into a full generator state via
    /// SplitMix64 (the seeding procedure recommended by the xoshiro
    /// authors: it guarantees a non-zero state for every seed).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types [`Rng::gen`] can produce directly.
pub trait SampleValue {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleValue for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleValue for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! sample_int {
    ($($t:ty),*) => {$(
        impl SampleValue for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types [`Rng::gen_range`] can sample between two bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Unsigned distance `to - self` (callers guarantee `self <= to`).
    fn distance(self, to: Self) -> u64;
    /// `self + dist`, staying within the type (callers guarantee the
    /// result does not leave the original range).
    fn offset(self, dist: u64) -> Self;
}

/// Scales a raw draw into `0..span` without modulo bias worth caring
/// about (fixed-point multiply; exact for spans far below 2^64, which all
/// call sites are). A span of 0 encodes the full 64-bit range.
#[inline]
fn scale(raw: u64, span: u64) -> u64 {
    if span == 0 {
        raw
    } else {
        ((raw as u128 * span as u128) >> 64) as u64
    }
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn distance(self, to: $t) -> u64 {
                // The wrapping difference reinterpreted through the
                // unsigned twin is the true distance even for signed types.
                to.wrapping_sub(self) as $u as u64
            }
            #[inline]
            fn offset(self, dist: u64) -> $t {
                self.wrapping_add(dist as $u as $t)
            }
        }
    )*};
}
uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range over an empty range");
        let span = self.start.distance(self.end);
        self.start.offset(scale(rng.next_u64(), span))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range over an empty range");
        // Wraps to 0 for the full 64-bit range, which `scale` handles.
        let span = low.distance(high).wrapping_add(1);
        low.offset(scale(rng.next_u64(), span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let s: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn single_value_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(7..8), 7);
        assert_eq!(rng.gen_range(7..=7), 7);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5..5);
    }

    #[test]
    fn f64_is_unit_interval_and_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(7);
        // span wraps to 0 — the full-range escape hatch.
        let _ = rng.gen_range(0..=u64::MAX);
    }
}
