//! The common interface implemented by every mining algorithm in the
//! workspace, and the output sinks results are streamed into.
//!
//! A frequent-itemset miner can emit millions of itemsets; materializing
//! them all defeats the paper's memory story. Miners therefore push each
//! frequent itemset into an [`ItemsetSink`], and callers choose a sink that
//! matches their need: counting only, collecting, keeping the top-k, or a
//! histogram by cardinality.
//!
//! Itemsets are always emitted with *original* item identifiers, sorted
//! ascending, so results from different algorithms are directly comparable.

use crate::types::{Item, TransactionDb};
use cfp_fault::CfpError;
use std::collections::BinaryHeap;
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// Which itemsets a mining run reports.
///
/// `All` is the classic behaviour. The condensed modes are *first-class
/// miners*, not post-hoc filters: closure checking, maximality pruning
/// and the rising top-k support bound run inside the CFP-growth
/// recursion, so the full frequent set is never materialized.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OutputMode {
    /// Every frequent itemset.
    #[default]
    All,
    /// Only closed itemsets: no proper superset has equal support.
    Closed,
    /// Only maximal itemsets: no proper superset is frequent.
    Maximal,
    /// The `k` highest-support itemsets, ties broken lexicographically
    /// (smaller itemset wins), emitted sorted at the end of the run.
    TopK(usize),
}

impl OutputMode {
    /// True for the modes whose emission depends on previously emitted
    /// itemsets (closed/maximal subsumption indexes).
    pub fn is_condensed(&self) -> bool {
        matches!(self, OutputMode::Closed | OutputMode::Maximal)
    }
}

impl fmt::Display for OutputMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutputMode::All => f.write_str("all"),
            OutputMode::Closed => f.write_str("closed"),
            OutputMode::Maximal => f.write_str("maximal"),
            OutputMode::TopK(k) => write!(f, "topk:{k}"),
        }
    }
}

impl FromStr for OutputMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "all" => Ok(OutputMode::All),
            "closed" => Ok(OutputMode::Closed),
            "maximal" => Ok(OutputMode::Maximal),
            _ => match s.strip_prefix("topk:") {
                Some(n) => match n.parse::<usize>() {
                    Ok(k) if k >= 1 => Ok(OutputMode::TopK(k)),
                    Ok(_) => Err(format!("invalid output mode '{s}': topk wants k >= 1")),
                    Err(_) => Err(format!("invalid output mode '{s}': topk wants an integer")),
                },
                None => {
                    Err(format!("invalid output mode '{s}' (expected all|closed|maximal|topk:N)"))
                }
            },
        }
    }
}

/// A resumable-boundary notification delivered to
/// [`ItemsetSink::progress`].
///
/// Miners guarantee that when a notification arrives, every itemset of
/// the completed units (and nothing of any later unit) has already been
/// emitted — the sink's byte stream sits at an exact watermark, which is
/// what makes checkpoint/resume exact.
#[derive(Clone, Copy, Debug)]
pub enum MineProgress<'a> {
    /// `done` top-level items are fully emitted. CFP-growth mines
    /// first-level items in descending recoded order, so `done = d`
    /// means items `n-1, n-2, …, n-d` are finished.
    Items {
        /// Completed top-level items.
        done: u64,
    },
    /// `done` spill partitions are fully emitted; `remaining` holds the
    /// not-yet-mined `(lo, hi)` recoded item ranges in the exact order
    /// the rung will process them.
    SpillParts {
        /// Completed spill partitions.
        done: u64,
        /// Unmined ranges, in processing order.
        remaining: &'a [(u32, u32)],
    },
}

/// Receives frequent itemsets as they are discovered.
pub trait ItemsetSink {
    /// Called once per frequent itemset. `itemset` contains original item
    /// ids sorted ascending; `support` is its exact support count.
    fn emit(&mut self, itemset: &[Item], support: u64);

    /// Called at each resumable boundary (see [`MineProgress`]). The
    /// default ignores it; checkpointing sinks override it to flush
    /// output and commit a manifest. An `Err` aborts the run.
    fn progress(&mut self, progress: MineProgress<'_>) -> Result<(), CfpError> {
        let _ = progress;
        Ok(())
    }
}

/// Counts itemsets without storing them.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Number of itemsets emitted.
    pub count: u64,
    /// Sum of supports, a cheap checksum for cross-algorithm comparisons.
    pub support_sum: u64,
    /// Sum of cardinalities.
    pub item_sum: u64,
}

impl CountingSink {
    /// A fresh counting sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ItemsetSink for CountingSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.count += 1;
        self.support_sum += support;
        self.item_sum += itemset.len() as u64;
    }
}

/// Collects all itemsets into a vector.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// The collected `(itemset, support)` pairs, in emission order.
    pub itemsets: Vec<(Vec<Item>, u64)>,
}

impl CollectSink {
    /// A fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sorts results canonically (by itemset contents) for comparisons.
    pub fn into_sorted(mut self) -> Vec<(Vec<Item>, u64)> {
        self.itemsets.sort();
        self.itemsets
    }
}

impl ItemsetSink for CollectSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.itemsets.push((itemset.to_vec(), support));
    }
}

/// Keeps the `k` itemsets with the highest support.
///
/// Ties at the cut-off are broken *lexicographically* (the smaller
/// itemset wins), so the retained set — and therefore the output of a
/// top-k run — is a deterministic function of the emitted multiset,
/// independent of emission order, thread count, or schedule.
#[derive(Debug)]
pub struct TopKSink {
    k: usize,
    // Min-heap (via the outer Reverse) ordered by "goodness": higher
    // support is better, and among equal supports the lexicographically
    // smaller itemset is better (hence the inner Reverse on the
    // itemset). `pop` therefore evicts the worst retained entry.
    heap: BinaryHeap<std::cmp::Reverse<(u64, std::cmp::Reverse<Vec<Item>>)>>,
}

impl TopKSink {
    /// Keeps the top `k` itemsets by support.
    pub fn new(k: usize) -> Self {
        TopKSink { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Support of the worst retained itemset once `k` are held; 0 while
    /// the heap is still filling. A streaming miner may prune any
    /// candidate whose support is *strictly* below this bound.
    pub fn bound(&self) -> u64 {
        if self.heap.len() < self.k {
            return 0;
        }
        self.heap.peek().map_or(0, |r| r.0 .0)
    }

    /// The retained itemsets, highest support first, ties in ascending
    /// lexicographic order.
    pub fn into_sorted(self) -> Vec<(Vec<Item>, u64)> {
        let mut v: Vec<(u64, std::cmp::Reverse<Vec<Item>>)> =
            self.heap.into_iter().map(|r| r.0).collect();
        v.sort_by(|a, b| b.cmp(a));
        v.into_iter().map(|(s, i)| (i.0, s)).collect()
    }
}

impl ItemsetSink for TopKSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        if self.k == 0 {
            return;
        }
        self.heap.push(std::cmp::Reverse((support, std::cmp::Reverse(itemset.to_vec()))));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }
}

/// Histogram of itemset cardinalities (index = cardinality).
#[derive(Debug, Default)]
pub struct LengthHistogramSink {
    /// `buckets[k]` = number of frequent itemsets of cardinality `k`.
    pub buckets: Vec<u64>,
}

impl LengthHistogramSink {
    /// A fresh histogram.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ItemsetSink for LengthHistogramSink {
    fn emit(&mut self, itemset: &[Item], _support: u64) {
        let k = itemset.len();
        if self.buckets.len() <= k {
            self.buckets.resize(k + 1, 0);
        }
        self.buckets[k] += 1;
    }
}

/// Discards everything (pure throughput measurement).
#[derive(Debug, Default)]
pub struct NullSink;

impl ItemsetSink for NullSink {
    fn emit(&mut self, _itemset: &[Item], _support: u64) {}
}

/// Execution statistics returned by every miner.
#[derive(Clone, Debug, Default)]
pub struct MineStats {
    /// Number of frequent itemsets emitted.
    pub itemsets: u64,
    /// Time of the counting scan (pass 1).
    pub scan_time: Duration,
    /// Time to build the algorithm's main structure (pass 2).
    pub build_time: Duration,
    /// Time to convert between build- and mine-phase structures
    /// (zero for algorithms without a conversion step).
    pub convert_time: Duration,
    /// Time of the mine phase.
    pub mine_time: Duration,
    /// Peak bytes of the algorithm's data structures.
    pub peak_bytes: u64,
    /// Average bytes across phase checkpoints (0 if not tracked).
    pub avg_bytes: u64,
    /// Logical nodes of the initial prefix tree (0 for tree-less miners).
    pub tree_nodes: u64,
    /// Per-worker peak bytes of conditional structures (empty for
    /// sequential miners; one entry per worker thread otherwise).
    pub worker_peaks: Vec<u64>,
    /// First-level item tasks each worker processed (empty for
    /// sequential miners). Under a static schedule the counts are fixed
    /// by the round-robin deal; under a dynamic schedule they reflect
    /// what each worker actually claimed.
    pub worker_tasks: Vec<u64>,
    /// Summed estimated cost (encoded subarray bytes) of the tasks each
    /// worker processed (empty for sequential miners). The max/min ratio
    /// across workers is the load-imbalance measure the skew benchmark
    /// reports.
    pub worker_costs: Vec<u64>,
}

impl MineStats {
    /// Total wall time across all phases.
    pub fn total_time(&self) -> Duration {
        self.scan_time + self.build_time + self.convert_time + self.mine_time
    }
}

/// A frequent-itemset mining algorithm.
pub trait Miner {
    /// Short identifier used in benchmark tables (e.g. `"cfp-growth"`).
    fn name(&self) -> &'static str;

    /// Mines all itemsets with support ≥ `min_support` from `db`,
    /// emitting each into `sink`, and returns execution statistics.
    fn mine(&self, db: &TransactionDb, min_support: u64, sink: &mut dyn ItemsetSink) -> MineStats;

    /// Fallible [`mine`](Self::mine): miners with recoverable failure
    /// modes (memory budgets, contained worker panics) override this to
    /// report a structured [`CfpError`] instead of panicking. The default
    /// simply delegates to `mine`, so the eight baseline miners keep
    /// their infallible behaviour unchanged.
    fn try_mine(
        &self,
        db: &TransactionDb,
        min_support: u64,
        sink: &mut dyn ItemsetSink,
    ) -> Result<MineStats, CfpError> {
        Ok(self.mine(db, min_support, sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_accumulates() {
        let mut s = CountingSink::new();
        s.emit(&[1, 2], 10);
        s.emit(&[3], 5);
        assert_eq!(s.count, 2);
        assert_eq!(s.support_sum, 15);
        assert_eq!(s.item_sum, 3);
    }

    #[test]
    fn collect_sink_sorts_canonically() {
        let mut s = CollectSink::new();
        s.emit(&[2], 1);
        s.emit(&[1, 3], 4);
        s.emit(&[1], 9);
        let v = s.into_sorted();
        assert_eq!(v, vec![(vec![1], 9), (vec![1, 3], 4), (vec![2], 1)]);
    }

    #[test]
    fn topk_keeps_highest_supports() {
        let mut s = TopKSink::new(2);
        s.emit(&[1], 5);
        s.emit(&[2], 50);
        s.emit(&[3], 20);
        s.emit(&[4], 1);
        let v = s.into_sorted();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], (vec![2], 50));
        assert_eq!(v[1], (vec![3], 20));
    }

    #[test]
    fn topk_zero_is_a_null_sink() {
        let mut s = TopKSink::new(0);
        s.emit(&[1], 5);
        assert!(s.into_sorted().is_empty());
    }

    #[test]
    fn topk_breaks_support_ties_lexicographically() {
        // Four itemsets tie at support 7; only two fit. The retained
        // pair must be the lexicographically smallest two, regardless of
        // emission order — repeat with the reverse order to prove it.
        for rev in [false, true] {
            let mut emits: Vec<Vec<Item>> = vec![vec![9], vec![2, 4], vec![2, 3], vec![1, 100]];
            if rev {
                emits.reverse();
            }
            let mut s = TopKSink::new(2);
            for e in &emits {
                s.emit(e, 7);
            }
            let v = s.into_sorted();
            assert_eq!(v, vec![(vec![1, 100], 7), (vec![2, 3], 7)]);
        }
    }

    #[test]
    fn topk_bound_rises_as_the_heap_fills() {
        let mut s = TopKSink::new(2);
        assert_eq!(s.bound(), 0);
        s.emit(&[1], 5);
        assert_eq!(s.bound(), 0, "bound is inactive until k are held");
        s.emit(&[2], 9);
        assert_eq!(s.bound(), 5);
        s.emit(&[3], 7);
        assert_eq!(s.bound(), 7);
    }

    #[test]
    fn output_mode_parses_and_displays() {
        assert_eq!("all".parse::<OutputMode>().unwrap(), OutputMode::All);
        assert_eq!("closed".parse::<OutputMode>().unwrap(), OutputMode::Closed);
        assert_eq!("maximal".parse::<OutputMode>().unwrap(), OutputMode::Maximal);
        assert_eq!("topk:50".parse::<OutputMode>().unwrap(), OutputMode::TopK(50));
        for bad in ["topk:0", "topk:x", "topk:", "frequent", "", "topk:-3"] {
            assert!(bad.parse::<OutputMode>().is_err(), "{bad} must not parse");
        }
        for m in [OutputMode::All, OutputMode::Closed, OutputMode::Maximal, OutputMode::TopK(7)] {
            assert_eq!(m.to_string().parse::<OutputMode>().unwrap(), m, "round trip {m}");
        }
        assert!(OutputMode::Closed.is_condensed());
        assert!(!OutputMode::TopK(3).is_condensed());
    }

    #[test]
    fn length_histogram_buckets_by_cardinality() {
        let mut s = LengthHistogramSink::new();
        s.emit(&[1], 1);
        s.emit(&[1, 2], 1);
        s.emit(&[3, 4], 1);
        assert_eq!(s.buckets, vec![0, 1, 2]);
    }

    #[test]
    fn mine_stats_total_time_sums_phases() {
        let st = MineStats {
            scan_time: Duration::from_millis(1),
            build_time: Duration::from_millis(2),
            convert_time: Duration::from_millis(3),
            mine_time: Duration::from_millis(4),
            ..Default::default()
        };
        assert_eq!(st.total_time(), Duration::from_millis(10));
    }
}
