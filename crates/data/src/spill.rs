//! Crash-safe spill files for the out-of-core recovery rung.
//!
//! When a dataset does not fit the memory budget even partitioned, the
//! supervisor's `spill` rung projects partitions to disk and mines them
//! back one at a time (the paper's §5 class-3 "structure on disk"
//! scenario). This module owns the raw file discipline that makes that
//! safe:
//!
//! - **Atomic visibility**: a spill file is written to a `.tmp` sibling,
//!   fsynced, and atomically renamed into place. A reader can therefore
//!   never observe a torn file under its final name; whatever survives a
//!   crash mid-write is a `.tmp` that the next cleanup removes.
//! - **RAII cleanup**: all spill state lives in one [`SpillDir`] whose
//!   `Drop` removes the directory recursively — on success, on error
//!   returns, and on unwind from a panicking worker alike.
//! - **Bounded retries**: transient I/O errors (`Interrupted`,
//!   `WouldBlock`, `TimedOut`) are retried a few times with a short
//!   backoff; permanent ones (ENOSPC above all) escalate immediately.
//! - **Failpoints**: `data.spill.write` injects a disk-full (first call)
//!   or a short write mid-file (later calls), `data.spill.read` injects
//!   a read failure, and `data.spill.map` corrupts the loaded bytes so
//!   the checksum layer above must catch the torn read. All three are
//!   compiled out without the `fault` feature.

use cfp_trace::counters as tc;
use cfp_trace::Phase;
use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Attempts per spill operation: the first try plus two retries.
pub const RETRY_ATTEMPTS: u32 = 3;

/// Backoff before retry `k` (1-based): `k * RETRY_BACKOFF`.
const RETRY_BACKOFF: Duration = Duration::from_millis(2);

/// Buffered-writer capacity; also the granularity at which the write
/// failpoint can tear a file.
const WRITE_BUF: usize = 64 * 1024;

/// Distinguishes concurrently-created spill directories of one process.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// An owned directory holding every spill file of one mining run.
///
/// Created as a uniquely-named subdirectory of the requested parent, and
/// removed — recursively, with everything in it — when the guard drops.
/// Keeping cleanup in `Drop` is what guarantees "no stray temp state on
/// any exit path": early `?` returns, panics unwinding through the spill
/// rung, and plain success all funnel through the same removal.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Creates a fresh spill directory under `parent` (which is created
    /// too if missing).
    pub fn create(parent: &Path) -> io::Result<SpillDir> {
        fs::create_dir_all(parent)?;
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = parent.join(format!("cfp-spill-{}-{}", std::process::id(), seq));
        fs::create_dir(&path)?;
        Ok(SpillDir { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The path a spill file named `name` lives at inside this directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }

    /// Removes `name` (ignoring a file that is already gone, e.g. after
    /// a failed write cleaned up behind itself).
    pub fn remove(&self, name: &str) {
        let _ = fs::remove_file(self.file(name));
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Counts bytes reaching the underlying file and hosts the
/// `data.spill.write` failpoint. Sits *under* the `BufWriter`, so the
/// failpoint counts real file writes (one per buffer flush), and a fired
/// fault can leave a genuinely short file: half the offending buffer is
/// written before the error is returned, exactly the torn state a real
/// ENOSPC mid-flush produces.
struct FaultWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // Cap each underlying write at the buffer size. `BufWriter`
        // bypasses its buffer for larger writes, which would collapse a
        // whole payload into one failpoint call; capping keeps the fault
        // granularity (and the torn-file shapes it can produce) stable.
        let buf = &buf[..buf.len().min(WRITE_BUF)];
        if cfp_fault::should_fail("data.spill.write") {
            let half = buf.len() / 2;
            self.inner.write_all(&buf[..half])?;
            self.written += half as u64;
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected disk-full (failpoint data.spill.write)",
            ));
        }
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Whether an I/O failure is worth retrying: scheduler noise and
/// timeouts are; disk-full, permission, and corruption are not.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Runs `op` up to [`RETRY_ATTEMPTS`] times, backing off briefly between
/// attempts, retrying only [transient](is_transient) failures. The last
/// error escalates to the caller.
pub fn with_retry<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut attempt = 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < RETRY_ATTEMPTS && is_transient(&e) => {
                if cfp_trace::enabled() {
                    tc::DATA_SPILL_RETRIES.inc();
                }
                std::thread::sleep(RETRY_BACKOFF * attempt);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes one spill file crash-safely and returns its byte size:
/// `payload` streams into `<path>.tmp`, the file is fsynced, then
/// atomically renamed to `path`. On any failure the temporary is
/// removed, so a fault never leaves a stray or half-visible file.
/// Transient errors retry the whole protocol (the payload closure must
/// be re-runnable); permanent ones escalate after cleanup.
pub fn write_atomic(
    path: &Path,
    mut payload: impl FnMut(&mut dyn Write) -> io::Result<()>,
) -> io::Result<u64> {
    let _span = cfp_trace::span(Phase::Spill);
    let bytes = with_retry(|| {
        let tmp = tmp_path(path);
        let result = (|| {
            let file = File::create(&tmp)?;
            let mut w =
                BufWriter::with_capacity(WRITE_BUF, FaultWriter { inner: file, written: 0 });
            payload(&mut w)?;
            let mut fw = w.into_inner().map_err(io::IntoInnerError::into_error)?;
            fw.flush()?;
            let written = fw.written;
            // fsync *before* rename: the final name must never point at
            // bytes the disk has not accepted.
            fw.inner.sync_all()?;
            drop(fw);
            fs::rename(&tmp, path)?;
            // Durability of the *name* is best-effort only — spill files
            // are transient scratch state, not a database. What matters
            // is never reading a torn file, which fsync-then-rename plus
            // the format checksum already guarantee.
            if let Some(dir) = path.parent() {
                if let Ok(d) = File::open(dir) {
                    let _ = d.sync_all();
                }
            }
            Ok(written)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    })?;
    if cfp_trace::enabled() {
        tc::DATA_SPILL_FILES.inc();
        tc::DATA_SPILL_BYTES_WRITTEN.add(bytes);
        if cfp_trace::events::capturing() {
            cfp_trace::events::record(cfp_trace::EventKind::SpillIo { bytes, write: true });
        }
    }
    Ok(bytes)
}

/// Reads a whole spill file back into a shared buffer (the zero-copy
/// substrate `CfpArray::from_bytes` mines through). Transient read
/// errors retry; the `data.spill.read` failpoint injects a permanent
/// one, and `data.spill.map` flips a byte of the loaded image to prove
/// the caller's checksum catches torn reads.
pub fn read_back(path: &Path) -> io::Result<Arc<[u8]>> {
    let _span = cfp_trace::span(Phase::Spill);
    let mut buf = with_retry(|| {
        if cfp_fault::should_fail("data.spill.read") {
            return Err(io::Error::other("injected read failure (failpoint data.spill.read)"));
        }
        let mut file = File::open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        Ok(buf)
    })?;
    if cfp_fault::should_fail("data.spill.map") && !buf.is_empty() {
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
    }
    if cfp_trace::enabled() {
        tc::DATA_SPILL_BYTES_READ.add(buf.len() as u64);
        if cfp_trace::events::capturing() {
            cfp_trace::events::record(cfp_trace::EventKind::SpillIo {
                bytes: buf.len() as u64,
                write: false,
            });
        }
    }
    Ok(buf.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The fault registry is process-global, so any test exercising
    /// `write_atomic`/`read_back` (armed or not) serialises through this
    /// lock — a plain test must never observe a sibling's failpoint.
    static IO_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        IO_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn unique_parent(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfp-spill-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spill_dir_is_removed_on_drop() {
        let parent = unique_parent("drop");
        let path = {
            let dir = SpillDir::create(&parent).unwrap();
            fs::write(dir.file("p0.cfpa"), b"payload").unwrap();
            assert!(dir.path().is_dir());
            dir.path().to_path_buf()
        };
        assert!(!path.exists(), "drop must remove the directory and its files");
        let _ = fs::remove_dir_all(&parent);
    }

    #[test]
    fn spill_dir_is_removed_when_a_worker_panics() {
        let parent = unique_parent("panic");
        let parent2 = parent.clone();
        let path = std::sync::Arc::new(std::sync::Mutex::new(PathBuf::new()));
        let path2 = std::sync::Arc::clone(&path);
        let result = std::panic::catch_unwind(move || {
            let dir = SpillDir::create(&parent2).unwrap();
            fs::write(dir.file("p0.cfpa"), b"payload").unwrap();
            *path2.lock().unwrap() = dir.path().to_path_buf();
            panic!("worker died mid-spill");
        });
        assert!(result.is_err());
        let path = path.lock().unwrap().clone();
        assert!(!path.exists(), "unwind must remove the directory");
        let _ = fs::remove_dir_all(&parent);
    }

    #[test]
    fn write_atomic_round_trips_and_leaves_no_tmp() {
        let _g = lock();
        let parent = unique_parent("atomic");
        let dir = SpillDir::create(&parent).unwrap();
        let target = dir.file("p0.cfpa");
        let bytes = write_atomic(&target, |w| w.write_all(b"hello spill")).unwrap();
        assert_eq!(bytes, 11);
        assert_eq!(fs::read(&target).unwrap(), b"hello spill");
        let names: Vec<_> = fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names, vec!["p0.cfpa"], "no .tmp sibling may survive a successful write");
        drop(dir);
        let _ = fs::remove_dir_all(&parent);
    }

    #[test]
    fn failed_payload_removes_the_tmp_file() {
        let _g = lock();
        let parent = unique_parent("fail");
        let dir = SpillDir::create(&parent).unwrap();
        let target = dir.file("p0.cfpa");
        let err = write_atomic(&target, |w| {
            w.write_all(b"partial")?;
            Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(!target.exists());
        assert_eq!(
            fs::read_dir(dir.path()).unwrap().count(),
            0,
            "a failed write must leave the directory empty"
        );
        drop(dir);
        let _ = fs::remove_dir_all(&parent);
    }

    #[test]
    fn read_back_round_trips() {
        let _g = lock();
        let parent = unique_parent("read");
        let dir = SpillDir::create(&parent).unwrap();
        let target = dir.file("p0.cfpa");
        write_atomic(&target, |w| w.write_all(&[7u8; 1000])).unwrap();
        let buf = read_back(&target).unwrap();
        assert_eq!(&buf[..], &[7u8; 1000][..]);
        drop(dir);
        let _ = fs::remove_dir_all(&parent);
    }

    #[test]
    fn retry_recovers_from_transient_errors_only() {
        let mut calls = 0;
        let out = with_retry(|| {
            calls += 1;
            if calls < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls, 3, "two transient failures then success");

        let mut calls = 0;
        let err = with_retry(|| -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(calls, 1, "permanent errors must not retry");

        let mut calls = 0;
        let err = with_retry(|| -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::TimedOut, "slow disk"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(calls as u32, RETRY_ATTEMPTS, "transient errors retry up to the cap");
    }

    #[cfg(feature = "fault")]
    mod fault {
        use super::*;
        use cfp_fault::FaultMode;
        use std::sync::MutexGuard;

        fn lock() -> MutexGuard<'static, ()> {
            let g = super::lock();
            cfp_fault::clear_all();
            g
        }

        #[test]
        fn injected_disk_full_fails_write_and_cleans_up() {
            let _g = lock();
            let parent = unique_parent("enospc");
            let dir = SpillDir::create(&parent).unwrap();
            let target = dir.file("p0.cfpa");
            cfp_fault::configure("data.spill.write", FaultMode::Nth(1));
            let err = write_atomic(&target, |w| w.write_all(&[1u8; 256 * 1024])).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::StorageFull);
            assert!(!target.exists());
            assert_eq!(fs::read_dir(dir.path()).unwrap().count(), 0);
            cfp_fault::clear_all();
            // The site is disarmed now: the same write succeeds.
            assert!(write_atomic(&target, |w| w.write_all(&[1u8; 256 * 1024])).is_ok());
            drop(dir);
            let _ = fs::remove_dir_all(&parent);
        }

        #[test]
        fn short_write_mid_file_is_cleaned_up() {
            let _g = lock();
            let parent = unique_parent("short");
            let dir = SpillDir::create(&parent).unwrap();
            let target = dir.file("p0.cfpa");
            // A 256 KiB payload flushes four 64 KiB buffers; failing the
            // third tears the file mid-partition.
            cfp_fault::configure("data.spill.write", FaultMode::Nth(3));
            let err = write_atomic(&target, |w| w.write_all(&[2u8; 256 * 1024])).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::StorageFull);
            assert!(!target.exists(), "a torn file must never reach its final name");
            assert_eq!(fs::read_dir(dir.path()).unwrap().count(), 0);
            cfp_fault::clear_all();
            drop(dir);
            let _ = fs::remove_dir_all(&parent);
        }

        #[test]
        fn injected_read_failure_surfaces() {
            let _g = lock();
            let parent = unique_parent("readfail");
            let dir = SpillDir::create(&parent).unwrap();
            let target = dir.file("p0.cfpa");
            write_atomic(&target, |w| w.write_all(b"fine")).unwrap();
            cfp_fault::configure("data.spill.read", FaultMode::Always);
            assert!(read_back(&target).is_err());
            cfp_fault::clear_all();
            assert_eq!(&read_back(&target).unwrap()[..], b"fine");
            drop(dir);
            let _ = fs::remove_dir_all(&parent);
        }

        #[test]
        fn injected_torn_read_corrupts_the_buffer() {
            let _g = lock();
            let parent = unique_parent("torn");
            let dir = SpillDir::create(&parent).unwrap();
            let target = dir.file("p0.cfpa");
            write_atomic(&target, |w| w.write_all(&[3u8; 100])).unwrap();
            cfp_fault::configure("data.spill.map", FaultMode::Always);
            let buf = read_back(&target).unwrap();
            assert_eq!(buf.iter().filter(|&&b| b != 3).count(), 1, "exactly one byte flipped");
            cfp_fault::clear_all();
            drop(dir);
            let _ = fs::remove_dir_all(&parent);
        }
    }
}
