//! The in-memory transaction database.
//!
//! Transactions are stored flattened: one items vector plus an offsets
//! vector, so a database of `n` transactions with `m` total item
//! occurrences costs `4m + 8(n+1)` bytes instead of `n` separate `Vec`
//! allocations. All algorithms read transactions as `&[Item]` slices.

use cfp_metrics::HeapSize;

/// An item identifier. The FIMI datasets use small integers; 32 bits cover
/// every dataset in the repository.
pub type Item = u32;

/// A flattened database of transactions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransactionDb {
    items: Vec<Item>,
    /// `offsets[i]..offsets[i+1]` delimits transaction `i`.
    offsets: Vec<usize>,
}

impl TransactionDb {
    /// An empty database.
    pub fn new() -> Self {
        TransactionDb { items: Vec::new(), offsets: vec![0] }
    }

    /// Pre-reserves space for `transactions` transactions holding
    /// `total_items` item occurrences.
    pub fn with_capacity(transactions: usize, total_items: usize) -> Self {
        let mut offsets = Vec::with_capacity(transactions + 1);
        offsets.push(0);
        TransactionDb { items: Vec::with_capacity(total_items), offsets }
    }

    /// Appends one transaction.
    pub fn push(&mut self, transaction: &[Item]) {
        self.items.extend_from_slice(transaction);
        self.offsets.push(self.items.len());
    }

    /// Appends one transaction from an iterator.
    pub fn push_iter(&mut self, transaction: impl IntoIterator<Item = Item>) {
        self.items.extend(transaction);
        self.offsets.push(self.items.len());
    }

    /// Removes all transactions but keeps the allocated capacity, so the
    /// database can be reused as an I/O buffer.
    pub fn clear(&mut self) {
        self.items.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the database holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Transaction `i` as a slice.
    pub fn get(&self, i: usize) -> &[Item] {
        &self.items[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates over all transactions.
    pub fn iter(&self) -> impl Iterator<Item = &[Item]> + '_ {
        self.offsets.windows(2).map(move |w| &self.items[w[0]..w[1]])
    }

    /// Total number of item occurrences across all transactions.
    pub fn total_items(&self) -> usize {
        self.items.len()
    }

    /// Average transaction cardinality.
    pub fn avg_transaction_len(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.total_items() as f64 / self.len() as f64
        }
    }

    /// Number of distinct items that occur at least once.
    pub fn distinct_items(&self) -> usize {
        let mut seen = vec![false; self.max_item().map_or(0, |m| m as usize + 1)];
        let mut n = 0;
        for &it in &self.items {
            if !seen[it as usize] {
                seen[it as usize] = true;
                n += 1;
            }
        }
        n
    }

    /// The largest item identifier present, if any.
    pub fn max_item(&self) -> Option<Item> {
        self.items.iter().copied().max()
    }

    /// Builds a database from nested vectors (test convenience).
    pub fn from_rows<R: AsRef<[Item]>>(rows: &[R]) -> Self {
        let total: usize = rows.iter().map(|r| r.as_ref().len()).sum();
        let mut db = TransactionDb::with_capacity(rows.len(), total);
        for r in rows {
            db.push(r.as_ref());
        }
        db
    }
}

impl HeapSize for TransactionDb {
    fn heap_bytes(&self) -> u64 {
        self.items.heap_bytes() + self.offsets.heap_bytes()
    }
}

impl TransactionDb {
    /// Exact bytes of the stored data (length-based, ignoring `Vec`
    /// growth slack) — what a pool-allocating implementation would use.
    pub fn data_bytes(&self) -> u64 {
        (self.items.len() * std::mem::size_of::<Item>()
            + self.offsets.len() * std::mem::size_of::<usize>()) as u64
    }
}

impl<'a> IntoIterator for &'a TransactionDb {
    type Item = &'a [Item];
    type IntoIter = Box<dyn Iterator<Item = &'a [Item]> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut db = TransactionDb::new();
        db.push(&[1, 2, 3]);
        db.push(&[]);
        db.push(&[7]);
        assert_eq!(db.len(), 3);
        assert_eq!(db.get(0), &[1, 2, 3]);
        assert_eq!(db.get(1), &[] as &[Item]);
        assert_eq!(db.get(2), &[7]);
    }

    #[test]
    fn iter_matches_get() {
        let db = TransactionDb::from_rows(&[vec![5, 6], vec![9], vec![1, 2, 3]]);
        let collected: Vec<&[Item]> = db.iter().collect();
        assert_eq!(collected, vec![&[5, 6][..], &[9][..], &[1, 2, 3][..]]);
    }

    #[test]
    fn statistics() {
        let db = TransactionDb::from_rows(&[vec![1, 2], vec![2, 3, 4], vec![4]]);
        assert_eq!(db.total_items(), 6);
        assert_eq!(db.avg_transaction_len(), 2.0);
        assert_eq!(db.distinct_items(), 4);
        assert_eq!(db.max_item(), Some(4));
    }

    #[test]
    fn empty_db_statistics_are_safe() {
        let db = TransactionDb::new();
        assert!(db.is_empty());
        assert_eq!(db.avg_transaction_len(), 0.0);
        assert_eq!(db.distinct_items(), 0);
        assert_eq!(db.max_item(), None);
    }

    #[test]
    fn heap_bytes_counts_both_vectors() {
        let db = TransactionDb::from_rows(&[vec![1u32, 2, 3]]);
        assert!(db.heap_bytes() >= (3 * 4 + 2 * 8) as u64);
    }
}
