//! Transaction data handling for the CFP-growth workspace.
//!
//! This crate supplies everything the mining algorithms consume:
//!
//! - [`TransactionDb`]: a flattened in-memory transaction database.
//! - [`fimi`]: reader/writer for the standard FIMI text format (one
//!   whitespace-separated transaction per line), plus the asynchronous
//!   double-buffered reader the paper uses for data input (§4.1).
//! - [`count`]: the first database scan — per-item support counting and the
//!   support-ordered recoding of items into dense identifiers (id 0 = most
//!   frequent), which makes `Δitem ≥ 1` hold along every tree path.
//! - [`quest`]: a from-scratch implementation of the IBM Quest synthetic
//!   transaction generator used for the paper's Quest1/Quest2 datasets.
//! - [`profiles`]: generator configurations mimicking the FIMI real-world
//!   datasets (retail, connect, kosarak, accidents, webdocs) at laptop
//!   scale, with fixed seeds for reproducibility.
//! - [`miner`]: the [`miner::Miner`] trait all algorithms implement
//!   and the [`miner::ItemsetSink`] output abstraction.
//! - [`partition`]: item-range projections of a database for exact
//!   partitioned fallback mining under a memory budget (Grahne & Zhu).
//! - [`spill`]: crash-safe spill files (atomic write-fsync-rename, RAII
//!   directory cleanup, bounded retries, I/O failpoints) backing the
//!   supervisor's out-of-core rung.
//! - [`lock`]: PID lock files with stale-lock detection, guarding shared
//!   spill/checkpoint directories against concurrent runs.
//! - [`rng`]: a small deterministic PRNG (xoshiro256++) replacing the
//!   `rand` crate, so the workspace builds without network access.

#![warn(missing_docs)]

pub mod count;
pub mod double_buffer;
pub mod fimi;
pub mod lock;
pub mod miner;
pub mod partition;
pub mod profiles;
pub mod quest;
pub mod rng;
pub mod spill;
pub mod types;
pub mod zipf;

pub use cfp_fault::CfpError;
pub use count::ItemRecoder;
pub use fimi::{ParsePolicy, ParseStats};
pub use lock::DirLock;
pub use miner::{ItemsetSink, MineProgress, MineStats, Miner, OutputMode};
pub use types::{Item, TransactionDb};
