//! The IBM Quest synthetic transaction generator.
//!
//! The paper's performance experiments use two datasets "generated with the
//! IBM Quest Dataset Generator" (§4.1, Table 3). The original generator is
//! not redistributable, so this module re-implements the algorithm from the
//! Apriori paper that introduced it (Agrawal & Srikant, VLDB'94):
//!
//! 1. A table of `npats` *maximal potentially large itemsets* is drawn.
//!    Pattern sizes are Poisson-distributed around `avg_pattern_len`; each
//!    pattern reuses a random prefix fraction of its predecessor's items
//!    (exponentially distributed with mean `correlation`) and fills the
//!    rest with uniform random items. Patterns carry exponentially
//!    distributed weights (normalized to sum 1) and a per-pattern
//!    *corruption level* drawn from a clamped normal (mean 0.5, sd 0.1).
//! 2. Each transaction draws its size from a Poisson around
//!    `avg_transaction_len`, then repeatedly picks a weighted random
//!    pattern, drops items from it while a coin toss stays below the
//!    corruption level, and inserts the remainder. A pattern that would
//!    overflow the transaction is kept anyway in half the cases and
//!    discarded otherwise, ending the transaction either way.
//!
//! The output distribution has the properties the paper's evaluation
//! depends on: long shared prefixes (prefix-tree compressible), a skewed
//! support distribution, and tunable density via the parameters.

use crate::rng::{Rng, StdRng};
use crate::types::{Item, TransactionDb};

/// Parameters of the Quest generator.
#[derive(Clone, Debug)]
pub struct QuestConfig {
    /// Number of transactions (`|D|`).
    pub num_transactions: usize,
    /// Average transaction cardinality (`|T|`).
    pub avg_transaction_len: f64,
    /// Average cardinality of the potential itemsets (`|I|`).
    pub avg_pattern_len: f64,
    /// Number of potential itemsets (`|L|`).
    pub num_patterns: usize,
    /// Number of distinct items (`N`).
    pub num_items: usize,
    /// Mean of the exponentially distributed fraction of items a pattern
    /// shares with its predecessor.
    pub correlation: f64,
    /// RNG seed; generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for QuestConfig {
    fn default() -> Self {
        QuestConfig {
            num_transactions: 10_000,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            num_patterns: 2_000,
            num_items: 1_000,
            correlation: 0.25,
            seed: 0xC0FFEE,
        }
    }
}

struct Pattern {
    items: Vec<Item>,
    corruption: f64,
}

/// Draws from Poisson(`mean`) via Knuth's method (fine for means ≤ ~60).
fn poisson(rng: &mut impl Rng, mean: f64) -> usize {
    debug_assert!(mean > 0.0 && mean < 100.0);
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen();
    let mut n = 0;
    while product > limit {
        product *= rng.gen::<f64>();
        n += 1;
    }
    n
}

/// Draws from Exp(`mean`).
fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

/// Draws from Normal(`mean`, `sd`) via Box–Muller.
fn normal(rng: &mut impl Rng, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    mean + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generates a database according to `config`.
pub fn generate(config: &QuestConfig) -> TransactionDb {
    assert!(config.num_items > 0, "need at least one item");
    assert!(config.num_patterns > 0, "need at least one pattern");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Phase 1: the table of potential itemsets.
    let mut patterns: Vec<Pattern> = Vec::with_capacity(config.num_patterns);
    let mut weights: Vec<f64> = Vec::with_capacity(config.num_patterns);
    for p in 0..config.num_patterns {
        let len = poisson(&mut rng, (config.avg_pattern_len - 1.0).max(0.1)) + 1;
        let len = len.min(config.num_items);
        let mut items: Vec<Item> = Vec::with_capacity(len);
        if p > 0 {
            let frac = exponential(&mut rng, config.correlation).min(1.0);
            let reuse = ((len as f64 * frac).round() as usize).min(len);
            let prev = &patterns[p - 1].items;
            for _ in 0..reuse.min(prev.len()) {
                let pick = prev[rng.gen_range(0..prev.len())];
                if !items.contains(&pick) {
                    items.push(pick);
                }
            }
        }
        while items.len() < len {
            let pick = rng.gen_range(0..config.num_items) as Item;
            if !items.contains(&pick) {
                items.push(pick);
            }
        }
        let corruption = normal(&mut rng, 0.5, 0.1).clamp(0.0, 1.0);
        patterns.push(Pattern { items, corruption });
        weights.push(exponential(&mut rng, 1.0));
    }
    // Cumulative weights for O(log n) weighted pattern selection.
    let mut cum = 0.0;
    let cum_weights: Vec<f64> = weights
        .iter()
        .map(|w| {
            cum += w;
            cum
        })
        .collect();
    let total_weight = cum;

    // Phase 2: the transactions.
    let mut db = TransactionDb::with_capacity(
        config.num_transactions,
        (config.num_transactions as f64 * config.avg_transaction_len) as usize,
    );
    let mut txn: Vec<Item> = Vec::new();
    let mut corrupted: Vec<Item> = Vec::new();
    for _ in 0..config.num_transactions {
        let size = poisson(&mut rng, config.avg_transaction_len).max(1);
        txn.clear();
        while txn.len() < size {
            let u: f64 = rng.gen::<f64>() * total_weight;
            let idx = cum_weights.partition_point(|&c| c < u).min(patterns.len() - 1);
            let pat = &patterns[idx];
            corrupted.clear();
            corrupted.extend_from_slice(&pat.items);
            while !corrupted.is_empty() && rng.gen::<f64>() < pat.corruption {
                let drop = rng.gen_range(0..corrupted.len());
                corrupted.swap_remove(drop);
            }
            if corrupted.is_empty() {
                continue;
            }
            let overflows = txn.len() + corrupted.len() > size;
            if overflows && rng.gen::<bool>() {
                break; // discard the pattern and end the transaction
            }
            txn.extend_from_slice(&corrupted);
            if overflows {
                break;
            }
        }
        txn.sort_unstable();
        txn.dedup();
        db.push(&txn);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> QuestConfig {
        QuestConfig {
            num_transactions: 2_000,
            avg_transaction_len: 8.0,
            avg_pattern_len: 3.0,
            num_patterns: 100,
            num_items: 200,
            correlation: 0.25,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = small_config();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_config());
        let b = generate(&QuestConfig { seed: 8, ..small_config() });
        assert_ne!(a, b);
    }

    #[test]
    fn respects_transaction_count_and_item_universe() {
        let cfg = small_config();
        let db = generate(&cfg);
        assert_eq!(db.len(), cfg.num_transactions);
        assert!(db.max_item().unwrap() < cfg.num_items as Item);
    }

    #[test]
    fn average_length_lands_near_target() {
        let db = generate(&small_config());
        let avg = db.avg_transaction_len();
        assert!(
            (4.0..=12.0).contains(&avg),
            "avg len {avg} far from target 8 (corruption/dedup shift it down)"
        );
    }

    #[test]
    fn transactions_are_sorted_and_deduped() {
        let db = generate(&small_config());
        for t in db.iter() {
            assert!(t.windows(2).all(|w| w[0] < w[1]), "not strictly sorted: {t:?}");
        }
    }

    #[test]
    fn patterns_induce_skewed_supports() {
        // The weighted pattern table must make some items far more
        // frequent than the median item.
        let db = generate(&small_config());
        let counts = crate::count::count_supports(&db);
        let mut sorted: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let max = *sorted.last().unwrap();
        assert!(max >= median * 4, "max {max} vs median {median}");
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: usize = (0..n).map(|_| poisson(&mut rng, 12.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 12.0).abs() < 0.3, "poisson mean {mean}");
    }

    #[test]
    fn normal_clamps_into_unit_interval_when_used() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let c = normal(&mut rng, 0.5, 0.1).clamp(0.0, 1.0);
            assert!((0.0..=1.0).contains(&c));
        }
    }
}
