//! The FIMI text format: one transaction per line, items as ASCII decimal
//! integers separated by spaces. All datasets of the FIMI repository use
//! this format, and so do our generated datasets.

use crate::types::{Item, TransactionDb};
use cfp_fault::CfpError;
use cfp_trace::counters as tc;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// How a reader treats malformed input lines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParsePolicy {
    /// Reject the stream at the first malformed token, reporting the
    /// 1-based line number (the default).
    #[default]
    Strict,
    /// Discard each malformed line wholesale and keep reading. The whole
    /// line is dropped — keeping the parseable prefix of a corrupt line
    /// would silently skew supports — and the damage is recorded in
    /// [`ParseStats`] (and, under tracing, the `data.skipped_lines` /
    /// `data.bad_tokens` counters).
    Skip,
}

/// What a policy-aware read saw.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Total input lines read (including skipped ones).
    pub lines: u64,
    /// Lines discarded under [`ParsePolicy::Skip`].
    pub skipped_lines: u64,
    /// Malformed tokens across all skipped lines.
    pub bad_tokens: u64,
}

/// Parses one FIMI line into items, appending to `out`.
///
/// Returns an error on any token that is not a `u32`. Empty lines are valid
/// empty transactions.
pub fn parse_line(line: &str, out: &mut Vec<Item>) -> io::Result<()> {
    for tok in line.split_ascii_whitespace() {
        let item: Item = tok.parse().map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad item {tok:?}: {e}"))
        })?;
        out.push(item);
    }
    Ok(())
}

/// Parses one FIMI line under `policy`, appending valid items to `out`.
///
/// Returns `Ok(true)` when the line is a transaction to keep and
/// `Ok(false)` when [`ParsePolicy::Skip`] discarded it (with `out`
/// restored and `stats` updated). Under [`ParsePolicy::Strict`] the first
/// bad token aborts with [`CfpError::Parse`] citing `line_no` (1-based).
pub fn parse_line_with_policy(
    line: &str,
    line_no: u64,
    policy: ParsePolicy,
    out: &mut Vec<Item>,
    stats: &mut ParseStats,
) -> Result<bool, CfpError> {
    let start = out.len();
    let mut bad = 0u64;
    for tok in line.split_ascii_whitespace() {
        match tok.parse::<Item>() {
            Ok(item) => out.push(item),
            Err(e) => match policy {
                ParsePolicy::Strict => {
                    return Err(CfpError::Parse {
                        line: line_no,
                        message: format!("bad item {tok:?}: {e}"),
                    });
                }
                ParsePolicy::Skip => bad += 1,
            },
        }
    }
    if bad > 0 {
        out.truncate(start);
        stats.skipped_lines += 1;
        stats.bad_tokens += bad;
        if cfp_trace::enabled() {
            tc::DATA_SKIPPED_LINES.inc();
            tc::DATA_BAD_TOKENS.add(bad);
        }
        return Ok(false);
    }
    Ok(true)
}

/// Reads a whole FIMI stream into a [`TransactionDb`].
pub fn read(reader: impl Read) -> io::Result<TransactionDb> {
    read_with_policy(reader, ParsePolicy::Strict).map(|(db, _)| db).map_err(io::Error::from)
}

/// Reads a whole FIMI stream under the given [`ParsePolicy`].
pub fn read_with_policy(
    reader: impl Read,
    policy: ParsePolicy,
) -> Result<(TransactionDb, ParseStats), CfpError> {
    let mut db = TransactionDb::new();
    let mut stats = ParseStats::default();
    let mut buf = BufReader::new(reader);
    let mut line = String::new();
    let mut items = Vec::new();
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            break;
        }
        stats.lines += 1;
        items.clear();
        if parse_line_with_policy(&line, stats.lines, policy, &mut items, &mut stats)? {
            db.push(&items);
        }
    }
    Ok((db, stats))
}

/// Reads a FIMI file from disk.
pub fn read_file(path: impl AsRef<Path>) -> io::Result<TransactionDb> {
    read(std::fs::File::open(path)?)
}

/// Reads a FIMI file from disk under the given [`ParsePolicy`].
pub fn read_file_with_policy(
    path: impl AsRef<Path>,
    policy: ParsePolicy,
) -> Result<(TransactionDb, ParseStats), CfpError> {
    read_with_policy(std::fs::File::open(path)?, policy)
}

/// Writes a database in FIMI format.
pub fn write(db: &TransactionDb, writer: impl Write) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let mut line = String::new();
    for t in db.iter() {
        line.clear();
        for (i, item) in t.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&item.to_string());
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    w.flush()
}

/// Writes a database to a FIMI file on disk.
pub fn write_file(db: &TransactionDb, path: impl AsRef<Path>) -> io::Result<()> {
    write(db, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Property tests require the optional `proptest` dependency,
    /// which offline builds cannot fetch. Enable with
    /// `--features proptest` after restoring the dev-dependency
    /// (see README § Offline builds).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The parser never panics: arbitrary bytes either parse or
            /// produce an error.
            #[test]
            fn prop_reader_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
                let _ = read(bytes.as_slice());
            }

            /// Any database round-trips exactly through the text format.
            #[test]
            fn prop_write_read_round_trip(
                rows in proptest::collection::vec(
                    proptest::collection::vec(0u32..100_000, 0..12),
                    0..20
                )
            ) {
                let db = TransactionDb::from_rows(&rows);
                let mut buf = Vec::new();
                write(&db, &mut buf).unwrap();
                prop_assert_eq!(read(buf.as_slice()).unwrap(), db);
            }
        }
    }

    #[test]
    fn parse_basic_line() {
        let mut out = Vec::new();
        parse_line("1 25 7\n", &mut out).unwrap();
        assert_eq!(out, vec![1, 25, 7]);
    }

    #[test]
    fn parse_tolerates_extra_whitespace() {
        let mut out = Vec::new();
        parse_line("  3\t 4   5 ", &mut out).unwrap();
        assert_eq!(out, vec![3, 4, 5]);
    }

    #[test]
    fn parse_rejects_garbage() {
        let mut out = Vec::new();
        assert!(parse_line("1 x 3", &mut out).is_err());
        assert!(parse_line("-4", &mut out).is_err());
    }

    #[test]
    fn strict_rejects_item_overflow_citing_the_line() {
        // 4294967296 = 2^32 overflows the u32 item type.
        let text = "1 2\n3 4294967296 4\n";
        let err = read_with_policy(text.as_bytes(), ParsePolicy::Strict).unwrap_err();
        match err {
            CfpError::Parse { line, ref message } => {
                assert_eq!(line, 2);
                assert!(message.contains("4294967296"), "{message}");
            }
            ref other => panic!("{other:?}"),
        }
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn strict_rejects_negative_tokens_citing_the_line() {
        let text = "7\n8\n9\n-4 1\n";
        match read_with_policy(text.as_bytes(), ParsePolicy::Strict).unwrap_err() {
            CfpError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("-4"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn both_policies_tolerate_crlf_trailing_whitespace_and_empty_lines() {
        let text = "1 2\r\n  3 4  \t\n\n5\r\n";
        for policy in [ParsePolicy::Strict, ParsePolicy::Skip] {
            let (db, stats) = read_with_policy(text.as_bytes(), policy).unwrap();
            assert_eq!(db.len(), 4, "{policy:?}");
            assert_eq!(db.get(0), &[1, 2]);
            assert_eq!(db.get(1), &[3, 4]);
            assert_eq!(db.get(2), &[] as &[Item]);
            assert_eq!(db.get(3), &[5]);
            assert_eq!(stats.lines, 4);
            assert_eq!(stats.skipped_lines, 0);
            assert_eq!(stats.bad_tokens, 0);
        }
    }

    #[test]
    fn skip_policy_drops_whole_lines_and_counts_damage() {
        let text = "1 2\n3 x -9 4\n4294967296\n5 6\n";
        let (db, stats) = read_with_policy(text.as_bytes(), ParsePolicy::Skip).unwrap();
        // The partially-parseable line 2 is dropped wholesale: keeping
        // "3 4" would silently skew supports.
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(0), &[1, 2]);
        assert_eq!(db.get(1), &[5, 6]);
        assert_eq!(stats.lines, 4);
        assert_eq!(stats.skipped_lines, 2);
        assert_eq!(stats.bad_tokens, 3); // "x", "-9", "4294967296"
    }

    #[test]
    fn skip_policy_accounts_damage_across_mixed_content() {
        // A file mixing valid transactions, blank lines (valid empty
        // transactions), whitespace-only lines, and malformed lines of
        // one and several bad tokens.
        let text = "1 2 3\n\nx y\n4 5\n   \t\n-1\n6\n";
        let (db, stats) = read_with_policy(text.as_bytes(), ParsePolicy::Skip).unwrap();
        assert_eq!(db.len(), 5, "blank lines are kept as empty transactions");
        assert_eq!(db.get(0), &[1, 2, 3]);
        assert_eq!(db.get(1), &[] as &[Item]);
        assert_eq!(db.get(2), &[4, 5]);
        assert_eq!(db.get(3), &[] as &[Item]);
        assert_eq!(db.get(4), &[6]);
        assert_eq!(stats.lines, 7, "every line is counted, skipped or not");
        assert_eq!(stats.skipped_lines, 2, "\"x y\" and \"-1\"");
        assert_eq!(stats.bad_tokens, 3, "\"x\", \"y\", \"-1\"");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn skip_policy_counters_match_parse_stats_deltas() {
        use cfp_trace::counters as tc;
        let before_lines = tc::DATA_SKIPPED_LINES.get();
        let before_tokens = tc::DATA_BAD_TOKENS.get();
        cfp_trace::set_enabled(true);
        let (_, stats) =
            read_with_policy("a\n1\nb c\n\n2 3\n".as_bytes(), ParsePolicy::Skip).unwrap();
        cfp_trace::set_enabled(false);
        assert_eq!(stats.skipped_lines, 2);
        assert_eq!(stats.bad_tokens, 3);
        // Other trace-gated tests may run concurrently in this process,
        // so assert the counters advanced by at least our own damage.
        assert!(tc::DATA_SKIPPED_LINES.get() >= before_lines + 2);
        assert!(tc::DATA_BAD_TOKENS.get() >= before_tokens + 3);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn skip_policy_records_trace_counters() {
        use cfp_trace::counters as tc;
        let before_lines = tc::DATA_SKIPPED_LINES.get();
        let before_tokens = tc::DATA_BAD_TOKENS.get();
        cfp_trace::set_enabled(true);
        let (_, stats) = read_with_policy("ok 1\n2 3\n".as_bytes(), ParsePolicy::Skip).unwrap();
        cfp_trace::set_enabled(false);
        assert_eq!(stats.skipped_lines, 1);
        assert!(tc::DATA_SKIPPED_LINES.get() > before_lines);
        assert!(tc::DATA_BAD_TOKENS.get() > before_tokens);
    }

    #[test]
    fn read_handles_empty_lines_and_missing_trailing_newline() {
        let text = "1 2 3\n\n4 5";
        let db = read(text.as_bytes()).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.get(0), &[1, 2, 3]);
        assert_eq!(db.get(1), &[] as &[Item]);
        assert_eq!(db.get(2), &[4, 5]);
    }

    #[test]
    fn write_read_round_trip() {
        let db = TransactionDb::from_rows(&[vec![10, 20, 30], vec![7], vec![]]);
        let mut buf = Vec::new();
        write(&db, &mut buf).unwrap();
        let back = read(buf.as_slice()).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("cfp_fimi_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.dat");
        let db = TransactionDb::from_rows(&[vec![1, 2], vec![3]]);
        write_file(&db, &path).unwrap();
        assert_eq!(read_file(&path).unwrap(), db);
        std::fs::remove_file(&path).ok();
    }
}
