//! The FIMI text format: one transaction per line, items as ASCII decimal
//! integers separated by spaces. All datasets of the FIMI repository use
//! this format, and so do our generated datasets.

use crate::types::{Item, TransactionDb};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses one FIMI line into items, appending to `out`.
///
/// Returns an error on any token that is not a `u32`. Empty lines are valid
/// empty transactions.
pub fn parse_line(line: &str, out: &mut Vec<Item>) -> io::Result<()> {
    for tok in line.split_ascii_whitespace() {
        let item: Item = tok.parse().map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad item {tok:?}: {e}"))
        })?;
        out.push(item);
    }
    Ok(())
}

/// Reads a whole FIMI stream into a [`TransactionDb`].
pub fn read(reader: impl Read) -> io::Result<TransactionDb> {
    let mut db = TransactionDb::new();
    let mut buf = BufReader::new(reader);
    let mut line = String::new();
    let mut items = Vec::new();
    while buf.read_line(&mut line)? != 0 {
        items.clear();
        parse_line(&line, &mut items)?;
        db.push(&items);
        line.clear();
    }
    Ok(db)
}

/// Reads a FIMI file from disk.
pub fn read_file(path: impl AsRef<Path>) -> io::Result<TransactionDb> {
    read(std::fs::File::open(path)?)
}

/// Writes a database in FIMI format.
pub fn write(db: &TransactionDb, writer: impl Write) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let mut line = String::new();
    for t in db.iter() {
        line.clear();
        for (i, item) in t.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&item.to_string());
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    w.flush()
}

/// Writes a database to a FIMI file on disk.
pub fn write_file(db: &TransactionDb, path: impl AsRef<Path>) -> io::Result<()> {
    write(db, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Property tests require the optional `proptest` dependency,
    /// which offline builds cannot fetch. Enable with
    /// `--features proptest` after restoring the dev-dependency
    /// (see README § Offline builds).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The parser never panics: arbitrary bytes either parse or
            /// produce an error.
            #[test]
            fn prop_reader_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
                let _ = read(bytes.as_slice());
            }

            /// Any database round-trips exactly through the text format.
            #[test]
            fn prop_write_read_round_trip(
                rows in proptest::collection::vec(
                    proptest::collection::vec(0u32..100_000, 0..12),
                    0..20
                )
            ) {
                let db = TransactionDb::from_rows(&rows);
                let mut buf = Vec::new();
                write(&db, &mut buf).unwrap();
                prop_assert_eq!(read(buf.as_slice()).unwrap(), db);
            }
        }
    }

    #[test]
    fn parse_basic_line() {
        let mut out = Vec::new();
        parse_line("1 25 7\n", &mut out).unwrap();
        assert_eq!(out, vec![1, 25, 7]);
    }

    #[test]
    fn parse_tolerates_extra_whitespace() {
        let mut out = Vec::new();
        parse_line("  3\t 4   5 ", &mut out).unwrap();
        assert_eq!(out, vec![3, 4, 5]);
    }

    #[test]
    fn parse_rejects_garbage() {
        let mut out = Vec::new();
        assert!(parse_line("1 x 3", &mut out).is_err());
        assert!(parse_line("-4", &mut out).is_err());
    }

    #[test]
    fn read_handles_empty_lines_and_missing_trailing_newline() {
        let text = "1 2 3\n\n4 5";
        let db = read(text.as_bytes()).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.get(0), &[1, 2, 3]);
        assert_eq!(db.get(1), &[] as &[Item]);
        assert_eq!(db.get(2), &[4, 5]);
    }

    #[test]
    fn write_read_round_trip() {
        let db = TransactionDb::from_rows(&[vec![10, 20, 30], vec![7], vec![]]);
        let mut buf = Vec::new();
        write(&db, &mut buf).unwrap();
        let back = read(buf.as_slice()).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("cfp_fimi_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.dat");
        let db = TransactionDb::from_rows(&[vec![1, 2], vec![3]]);
        write_file(&db, &path).unwrap();
        assert_eq!(read_file(&path).unwrap(), db);
        std::fs::remove_file(&path).ok();
    }
}
