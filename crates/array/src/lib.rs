//! The CFP-array: a compressed array representation of the FP-tree for the
//! mine phase of CFP-growth (§3.4–§3.5 of the paper).
//!
//! The mine phase needs two access paths the build phase doesn't: sideways
//! traversal of all nodes of one item (the FP-tree's nodelinks) and upward
//! traversal to the root (parent pointers). The CFP-array provides both
//! without storing either pointer:
//!
//! - Nodes are laid out **clustered by item**: all nodes of item `i` form
//!   one consecutive *subarray*, and a small item index maps each item to
//!   its subarray's starting byte. Sideways traversal is a sequential scan
//!   of the subarray — the `nodelink` field is gone.
//! - Each node is the triple `(Δitem, Δpos, count)`, variable-byte
//!   encoded in that order. `Δitem` is the delta to the parent's item;
//!   `Δpos` is the delta between the node's and its parent's *local
//!   positions* (byte offsets within their subarrays), zigzag-encoded
//!   because the DFS layout cannot guarantee a sign. Upward traversal
//!   decodes two small varints and jumps — the `parent` pointer is gone
//!   too.
//! - A node without a parent (child of the root) stores `Δitem = item + 1`
//!   (the virtual root sits at item −1), which the reader recognizes
//!   because real parents would make `Δitem ≤ item`; its `Δpos` is 0.
//!
//! `count` here is the classic cumulative count, reconstructed from the
//! CFP-tree's pcounts during conversion: the mine phase has no access to a
//! node's children, so partial counts would be unusable (§3.4).
//!
//! [`convert`] implements the two-pass conversion of §3.5: the first DFS
//! computes per-item subarray sizes and node positions, the second writes
//! every triple directly to its final location, with per-subarray
//! sequential access patterns.
//!
//! ```
//! use cfp_array::convert;
//! use cfp_tree::CfpTree;
//!
//! let mut tree = CfpTree::new(3);
//! tree.insert(&[0, 1, 2], 5);
//! tree.insert(&[1, 2], 4);
//! let array = convert(&tree);
//!
//! // Sideways traversal without nodelinks: item 2 has two nodes.
//! assert_eq!(array.subarray_len(2), 2);
//! assert_eq!(array.item_support(2), 9);
//! // Upward traversal without parent pointers.
//! let node = array.subarray(2).next().unwrap();
//! let mut path = Vec::new();
//! array.prefix_path(2, &node, &mut path);
//! assert!(path == vec![0, 1] || path == vec![1]);
//! ```

#![warn(missing_docs)]

pub mod serialize;
pub mod stats;

use cfp_encoding::{varint, zigzag};
use cfp_metrics::HeapSize;
use cfp_tree::{CfpTree, DfsEvent, DfsIter};
use std::sync::Arc;

/// Backing storage of the encoded triples: owned by the array (the usual
/// case), or a zero-copy window into a shared buffer — a spill file read
/// into memory once and mined in place (see [`serialize`] and
/// [`CfpArray::from_bytes`](CfpArray::from_bytes)).
#[derive(Clone, Debug)]
enum Bytes {
    Owned(Vec<u8>),
    Shared { buf: Arc<[u8]>, start: usize, len: usize },
}

impl Bytes {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Owned(v) => v,
            Bytes::Shared { buf, start, len } => &buf[*start..*start + *len],
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::Owned(Vec::new())
    }
}

/// A decoded CFP-array node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeView {
    /// Local byte offset of this node within its subarray.
    pub local: u64,
    /// Delta to the parent item (`item + 1` for root children).
    pub ditem: u32,
    /// Delta between this node's and its parent's local positions.
    pub dpos: i64,
    /// Cumulative count (classic FP-tree count).
    pub count: u64,
}

/// The compressed mine-phase representation of an FP-tree.
#[derive(Clone, Debug, Default)]
pub struct CfpArray {
    data: Bytes,
    /// `starts[i]` = first byte of item `i`'s subarray; `starts[n]` = len.
    starts: Vec<u64>,
    /// Per-item support (sum of counts in the subarray).
    supports: Vec<u64>,
    num_nodes: u64,
}

impl CfpArray {
    /// Number of items (subarrays).
    pub fn num_items(&self) -> usize {
        self.supports.len()
    }

    /// Number of nodes across all subarrays.
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Support of `item` (sum of its nodes' counts).
    pub fn item_support(&self, item: u32) -> u64 {
        self.supports[item as usize]
    }

    /// Total encoded bytes of all triples.
    pub fn data_bytes(&self) -> u64 {
        self.data.as_slice().len() as u64
    }

    /// Average encoded bytes per node (Figure 6(b)).
    pub fn avg_node_bytes(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.data_bytes() as f64 / self.num_nodes as f64
        }
    }

    /// Whether the triples live in a shared buffer (a loaded spill file)
    /// rather than an owned `Vec`. Shared bytes are attributed by the
    /// spill layer, not by this array's [`HeapSize`].
    pub fn is_shared(&self) -> bool {
        matches!(self.data, Bytes::Shared { .. })
    }

    /// Whether the array holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.num_nodes == 0
    }

    /// The subarray byte boundaries (`starts[i]..starts[i+1]` is item
    /// `i`'s range; length `num_items + 1`).
    pub fn starts(&self) -> &[u64] {
        &self.starts
    }

    /// The raw encoded triple bytes.
    pub fn data(&self) -> &[u8] {
        self.data.as_slice()
    }

    /// Reassembles an array from its serialized parts (see
    /// [`serialize`]); invariants are the writer's responsibility.
    pub(crate) fn from_parts(
        data: Bytes,
        starts: Vec<u64>,
        supports: Vec<u64>,
        num_nodes: u64,
    ) -> Self {
        debug_assert_eq!(starts.len(), supports.len() + 1);
        debug_assert_eq!(*starts.last().unwrap_or(&0), data.as_slice().len() as u64);
        CfpArray { data, starts, supports, num_nodes }
    }

    /// Number of nodes of one item's subarray (counted by scanning).
    pub fn subarray_len(&self, item: u32) -> usize {
        self.subarray(item).count()
    }

    /// Encoded bytes of one item's subarray, straight from the `starts`
    /// boundaries — an O(1) proxy for how expensive mining the item's
    /// conditional pattern base will be (more encoded nodes ⇒ more prefix
    /// paths to walk). The dynamic mine-phase scheduler sorts item tasks
    /// heaviest-first by this estimate.
    pub fn subarray_bytes(&self, item: u32) -> u64 {
        let i = item as usize;
        self.starts[i + 1] - self.starts[i]
    }

    /// Iterates the nodes of `item`'s subarray in layout order (the
    /// sideways traversal replacing nodelinks).
    pub fn subarray(&self, item: u32) -> SubarrayIter<'_> {
        let i = item as usize;
        SubarrayIter {
            data: &self.data.as_slice()[..self.starts[i + 1] as usize],
            at: self.starts[i] as usize,
            base: self.starts[i] as usize,
        }
    }

    /// Decodes the node of `item` at local byte offset `local`.
    pub fn node_at(&self, item: u32, local: u64) -> NodeView {
        let at = (self.starts[item as usize] + local) as usize;
        let (view, _) = decode_triple(self.data.as_slice(), at, local);
        view
    }

    /// The parent of a node, or `None` for children of the root.
    pub fn parent_of(&self, item: u32, node: &NodeView) -> Option<(u32, u64)> {
        if node.ditem == item + 1 {
            return None;
        }
        debug_assert!(node.ditem >= 1 && node.ditem <= item);
        let parent_item = item - node.ditem;
        let parent_local = (node.local as i64 - node.dpos) as u64;
        Some((parent_item, parent_local))
    }

    /// Collects the items on the path from the node's parent up to the
    /// root, in ascending item order (the conditional pattern base of the
    /// node, excluding the node itself).
    pub fn prefix_path(&self, item: u32, node: &NodeView, out: &mut Vec<u32>) {
        out.clear();
        let mut cur_item = item;
        let mut cur = *node;
        while let Some((pi, pl)) = self.parent_of(cur_item, &cur) {
            out.push(pi);
            cur = self.node_at(pi, pl);
            cur_item = pi;
        }
        out.reverse();
    }
}

impl HeapSize for CfpArray {
    fn heap_bytes(&self) -> u64 {
        // Shared bytes belong to the spill file's buffer, which the spill
        // layer attributes separately (once per file, not per view); only
        // owned storage counts here.
        let data = match &self.data {
            Bytes::Owned(v) => v.heap_bytes(),
            Bytes::Shared { .. } => 0,
        };
        data + self.starts.heap_bytes() + self.supports.heap_bytes()
    }
}

/// Iterator over one subarray.
pub struct SubarrayIter<'a> {
    data: &'a [u8],
    at: usize,
    base: usize,
}

impl Iterator for SubarrayIter<'_> {
    type Item = NodeView;

    fn next(&mut self) -> Option<NodeView> {
        if self.at >= self.data.len() {
            return None;
        }
        let local = (self.at - self.base) as u64;
        let (view, next) = decode_triple(self.data, self.at, local);
        self.at = next;
        Some(view)
    }
}

#[inline]
fn decode_triple(data: &[u8], at: usize, local: u64) -> (NodeView, usize) {
    let (ditem, n1) = varint::read_u64_unchecked(&data[at..]);
    let (zz, n2) = varint::read_u64_unchecked(&data[at + n1..]);
    let (count, n3) = varint::read_u64_unchecked(&data[at + n1 + n2..]);
    (NodeView { local, ditem: ditem as u32, dpos: zigzag::decode(zz), count }, at + n1 + n2 + n3)
}

/// Conversion frame: one open node on the DFS path.
struct Frame {
    item: i64,
    local: u64,
    ditem: u32,
    /// Accumulates pcount + finished children counts.
    acc: u64,
    parent_item: i64,
    parent_local: u64,
}

/// Converts a CFP-tree into a CFP-array (two DFS passes, §3.5).
pub fn convert(tree: &CfpTree) -> CfpArray {
    let traced = cfp_trace::enabled();
    let started = traced.then(std::time::Instant::now);
    let n = tree.num_items();
    // Pass 1: per-item sizes, node counts and supports.
    let mut sizes = vec![0u64; n];
    let mut supports = vec![0u64; n];
    let mut num_nodes = 0u64;
    walk(tree, |item, _local, ditem, dpos, count, size| {
        sizes[item as usize] += size as u64;
        supports[item as usize] += count;
        num_nodes += 1;
        let _ = (ditem, dpos);
    });

    let mut starts = Vec::with_capacity(n + 1);
    let mut acc = 0u64;
    for &s in &sizes {
        starts.push(acc);
        acc += s;
    }
    starts.push(acc);

    // Pass 2: write each triple to its final position.
    let mut data = vec![0u8; acc as usize];
    walk(tree, |item, local, ditem, dpos, count, _size| {
        let mut at = (starts[item as usize] + local) as usize;
        at += varint::write_u64_into(&mut data[at..], ditem as u64);
        at += varint::write_u64_into(&mut data[at..], zigzag::encode(dpos));
        varint::write_u64_into(&mut data[at..], count);
    });

    if let Some(started) = started {
        use cfp_trace::counters as tc;
        tc::ARRAY_CONVERSIONS.inc();
        tc::ARRAY_NODES_CONVERTED.add(num_nodes);
        tc::ARRAY_BYTES_WRITTEN.add(data.len() as u64);
        tc::ARRAY_CONVERT_NANOS.add(started.elapsed().as_nanos() as u64);
    }
    CfpArray { data: Bytes::Owned(data), starts, supports, num_nodes }
}

/// Drives one DFS pass, invoking `f(item, local, ditem, dpos, count, size)`
/// for every logical node at its post-order position (when its count is
/// known). Local positions are assigned pre-order and are identical across
/// passes because the traversal is deterministic.
fn walk(tree: &CfpTree, mut f: impl FnMut(u32, u64, u32, i64, u64, usize)) {
    let n = tree.num_items();
    let mut counters = vec![0u64; n];
    let mut stack: Vec<Frame> = Vec::new();
    for ev in DfsIter::new(tree) {
        match ev {
            DfsEvent::Enter { ditem, pcount } => {
                let (parent_item, parent_local) = match stack.last() {
                    Some(top) => (top.item, top.local),
                    None => (-1, 0),
                };
                let item = parent_item + ditem as i64;
                debug_assert!((0..n as i64).contains(&item), "item out of range");
                stack.push(Frame {
                    item,
                    local: counters[item as usize],
                    ditem,
                    acc: pcount as u64,
                    parent_item,
                    parent_local,
                });
            }
            DfsEvent::Leave => {
                let fr = stack.pop().expect("balanced DFS events");
                if let Some(top) = stack.last_mut() {
                    top.acc += fr.acc;
                }
                let dpos =
                    if fr.parent_item < 0 { 0 } else { fr.local as i64 - fr.parent_local as i64 };
                let size = varint::encoded_len(fr.ditem as u64)
                    + varint::encoded_len(zigzag::encode(dpos))
                    + varint::encoded_len(fr.acc);
                f(fr.item as u32, fr.local, fr.ditem, dpos, fr.acc, size);
                counters[fr.item as usize] += size as u64;
            }
        }
    }
    debug_assert!(stack.is_empty());
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_data::{ItemRecoder, TransactionDb};
    use cfp_fptree::FpTree;

    fn array_from(rows: &[&[u32]]) -> (CfpArray, CfpTree) {
        let max = rows.iter().flat_map(|r| r.iter()).max().copied().unwrap_or(0);
        let mut t = CfpTree::new(max as usize + 1);
        for r in rows {
            t.insert(r, 1);
        }
        (convert(&t), t)
    }

    #[test]
    fn empty_tree_converts_to_empty_array() {
        let t = CfpTree::new(3);
        let a = convert(&t);
        assert!(a.is_empty());
        assert_eq!(a.data_bytes(), 0);
        assert_eq!(a.num_items(), 3);
        assert_eq!(a.subarray_len(0), 0);
    }

    #[test]
    fn paper_figure5_shape() {
        // Figure 5's FP-tree (items renumbered 0,1,2): three subarrays,
        // counts reconstructed from pcounts.
        let mut t = CfpTree::new(3);
        t.insert(&[0, 1, 2], 5);
        t.insert(&[0, 1], 3);
        t.insert(&[1, 2], 4);
        t.insert(&[2], 2);
        let a = convert(&t);
        assert_eq!(a.num_nodes(), 6);
        assert_eq!(a.subarray_len(0), 1);
        assert_eq!(a.subarray_len(1), 2);
        assert_eq!(a.subarray_len(2), 3);
        // Item 0's single node holds count 8 (5 + 3).
        let n0 = a.subarray(0).next().unwrap();
        assert_eq!(n0.count, 8);
        assert_eq!(a.parent_of(0, &n0), None);
        // Supports: item 1 in both prefixes 0-1 (8) and 1-2 (4).
        assert_eq!(a.item_support(0), 8);
        assert_eq!(a.item_support(1), 12);
        assert_eq!(a.item_support(2), 5 + 4 + 2);
    }

    #[test]
    fn counts_match_reference_fptree() {
        let rows: Vec<Vec<u32>> =
            vec![vec![0, 1, 2, 3], vec![0, 1, 3], vec![0, 2, 3], vec![2, 3], vec![0], vec![1, 2]];
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let (a, tree) = array_from(&refs);
        let mut fp = FpTree::new(4);
        for r in &rows {
            fp.insert(r, 1);
        }
        assert_eq!(a.num_nodes(), fp.num_nodes() as u64);
        assert_eq!(a.num_nodes(), tree.num_nodes());
        for item in 0..4u32 {
            let mut ours: Vec<u64> = a.subarray(item).map(|n| n.count).collect();
            let mut theirs: Vec<u64> =
                fp.nodelinks(item).map(|i| fp.node(i).count as u64).collect();
            ours.sort_unstable();
            theirs.sort_unstable();
            assert_eq!(ours, theirs, "item {item}");
            assert_eq!(a.item_support(item), fp.item_support(item));
        }
    }

    #[test]
    fn prefix_paths_match_reference_fptree() {
        let rows: Vec<Vec<u32>> =
            vec![vec![0, 1, 2, 3], vec![0, 1, 3], vec![0, 2, 3], vec![2, 3], vec![1, 3], vec![3]];
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let (a, _) = array_from(&refs);
        let mut fp = FpTree::new(4);
        for r in &rows {
            fp.insert(r, 1);
        }
        for item in 0..4u32 {
            let mut ours: Vec<(Vec<u32>, u64)> = a
                .subarray(item)
                .map(|n| {
                    let mut p = Vec::new();
                    a.prefix_path(item, &n, &mut p);
                    (p, n.count)
                })
                .collect();
            let mut theirs: Vec<(Vec<u32>, u64)> = fp
                .nodelinks(item)
                .map(|i| {
                    let mut p = Vec::new();
                    fp.prefix_path(i, &mut p);
                    (p, fp.node(i).count as u64)
                })
                .collect();
            ours.sort();
            theirs.sort();
            assert_eq!(ours, theirs, "item {item}");
        }
    }

    #[test]
    fn node_at_round_trips_every_node() {
        let (a, _) = array_from(&[&[0, 1, 2], &[0, 2], &[1, 2], &[2], &[0, 1]]);
        for item in 0..3u32 {
            for n in a.subarray(item) {
                assert_eq!(a.node_at(item, n.local), n);
            }
        }
    }

    #[test]
    fn root_children_are_recognized() {
        let (a, _) = array_from(&[&[2], &[0, 2]]);
        // Item 2 has two nodes: one root child, one under item 0.
        let nodes: Vec<NodeView> = a.subarray(2).collect();
        assert_eq!(nodes.len(), 2);
        let roots = nodes.iter().filter(|n| a.parent_of(2, n).is_none()).count();
        assert_eq!(roots, 1);
        assert_eq!(a.subarray(0).filter(|n| n.ditem == 1).count(), 1);
    }

    #[test]
    fn stress_counts_and_paths_against_fptree() {
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        for trial in 0..30 {
            let n_items = rng.gen_range(1..30usize);
            let mut tree = CfpTree::new(n_items);
            let mut fp = FpTree::new(n_items);
            for _ in 0..rng.gen_range(1..100) {
                let mut txn: Vec<u32> =
                    (0..n_items as u32).filter(|_| rng.gen_bool(0.35)).collect();
                txn.dedup();
                if txn.is_empty() {
                    continue;
                }
                let w = rng.gen_range(1..3u32);
                tree.insert(&txn, w);
                fp.insert(&txn, w);
            }
            let a = convert(&tree);
            assert_eq!(a.num_nodes(), fp.num_nodes() as u64, "trial {trial}");
            for item in 0..n_items as u32 {
                let mut ours: Vec<(Vec<u32>, u64)> = a
                    .subarray(item)
                    .map(|n| {
                        let mut p = Vec::new();
                        a.prefix_path(item, &n, &mut p);
                        (p, n.count)
                    })
                    .collect();
                let mut theirs: Vec<(Vec<u32>, u64)> = fp
                    .nodelinks(item)
                    .map(|i| {
                        let mut p = Vec::new();
                        fp.prefix_path(i, &mut p);
                        (p, fp.node(i).count as u64)
                    })
                    .collect();
                ours.sort();
                theirs.sort();
                assert_eq!(ours, theirs, "trial {trial} item {item}");
            }
        }
    }

    #[test]
    fn conversion_is_invariant_under_physical_representation() {
        // Chains and embedded leaves are physical artifacts; the logical
        // tree — and therefore the converted array — must be identical
        // whichever representation the tree used.
        use cfp_data::rng::{Rng, StdRng};
        use cfp_tree::CfpTreeConfig;
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let configs = [
            CfpTreeConfig::default(),
            CfpTreeConfig { max_chain_len: 0, embed_leaves: true },
            CfpTreeConfig { max_chain_len: 15, embed_leaves: false },
            CfpTreeConfig { max_chain_len: 0, embed_leaves: false },
            CfpTreeConfig { max_chain_len: 3, embed_leaves: true },
        ];
        for trial in 0..15 {
            let n_items = rng.gen_range(1..25usize);
            let mut txns: Vec<(Vec<u32>, u32)> = Vec::new();
            for _ in 0..rng.gen_range(1..60) {
                let txn: Vec<u32> = (0..n_items as u32).filter(|_| rng.gen_bool(0.35)).collect();
                if !txn.is_empty() {
                    txns.push((txn, rng.gen_range(1..4)));
                }
            }
            let arrays: Vec<CfpArray> = configs
                .iter()
                .map(|&cfg| {
                    let mut t = CfpTree::with_config(n_items, cfg);
                    for (txn, w) in &txns {
                        t.insert(txn, *w);
                    }
                    convert(&t)
                })
                .collect();
            let reference = &arrays[0];
            for (a, cfg) in arrays.iter().zip(configs.iter()).skip(1) {
                assert_eq!(a.num_nodes(), reference.num_nodes(), "trial {trial} {cfg:?}");
                assert_eq!(a.data(), reference.data(), "trial {trial} {cfg:?}");
                assert_eq!(a.starts(), reference.starts(), "trial {trial} {cfg:?}");
            }
        }
    }

    #[test]
    fn from_db_pipeline() {
        let db = TransactionDb::from_rows(&[vec![5u32, 9, 11], vec![5, 9], vec![9, 11], vec![5]]);
        let recoder = ItemRecoder::scan(&db, 2);
        let tree = CfpTree::from_db(&db, &recoder);
        let a = convert(&tree);
        // recoded: 5 -> ?, 9 -> ?; both support 3; 11 support 2.
        assert_eq!(a.num_items(), 3);
        assert_eq!(a.item_support(0), 3);
        assert!(a.avg_node_bytes() >= 3.0);
    }
}
