//! Size statistics of the CFP-array (Figure 6(b)).
//!
//! The paper reports the average node size of the CFP-array per dataset
//! and notes that the `Δpos` field dominates. This module recomputes the
//! per-field byte breakdown by scanning the encoded triples.

use crate::CfpArray;
use cfp_encoding::varint;

/// Byte totals of each field across all nodes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FieldBytes {
    /// Bytes spent on `Δitem` varints.
    pub ditem: u64,
    /// Bytes spent on `Δpos` varints.
    pub dpos: u64,
    /// Bytes spent on `count` varints.
    pub count: u64,
}

impl FieldBytes {
    /// Sum over all fields.
    pub fn total(&self) -> u64 {
        self.ditem + self.dpos + self.count
    }

    /// Per-node averages `(Δitem, Δpos, count)`.
    pub fn per_node(&self, nodes: u64) -> (f64, f64, f64) {
        if nodes == 0 {
            return (0.0, 0.0, 0.0);
        }
        let n = nodes as f64;
        (self.ditem as f64 / n, self.dpos as f64 / n, self.count as f64 / n)
    }
}

/// Measures the field byte breakdown of `array`.
pub fn field_bytes(array: &CfpArray) -> FieldBytes {
    let mut out = FieldBytes::default();
    for item in 0..array.num_items() as u32 {
        for node in array.subarray(item) {
            out.ditem += varint::encoded_len(node.ditem as u64) as u64;
            out.dpos += varint::encoded_len(cfp_encoding::zigzag::encode(node.dpos)) as u64;
            out.count += varint::encoded_len(node.count) as u64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert;
    use cfp_tree::CfpTree;

    #[test]
    fn breakdown_sums_to_data_bytes() {
        let mut t = CfpTree::new(16);
        t.insert(&[0, 1, 2, 3], 4);
        t.insert(&[0, 5, 9], 1);
        t.insert(&[2, 3], 9);
        let a = convert(&t);
        let fb = field_bytes(&a);
        assert_eq!(fb.total(), a.data_bytes());
    }

    #[test]
    fn per_node_averages_are_at_least_one_byte() {
        let mut t = CfpTree::new(8);
        t.insert(&[0, 1], 1);
        t.insert(&[0, 2], 1);
        let a = convert(&t);
        let (d, p, c) = field_bytes(&a).per_node(a.num_nodes());
        assert!(d >= 1.0 && p >= 1.0 && c >= 1.0);
    }

    #[test]
    fn empty_array_breakdown_is_zero() {
        let t = CfpTree::new(2);
        let a = convert(&t);
        assert_eq!(field_bytes(&a), FieldBytes::default());
        assert_eq!(field_bytes(&a).per_node(0), (0.0, 0.0, 0.0));
    }
}
