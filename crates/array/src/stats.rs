//! Size statistics of the CFP-array (Figure 6(b)).
//!
//! The paper reports the average node size of the CFP-array per dataset
//! and notes that the `Δpos` field dominates. This module recomputes the
//! per-field byte breakdown by scanning the encoded triples.

use crate::CfpArray;
use cfp_encoding::varint;
use cfp_metrics::HeapSize;

/// Byte totals of each field across all nodes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FieldBytes {
    /// Bytes spent on `Δitem` varints.
    pub ditem: u64,
    /// Bytes spent on `Δpos` varints.
    pub dpos: u64,
    /// Bytes spent on `count` varints.
    pub count: u64,
}

impl FieldBytes {
    /// Sum over all fields.
    pub fn total(&self) -> u64 {
        self.ditem + self.dpos + self.count
    }

    /// Per-node averages `(Δitem, Δpos, count)`.
    pub fn per_node(&self, nodes: u64) -> (f64, f64, f64) {
        if nodes == 0 {
            return (0.0, 0.0, 0.0);
        }
        let n = nodes as f64;
        (self.ditem as f64 / n, self.dpos as f64 / n, self.count as f64 / n)
    }
}

/// Measures the field byte breakdown of `array`.
pub fn field_bytes(array: &CfpArray) -> FieldBytes {
    let mut out = FieldBytes::default();
    for item in 0..array.num_items() as u32 {
        for node in array.subarray(item) {
            out.ditem += varint::encoded_len(node.ditem as u64) as u64;
            out.dpos += varint::encoded_len(cfp_encoding::zigzag::encode(node.dpos)) as u64;
            out.count += varint::encoded_len(node.count) as u64;
        }
    }
    out
}

/// Bytes of a naive uncompressed CFP-array triple: three `u32` fields
/// per node (`item`, `pos`, `count`), no delta or varint coding.
pub const NAIVE_TRIPLE_BYTES: u64 = 3 * 4;

/// The full per-structure report of a CFP-array for `cfp-memstat/1`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CfpArrayReport {
    /// Encoded nodes.
    pub num_nodes: u64,
    /// Per-field byte totals of the encoded triples.
    pub fields: FieldBytes,
    /// Encoded triple bytes (`fields.total()`, equals
    /// [`CfpArray::data_bytes`]).
    pub data_bytes: u64,
    /// Index bytes: the per-item subarray offsets and support table
    /// around the data buffer.
    pub index_bytes: u64,
    /// Total heap bytes (`data_bytes + index_bytes`).
    pub total_bytes: u64,
    /// Bytes saved by delta+varint coding vs naive `3 × u32` triples:
    /// `NAIVE_TRIPLE_BYTES × num_nodes − data_bytes`.
    pub varint_saved: u64,
}

impl CfpArrayReport {
    /// Average encoded bytes per node (0 when empty).
    pub fn bytes_per_node(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.data_bytes as f64 / self.num_nodes as f64
        }
    }
}

/// Measures the full byte breakdown of `array`.
pub fn array_report(array: &CfpArray) -> CfpArrayReport {
    let fields = field_bytes(array);
    let data_bytes = array.data_bytes();
    let total_bytes = array.heap_bytes();
    CfpArrayReport {
        num_nodes: array.num_nodes(),
        fields,
        data_bytes,
        index_bytes: total_bytes - data_bytes,
        total_bytes,
        varint_saved: (NAIVE_TRIPLE_BYTES * array.num_nodes()).saturating_sub(data_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert;
    use cfp_tree::CfpTree;

    #[test]
    fn breakdown_sums_to_data_bytes() {
        let mut t = CfpTree::new(16);
        t.insert(&[0, 1, 2, 3], 4);
        t.insert(&[0, 5, 9], 1);
        t.insert(&[2, 3], 9);
        let a = convert(&t);
        let fb = field_bytes(&a);
        assert_eq!(fb.total(), a.data_bytes());
    }

    #[test]
    fn per_node_averages_are_at_least_one_byte() {
        let mut t = CfpTree::new(8);
        t.insert(&[0, 1], 1);
        t.insert(&[0, 2], 1);
        let a = convert(&t);
        let (d, p, c) = field_bytes(&a).per_node(a.num_nodes());
        assert!(d >= 1.0 && p >= 1.0 && c >= 1.0);
    }

    #[test]
    fn empty_array_breakdown_is_zero() {
        let t = CfpTree::new(2);
        let a = convert(&t);
        assert_eq!(field_bytes(&a), FieldBytes::default());
        assert_eq!(field_bytes(&a).per_node(0), (0.0, 0.0, 0.0));
    }

    #[test]
    fn report_partitions_heap_bytes_exactly() {
        let mut t = CfpTree::new(16);
        t.insert(&[0, 1, 2, 3], 4);
        t.insert(&[0, 5, 9], 1);
        t.insert(&[2, 3], 9);
        let a = convert(&t);
        let r = array_report(&a);
        assert_eq!(r.num_nodes, a.num_nodes());
        assert_eq!(r.data_bytes, a.data_bytes());
        assert_eq!(r.data_bytes, r.fields.total());
        assert_eq!(r.data_bytes + r.index_bytes, r.total_bytes);
        assert_eq!(r.total_bytes, a.heap_bytes());
        assert!(r.bytes_per_node() >= 3.0, "a triple is at least 3 varint bytes");
    }

    #[test]
    fn varint_saving_is_positive_on_small_values() {
        // Small items, positions, and counts: every field fits one
        // varint byte, so each node beats the naive 12-byte triple.
        let mut t = CfpTree::new(8);
        for i in 0..6u32 {
            t.insert(&[0, 1 + i % 5], 1 + i);
        }
        let a = convert(&t);
        let r = array_report(&a);
        assert!(r.varint_saved > 0);
        assert_eq!(r.varint_saved, NAIVE_TRIPLE_BYTES * r.num_nodes - r.data_bytes);
    }
}
