//! On-disk serialization of the CFP-array.
//!
//! The paper's out-of-core discussion (§1, §5 class 3) notes that when a
//! structure must spill, the CFP-array's compactness and sequential
//! subarray layout keep the spill cheap. This module gives the CFP-array
//! a durable byte format so it can be written once and mined later (or by
//! another process) without rebuilding the tree:
//!
//! ```text
//! "CFPA" | version u8 | checksum u64-LE
//!       | varint num_items | varint num_nodes
//!       | varint subarray_size[i] for each item      (starts as deltas)
//!       | varint support[i] for each item
//!       | varint data_len | raw triple bytes
//! ```
//!
//! The checksum is FNV-1a over every byte after the checksum field, so a
//! torn or bit-flipped file is detected before any of its contents are
//! trusted. Everything else is varint-encoded with the same codec the
//! array itself uses, so the header overhead is a few bytes per item.
//!
//! The reader treats its input as hostile: no length field is used to
//! size an allocation before the corresponding bytes have actually been
//! read, every count is bounds-checked, and any inconsistency is a clean
//! `InvalidData` error — never a panic or an over-allocation. This is
//! what lets the out-of-core spill rung mine files that crossed a disk
//! full of injected faults.
//!
//! [`CfpArray::from_bytes`] is the zero-copy entry point: it validates a
//! whole in-memory file and returns an array whose triple bytes *borrow*
//! the shared buffer instead of copying it, so a loaded spill partition
//! costs one buffer, not two.

use crate::{Bytes, CfpArray};
use cfp_encoding::varint;
use std::io::{self, Read, Write};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"CFPA";
const VERSION: u8 = 2;
/// Bytes before the checksummed region: magic, version, checksum itself.
const PREFIX_LEN: usize = 4 + 1 + 8;
/// Items are `u32`, so a header claiming more is corrupt by definition.
const MAX_ITEMS: u64 = u32::MAX as u64;
/// Chunk size for reading untrusted payloads: allocation grows with bytes
/// actually read, never with a length field alone.
const READ_CHUNK: usize = 64 * 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(hash, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// Computes FNV-1a over everything it reads, so the checksum check costs
/// no second pass over the payload.
struct HashingReader<R> {
    inner: R,
    hash: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader { inner, hash: FNV_OFFSET }
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash = fnv1a(self.hash, &buf[..n]);
        Ok(n)
    }
}

fn bad(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn write_varint(w: &mut impl Write, v: u64) -> io::Result<()> {
    let mut buf = [0u8; varint::MAX_LEN_U64];
    let n = varint::write_u64_into(&mut buf, v);
    w.write_all(&buf[..n])
}

fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 || (shift == 63 && byte[0] & 0x7F > 1) {
            return Err(bad("varint overflow"));
        }
        value |= ((byte[0] & 0x7F) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// The header varints: everything between the checksum and the raw
/// triple bytes, in write order.
fn encode_header(a: &CfpArray) -> Vec<u8> {
    let mut h = Vec::with_capacity(2 * a.num_items() + 16);
    write_varint(&mut h, a.num_items() as u64).expect("Vec write");
    write_varint(&mut h, a.num_nodes()).expect("Vec write");
    for i in 0..a.num_items() {
        write_varint(&mut h, a.starts()[i + 1] - a.starts()[i]).expect("Vec write");
    }
    for i in 0..a.num_items() as u32 {
        write_varint(&mut h, a.item_support(i)).expect("Vec write");
    }
    write_varint(&mut h, a.data_bytes()).expect("Vec write");
    h
}

/// The decoded header fields plus the cumulative subarray boundaries.
struct Header {
    starts: Vec<u64>,
    supports: Vec<u64>,
    num_nodes: u64,
    data_len: u64,
}

/// Reads and cross-checks the header varints from `r` (which sits just
/// past the checksum field). All counts are validated against each other
/// before any of them sizes an allocation.
fn read_header(r: &mut impl Read) -> io::Result<Header> {
    let num_items = read_varint(r)?;
    if num_items > MAX_ITEMS {
        return Err(bad(format!("item count {num_items} exceeds the u32 item space")));
    }
    let num_items = num_items as usize;
    let num_nodes = read_varint(r)?;
    // Growth by push: a truncated file runs out of bytes long before the
    // claimed count can force a large allocation.
    let mut starts = Vec::new();
    starts.push(0u64);
    let mut acc = 0u64;
    for _ in 0..num_items {
        acc = acc.checked_add(read_varint(r)?).ok_or_else(|| bad("subarray size overflow"))?;
        starts.push(acc);
    }
    let mut supports = Vec::new();
    for _ in 0..num_items {
        supports.push(read_varint(r)?);
    }
    let data_len = read_varint(r)?;
    if data_len != acc {
        return Err(bad("data length disagrees with subarray sizes"));
    }
    // Every encoded triple is at least three one-byte varints.
    if num_nodes.checked_mul(3).is_none_or(|min| min > data_len) {
        return Err(bad(format!("{num_nodes} nodes cannot fit in {data_len} data bytes")));
    }
    Ok(Header { starts, supports, num_nodes, data_len })
}

/// Validates the fixed prefix (magic + version) and returns the declared
/// checksum.
fn read_prefix(r: &mut impl Read) -> io::Result<u64> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a CFPA file"));
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(bad(format!("unsupported CFPA version {}", version[0])));
    }
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    Ok(u64::from_le_bytes(sum))
}

impl CfpArray {
    /// Writes the array in the durable `CFPA` format.
    pub fn write_to(&self, mut w: impl Write) -> io::Result<()> {
        let header = encode_header(self);
        let checksum = fnv1a(fnv1a(FNV_OFFSET, &header), self.data());
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION])?;
        w.write_all(&checksum.to_le_bytes())?;
        w.write_all(&header)?;
        w.write_all(self.data())?;
        w.flush()
    }

    /// Reads an array written by [`write_to`](Self::write_to), verifying
    /// the checksum over everything it consumes. Reads exactly one
    /// array's bytes, so the format can be embedded in a larger stream.
    pub fn read_from(r: impl Read) -> io::Result<CfpArray> {
        let mut r = r;
        let declared = read_prefix(&mut r)?;
        let mut r = HashingReader::new(r);
        let header = read_header(&mut r)?;
        let mut data = Vec::new();
        let mut remaining = header.data_len as usize;
        let mut chunk = [0u8; READ_CHUNK];
        while remaining > 0 {
            let want = remaining.min(READ_CHUNK);
            r.read_exact(&mut chunk[..want])?;
            data.extend_from_slice(&chunk[..want]);
            remaining -= want;
        }
        if r.hash != declared {
            return Err(bad("CFPA checksum mismatch (torn or corrupt file)"));
        }
        Ok(CfpArray::from_parts(
            Bytes::Owned(data),
            header.starts,
            header.supports,
            header.num_nodes,
        ))
    }

    /// Validates a whole in-memory `CFPA` file and returns an array whose
    /// triple bytes *borrow* `buf` — the zero-copy path the out-of-core
    /// spill rung mines loaded partitions through. Unlike
    /// [`read_from`](Self::read_from), the buffer must contain exactly
    /// one array: trailing bytes fail the checksum.
    pub fn from_bytes(buf: Arc<[u8]>) -> io::Result<CfpArray> {
        let mut r: &[u8] = &buf;
        let declared = read_prefix(&mut r)?;
        if fnv1a(FNV_OFFSET, r) != declared {
            return Err(bad("CFPA checksum mismatch (torn or corrupt file)"));
        }
        let after_prefix = r.len();
        let header = read_header(&mut r)?;
        if r.len() as u64 != header.data_len {
            // The checksum already rules out trailing garbage; this only
            // fires on a length/payload disagreement inside a file whose
            // checksum was forged to match.
            return Err(bad("data length disagrees with file size"));
        }
        let start = PREFIX_LEN + (after_prefix - r.len());
        let data = Bytes::Shared { buf, start, len: header.data_len as usize };
        Ok(CfpArray::from_parts(data, header.starts, header.supports, header.num_nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_tree::CfpTree;

    fn sample_array() -> CfpArray {
        let mut t = CfpTree::new(8);
        t.insert(&[0, 1, 2, 3], 5);
        t.insert(&[0, 1, 4], 2);
        t.insert(&[2, 3], 7);
        t.insert(&[7], 1);
        crate::convert(&t)
    }

    fn assert_same(a: &CfpArray, b: &CfpArray) {
        assert_eq!(b.num_items(), a.num_items());
        assert_eq!(b.num_nodes(), a.num_nodes());
        assert_eq!(b.data_bytes(), a.data_bytes());
        for item in 0..a.num_items() as u32 {
            assert_eq!(b.item_support(item), a.item_support(item));
            let av: Vec<_> = a.subarray(item).collect();
            let bv: Vec<_> = b.subarray(item).collect();
            assert_eq!(av, bv, "item {item}");
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let a = sample_array();
        let mut bytes = Vec::new();
        a.write_to(&mut bytes).unwrap();
        let b = CfpArray::read_from(bytes.as_slice()).unwrap();
        assert_same(&a, &b);
        assert!(!b.is_shared());
    }

    #[test]
    fn from_bytes_round_trips_without_copying() {
        let a = sample_array();
        let mut bytes = Vec::new();
        a.write_to(&mut bytes).unwrap();
        let buf: Arc<[u8]> = bytes.into();
        let b = CfpArray::from_bytes(Arc::clone(&buf)).unwrap();
        assert_same(&a, &b);
        assert!(b.is_shared());
        // The view borrows the file buffer: its data slice lives inside it.
        let file = buf.as_ptr() as usize;
        let data = b.data().as_ptr() as usize;
        assert!(data >= file && data + b.data().len() <= file + buf.len());
        // An owned copy decoded from the same file differs from the view
        // only in owning its data bytes; the view must not count them.
        let owned = {
            let mut again = Vec::new();
            a.write_to(&mut again).unwrap();
            CfpArray::read_from(again.as_slice()).unwrap()
        };
        use cfp_metrics::HeapSize;
        assert!(
            b.heap_bytes() + b.data_bytes() <= owned.heap_bytes(),
            "shared data bytes must not be counted as owned heap"
        );
    }

    #[test]
    fn empty_array_round_trips() {
        let t = CfpTree::new(3);
        let a = crate::convert(&t);
        let mut bytes = Vec::new();
        a.write_to(&mut bytes).unwrap();
        let b = CfpArray::read_from(bytes.as_slice()).unwrap();
        assert_eq!(b.num_items(), 3);
        assert!(b.is_empty());
        let c = CfpArray::from_bytes(bytes.into()).unwrap();
        assert_eq!(c.num_items(), 3);
        assert!(c.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let err =
            CfpArray::read_from(&b"NOPE\x02\x00\x00\x00\x00\x00\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = Vec::new();
        sample_array().write_to(&mut bytes).unwrap();
        bytes[4] = 99;
        assert!(CfpArray::read_from(bytes.as_slice()).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let mut bytes = Vec::new();
        sample_array().write_to(&mut bytes).unwrap();
        for cut in 0..bytes.len() {
            assert!(CfpArray::read_from(&bytes[..cut]).is_err(), "cut at {cut} must fail");
            let arc: Arc<[u8]> = bytes[..cut].to_vec().into();
            assert!(CfpArray::from_bytes(arc).is_err(), "cut at {cut} must fail (from_bytes)");
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        // The fuzz obligation of the spill rung: no mutation of a valid
        // file may load. Magic/version/checksum bytes self-protect; every
        // byte after them is covered by the checksum.
        let mut bytes = Vec::new();
        sample_array().write_to(&mut bytes).unwrap();
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut m = bytes.clone();
                m[i] ^= flip;
                assert!(
                    CfpArray::read_from(m.as_slice()).is_err(),
                    "flip 0x{flip:02x} at byte {i} must be rejected"
                );
                let arc: Arc<[u8]> = m.into();
                assert!(
                    CfpArray::from_bytes(arc).is_err(),
                    "flip 0x{flip:02x} at byte {i} must be rejected (from_bytes)"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected_by_from_bytes() {
        let mut bytes = Vec::new();
        sample_array().write_to(&mut bytes).unwrap();
        bytes.push(0);
        assert!(CfpArray::from_bytes(bytes.into()).is_err());
    }

    #[test]
    fn huge_claimed_counts_do_not_allocate() {
        // A header claiming u64::MAX items must fail on the item-space
        // cap, and a huge data length must fail on missing bytes — in
        // both cases without sizing a buffer from the claim.
        let mut forged = Vec::new();
        forged.extend_from_slice(MAGIC);
        forged.push(VERSION);
        let mut payload = Vec::new();
        write_varint(&mut payload, u64::MAX).unwrap();
        forged.extend_from_slice(&fnv1a(FNV_OFFSET, &payload).to_le_bytes());
        forged.extend_from_slice(&payload);
        let err = CfpArray::read_from(forged.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Claims 1 item with a 2^40-byte subarray but supplies no data.
        let mut payload = Vec::new();
        write_varint(&mut payload, 1).unwrap(); // num_items
        write_varint(&mut payload, 1).unwrap(); // num_nodes
        write_varint(&mut payload, 1u64 << 40).unwrap(); // subarray size
        write_varint(&mut payload, 1).unwrap(); // support
        write_varint(&mut payload, 1u64 << 40).unwrap(); // data_len
        let mut forged = Vec::new();
        forged.extend_from_slice(MAGIC);
        forged.push(VERSION);
        forged.extend_from_slice(&fnv1a(FNV_OFFSET, &payload).to_le_bytes());
        forged.extend_from_slice(&payload);
        assert!(CfpArray::read_from(forged.as_slice()).is_err());
        assert!(CfpArray::from_bytes(forged.into()).is_err());
    }

    #[test]
    fn node_count_must_fit_in_data_bytes() {
        // Forge a checksum-valid header whose node count cannot fit.
        let a = sample_array();
        let mut payload = encode_header(&a);
        // Rewrite num_nodes (second varint) to an absurd value; rebuild
        // the header around it.
        let mut forged_header = Vec::new();
        write_varint(&mut forged_header, a.num_items() as u64).unwrap();
        write_varint(&mut forged_header, u64::MAX / 2).unwrap();
        let mut r: &[u8] = &payload;
        let _ = read_varint(&mut r).unwrap();
        let _ = read_varint(&mut r).unwrap();
        forged_header.extend_from_slice(r);
        payload = forged_header;
        let mut forged = Vec::new();
        forged.extend_from_slice(MAGIC);
        forged.push(VERSION);
        let checksum = fnv1a(fnv1a(FNV_OFFSET, &payload), a.data());
        forged.extend_from_slice(&checksum.to_le_bytes());
        forged.extend_from_slice(&payload);
        forged.extend_from_slice(a.data());
        let err = CfpArray::read_from(forged.as_slice()).unwrap_err();
        assert!(err.to_string().contains("cannot fit"), "{err}");
    }

    #[test]
    fn header_overhead_is_small() {
        let a = sample_array();
        let mut bytes = Vec::new();
        a.write_to(&mut bytes).unwrap();
        assert!(
            bytes.len() as u64
                <= a.data_bytes() + PREFIX_LEN as u64 + 2 + 3 * a.num_items() as u64 + 10
        );
    }
}
