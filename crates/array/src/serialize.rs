//! On-disk serialization of the CFP-array.
//!
//! The paper's out-of-core discussion (§1, §5 class 3) notes that when a
//! structure must spill, the CFP-array's compactness and sequential
//! subarray layout keep the spill cheap. This module gives the CFP-array
//! a durable byte format so it can be written once and mined later (or by
//! another process) without rebuilding the tree:
//!
//! ```text
//! "CFPA" | version u8 | varint num_items | varint num_nodes
//!       | varint subarray_size[i] for each item      (starts as deltas)
//!       | varint support[i] for each item
//!       | varint data_len | raw triple bytes
//! ```
//!
//! Everything is varint-encoded with the same codec the array itself
//! uses, so the header overhead is a few bytes per item.

use crate::CfpArray;
use cfp_encoding::varint;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"CFPA";
const VERSION: u8 = 1;

fn write_varint(w: &mut impl Write, v: u64) -> io::Result<()> {
    let mut buf = [0u8; varint::MAX_LEN_U64];
    let n = varint::write_u64_into(&mut buf, v);
    w.write_all(&buf[..n])
}

fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 || (shift == 63 && byte[0] & 0x7F > 1) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflow"));
        }
        value |= ((byte[0] & 0x7F) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

impl CfpArray {
    /// Writes the array in the durable `CFPA` format.
    pub fn write_to(&self, mut w: impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION])?;
        write_varint(&mut w, self.num_items() as u64)?;
        write_varint(&mut w, self.num_nodes())?;
        for i in 0..self.num_items() {
            write_varint(&mut w, self.starts()[i + 1] - self.starts()[i])?;
        }
        for i in 0..self.num_items() as u32 {
            write_varint(&mut w, self.item_support(i))?;
        }
        write_varint(&mut w, self.data_bytes())?;
        w.write_all(self.data())?;
        w.flush()
    }

    /// Reads an array written by [`write_to`](Self::write_to).
    pub fn read_from(mut r: impl Read) -> io::Result<CfpArray> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a CFPA file"));
        }
        let mut version = [0u8; 1];
        r.read_exact(&mut version)?;
        if version[0] != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported CFPA version {}", version[0]),
            ));
        }
        let num_items = read_varint(&mut r)? as usize;
        let num_nodes = read_varint(&mut r)?;
        let mut starts = Vec::with_capacity(num_items + 1);
        let mut acc = 0u64;
        starts.push(0);
        for _ in 0..num_items {
            acc = acc
                .checked_add(read_varint(&mut r)?)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "size overflow"))?;
            starts.push(acc);
        }
        let mut supports = Vec::with_capacity(num_items);
        for _ in 0..num_items {
            supports.push(read_varint(&mut r)?);
        }
        let data_len = read_varint(&mut r)?;
        if data_len != acc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "data length disagrees with subarray sizes",
            ));
        }
        let mut data = vec![0u8; data_len as usize];
        r.read_exact(&mut data)?;
        Ok(CfpArray::from_parts(data, starts, supports, num_nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_tree::CfpTree;

    fn sample_array() -> CfpArray {
        let mut t = CfpTree::new(8);
        t.insert(&[0, 1, 2, 3], 5);
        t.insert(&[0, 1, 4], 2);
        t.insert(&[2, 3], 7);
        t.insert(&[7], 1);
        crate::convert(&t)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let a = sample_array();
        let mut bytes = Vec::new();
        a.write_to(&mut bytes).unwrap();
        let b = CfpArray::read_from(bytes.as_slice()).unwrap();
        assert_eq!(b.num_items(), a.num_items());
        assert_eq!(b.num_nodes(), a.num_nodes());
        assert_eq!(b.data_bytes(), a.data_bytes());
        for item in 0..a.num_items() as u32 {
            assert_eq!(b.item_support(item), a.item_support(item));
            let av: Vec<_> = a.subarray(item).collect();
            let bv: Vec<_> = b.subarray(item).collect();
            assert_eq!(av, bv, "item {item}");
        }
    }

    #[test]
    fn empty_array_round_trips() {
        let t = CfpTree::new(3);
        let a = crate::convert(&t);
        let mut bytes = Vec::new();
        a.write_to(&mut bytes).unwrap();
        let b = CfpArray::read_from(bytes.as_slice()).unwrap();
        assert_eq!(b.num_items(), 3);
        assert!(b.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = CfpArray::read_from(&b"NOPE\x01\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = Vec::new();
        sample_array().write_to(&mut bytes).unwrap();
        bytes[4] = 99;
        assert!(CfpArray::read_from(bytes.as_slice()).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let mut bytes = Vec::new();
        sample_array().write_to(&mut bytes).unwrap();
        for cut in [5, 8, bytes.len() - 1] {
            assert!(CfpArray::read_from(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn header_overhead_is_small() {
        let a = sample_array();
        let mut bytes = Vec::new();
        a.write_to(&mut bytes).unwrap();
        assert!(bytes.len() as u64 <= a.data_bytes() + 4 + 1 + 2 + 3 * a.num_items() as u64 + 10);
    }
}
