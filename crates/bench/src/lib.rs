//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (§4).
//!
//! Each experiment is a pure function returning a [`report::Table`]; the
//! `cfp-repro` binary prints them, and `EXPERIMENTS.md` records the
//! measured numbers next to the paper's. Datasets come from
//! [`cfp_data::profiles`] — laptop-scale generators matching the shape of
//! the paper's workloads (see DESIGN.md for the substitution rationale).
//!
//! | experiment | function | paper content |
//! |---|---|---|
//! | Table 1 | [`experiments::table1`] | FP-tree field zero bytes |
//! | Table 2 | [`experiments::table2`] | CFP-tree field zero bytes |
//! | Table 3 | [`experiments::table3`] | dataset summary |
//! | Fig. 6(a) | [`experiments::fig6a`] | ternary CFP-tree node size |
//! | Fig. 6(b) | [`experiments::fig6b`] | CFP-array node size |
//! | Fig. 7 | [`experiments::fig7_sweep`] | build/convert/total time & memory vs. tree size |
//! | Fig. 8 | [`experiments::fig8`] | all algorithms on Quest1/Quest2 |

pub mod experiments;
pub mod report;
pub mod snapshot;

use cfp_data::miner::CountingSink;
use cfp_data::{MineStats, Miner, TransactionDb};

/// Runs a miner with a counting sink and returns its statistics.
pub fn run_miner(miner: &dyn Miner, db: &TransactionDb, min_support: u64) -> MineStats {
    let mut sink = CountingSink::new();
    miner.mine(db, min_support, &mut sink)
}

/// A small Quest dataset for Criterion microbenchmarks (fast to build).
pub fn bench_quest(transactions: usize) -> TransactionDb {
    let cfg = cfp_data::quest::QuestConfig {
        num_transactions: transactions,
        avg_transaction_len: 12.0,
        avg_pattern_len: 4.0,
        num_patterns: 500,
        num_items: 800,
        correlation: 0.25,
        seed: 0xBE7C4,
    };
    cfp_data::quest::generate(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_core::CfpGrowthMiner;

    #[test]
    fn run_miner_returns_consistent_stats() {
        let db = bench_quest(500);
        let stats = run_miner(&CfpGrowthMiner::new(), &db, 15);
        assert!(stats.itemsets > 0);
        assert!(stats.peak_bytes > 0);
    }

    #[test]
    fn bench_quest_is_deterministic() {
        assert_eq!(bench_quest(200), bench_quest(200));
    }
}
