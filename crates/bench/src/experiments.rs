//! One function per table/figure of the paper's evaluation.

use crate::report::{mib, secs, Table};
use crate::run_miner;
use cfp_baselines::all_miners;
use cfp_core::CfpGrowthMiner;
use cfp_data::profiles::{self, DatasetProfile};
use cfp_data::{ItemRecoder, Miner, TransactionDb};
use cfp_fptree::{FpGrowthMiner, FpTree};
use cfp_metrics::HeapSize;
use cfp_tree::CfpTree;
use std::time::Duration;

/// Per-run wall-clock budget for Figure 8; algorithms exceeding it are
/// skipped at lower supports (the paper likewise stopped algorithms that
/// ran for hours). Override with `CFP_BUDGET_SECS`.
fn budget() -> Duration {
    let secs =
        std::env::var("CFP_BUDGET_SECS").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(20);
    Duration::from_secs(secs)
}

fn webdocs_like() -> (DatasetProfile, TransactionDb) {
    let p = profiles::by_name("webdocs-like").expect("profile exists");
    let db = p.generate();
    (p, db)
}

/// Table 1: leading-zero-byte distribution of the FP-tree's seven fields
/// on the webdocs-shaped dataset at 10% minimum support.
pub fn table1() -> Table {
    let (p, db) = webdocs_like();
    let minsup = p.absolute_support(&db, 1); // the 10% level
    let recoder = ItemRecoder::scan(&db, minsup);
    let tree = FpTree::from_db(&db, &recoder);
    let stats = cfp_fptree::analysis::analyze(&tree);
    let mut t = Table::new(
        format!(
            "Table 1: leading zero bytes per FP-tree field (webdocs-like, minsup {minsup}, {} nodes)",
            tree.num_nodes()
        ),
        &["field", "0", "1", "2", "3", "4"],
    );
    for (name, hist) in stats.rows() {
        let mut cells = vec![name.to_string()];
        cells.extend(hist.paper_row().split('\t').map(str::to_string));
        t.push_row(cells);
    }
    t.push_row(vec![
        "zero-byte fraction".into(),
        format!("{:.0}%", stats.zero_byte_fraction() * 100.0),
    ]);
    t
}

/// Table 2: leading-zero-byte distribution of the CFP-tree's data fields
/// on the same workload.
pub fn table2() -> Table {
    let (p, db) = webdocs_like();
    let minsup = p.absolute_support(&db, 1);
    let recoder = ItemRecoder::scan(&db, minsup);
    let tree = CfpTree::from_db(&db, &recoder);
    let stats = cfp_tree::analysis::analyze(&tree);
    let mut t = Table::new(
        format!(
            "Table 2: leading zero bytes per CFP-tree field (webdocs-like, minsup {minsup}, {} nodes)",
            tree.num_nodes()
        ),
        &["field", "0", "1", "2", "3", "4"],
    );
    for (name, hist) in [("ditem", &stats.ditem), ("pcount", &stats.pcount)] {
        let mut cells = vec![name.to_string()];
        cells.extend(hist.paper_row().split('\t').map(str::to_string));
        t.push_row(cells);
    }
    t
}

/// Table 3: summary of the synthetic Quest datasets (scaled; see DESIGN.md).
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3: summary of datasets (scaled Quest configurations)",
        &["dataset", "transactions", "avg. itemcard.", "distinct items", "FIMI size"],
    );
    for name in ["quest1", "quest2"] {
        let p = profiles::by_name(name).expect("profile exists");
        let db = p.generate();
        let mut bytes = Vec::new();
        cfp_data::fimi::write(&db, &mut bytes).expect("in-memory write");
        t.push_row(vec![
            name.into(),
            cfp_metrics::fmt_count(db.len() as u64),
            format!("{:.1}", db.avg_transaction_len()),
            cfp_metrics::fmt_count(db.distinct_items() as u64),
            cfp_metrics::fmt_bytes(bytes.len() as u64),
        ]);
    }
    t
}

/// Figure 6(a): average node size of the ternary CFP-tree per dataset and
/// support level, with the reduction factor against the 40-byte baseline.
pub fn fig6a() -> Table {
    let mut t = Table::new(
        "Figure 6(a): avg. node size of the ternary CFP-tree (bytes; xN = reduction vs 40 B)",
        &["dataset", "high", "medium", "low", "nodes@low"],
    );
    for p in profiles::all() {
        let db = p.generate();
        let mut cells = vec![p.name.to_string()];
        let mut nodes_low = 0;
        for level in 0..3 {
            let minsup = p.absolute_support(&db, level);
            let recoder = ItemRecoder::scan(&db, minsup);
            let tree = CfpTree::from_db(&db, &recoder);
            let avg = tree.avg_node_bytes();
            cells.push(format!("{:.2} (x{:.0})", avg, 40.0 / avg.max(0.01)));
            nodes_low = tree.num_nodes();
        }
        cells.push(cfp_metrics::fmt_count(nodes_low));
        t.push_row(cells);
    }
    t
}

/// Figure 6(b): average node size of the CFP-array per dataset and
/// support level, plus the per-field byte split at the low level.
pub fn fig6b() -> Table {
    let mut t = Table::new(
        "Figure 6(b): avg. node size of the CFP-array (bytes; xN = reduction vs 40 B)",
        &["dataset", "high", "medium", "low", "ditem/dpos/count @low"],
    );
    for p in profiles::all() {
        let db = p.generate();
        let mut cells = vec![p.name.to_string()];
        let mut split = String::new();
        for level in 0..3 {
            let minsup = p.absolute_support(&db, level);
            let recoder = ItemRecoder::scan(&db, minsup);
            let tree = CfpTree::from_db(&db, &recoder);
            let array = cfp_core::convert(&tree);
            let avg = array.avg_node_bytes();
            cells.push(format!("{:.2} (x{:.0})", avg, 40.0 / avg.max(0.01)));
            let (d, p_, c) = cfp_array::stats::field_bytes(&array).per_node(array.num_nodes());
            split = format!("{d:.2}/{p_:.2}/{c:.2}");
        }
        cells.push(split);
        t.push_row(cells);
    }
    t
}

/// One support level of the Figure 7 sweep.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Absolute minimum support.
    pub minsup: u64,
    /// Initial FP-tree size in nodes (the paper's x-axis).
    pub tree_nodes: u64,
    /// FP-growth statistics.
    pub fp: cfp_data::MineStats,
    /// CFP-growth statistics.
    pub cfp: cfp_data::MineStats,
    /// Build-phase memory: FP-tree bytes.
    pub fp_build_bytes: u64,
    /// Build-phase memory: CFP-tree + CFP-array bytes (coexist during
    /// conversion, §3.5).
    pub cfp_build_bytes: u64,
}

/// Runs the Figure 7 support sweep on the Quest1 profile.
///
/// `fractions` are relative supports, descending; `None` uses the default
/// grid.
pub fn fig7_sweep(fractions: Option<&[f64]>) -> Vec<Fig7Row> {
    let default = [0.02, 0.012, 0.008, 0.005, 0.003, 0.002, 0.0015];
    let fractions = fractions.unwrap_or(&default);
    let p = profiles::by_name("quest1").expect("profile exists");
    let db = p.generate();
    let fp = FpGrowthMiner::new();
    let cfp = CfpGrowthMiner::new();
    let mut rows = Vec::new();
    for &f in fractions {
        let minsup = ((db.len() as f64 * f).ceil() as u64).max(1);
        let fp_stats = run_miner(&fp, &db, minsup);
        let cfp_stats = run_miner(&cfp, &db, minsup);
        assert_eq!(fp_stats.itemsets, cfp_stats.itemsets, "miners disagree at minsup {minsup}");
        // Build-phase memory measured directly on the structures.
        let recoder = ItemRecoder::scan(&db, minsup);
        let fp_tree = FpTree::from_db(&db, &recoder);
        let fp_build_bytes = fp_tree.heap_bytes();
        drop(fp_tree);
        let cfp_tree = CfpTree::from_db(&db, &recoder);
        let array = cfp_core::convert(&cfp_tree);
        let cfp_build_bytes = cfp_tree.heap_bytes() + array.heap_bytes();
        rows.push(Fig7Row {
            minsup,
            tree_nodes: fp_stats.tree_nodes,
            fp: fp_stats,
            cfp: cfp_stats,
            fp_build_bytes,
            cfp_build_bytes,
        });
    }
    rows
}

/// Figure 7(a): build(+convert) time vs. initial tree size.
pub fn fig7a(rows: &[Fig7Row]) -> Table {
    let mut t = Table::new(
        "Figure 7(a): build and conversion time vs. tree size (quest1, seconds)",
        &["minsup", "nodes", "scan", "fp build", "cfp build", "cfp convert", "cfp build+conv"],
    );
    for r in rows {
        t.push_row(vec![
            r.minsup.to_string(),
            cfp_metrics::fmt_count(r.tree_nodes),
            secs(r.cfp.scan_time),
            secs(r.fp.build_time),
            secs(r.cfp.build_time),
            secs(r.cfp.convert_time),
            secs(r.cfp.build_time + r.cfp.convert_time),
        ]);
    }
    t
}

/// Figure 7(b): memory consumption during the build phase.
pub fn fig7b(rows: &[Fig7Row]) -> Table {
    let mut t = Table::new(
        "Figure 7(b): build-phase memory vs. tree size (quest1, MiB)",
        &["minsup", "nodes", "fp-tree", "cfp-tree+array", "reduction"],
    );
    for r in rows {
        t.push_row(vec![
            r.minsup.to_string(),
            cfp_metrics::fmt_count(r.tree_nodes),
            mib(r.fp_build_bytes),
            mib(r.cfp_build_bytes),
            format!("x{:.1}", r.fp_build_bytes as f64 / r.cfp_build_bytes.max(1) as f64),
        ]);
    }
    t
}

/// Figure 7(c): total execution time.
pub fn fig7c(rows: &[Fig7Row]) -> Table {
    let mut t = Table::new(
        "Figure 7(c): total execution time vs. tree size (quest1, seconds)",
        &["minsup", "nodes", "itemsets", "fp-growth", "cfp-growth"],
    );
    for r in rows {
        t.push_row(vec![
            r.minsup.to_string(),
            cfp_metrics::fmt_count(r.tree_nodes),
            cfp_metrics::fmt_count(r.fp.itemsets),
            secs(r.fp.total_time()),
            secs(r.cfp.total_time()),
        ]);
    }
    t
}

/// Figure 7(d): peak (and average) memory over the whole run.
pub fn fig7d(rows: &[Fig7Row]) -> Table {
    let mut t = Table::new(
        "Figure 7(d): memory consumption vs. tree size (quest1, MiB)",
        &["minsup", "nodes", "fp peak", "cfp peak", "cfp avg", "reduction"],
    );
    for r in rows {
        t.push_row(vec![
            r.minsup.to_string(),
            cfp_metrics::fmt_count(r.tree_nodes),
            mib(r.fp.peak_bytes),
            mib(r.cfp.peak_bytes),
            mib(r.cfp.avg_bytes),
            format!("x{:.1}", r.fp.peak_bytes as f64 / r.cfp.peak_bytes.max(1) as f64),
        ]);
    }
    t
}

/// Which Quest dataset a Figure 8 run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuestSet {
    /// The Quest1 profile (Figures 8(a)–8(c)).
    Quest1,
    /// The Quest2 profile with twice the transactions (Figure 8(d)).
    Quest2,
}

/// Runs all algorithms over a support sweep on one Quest dataset and
/// returns (time table, peak-memory table). Covers Figures 8(a)–8(d):
/// 8(a)/8(b) compare the FP-growth-variant columns, 8(c)/8(d) the
/// FIMI-algorithm columns.
pub fn fig8(set: QuestSet, fractions: Option<&[f64]>) -> (Table, Table) {
    let default = [0.02, 0.012, 0.008, 0.005, 0.003, 0.002];
    let fractions = fractions.unwrap_or(&default);
    let profile_name = match set {
        QuestSet::Quest1 => "quest1",
        QuestSet::Quest2 => "quest2",
    };
    let db = profiles::by_name(profile_name).expect("profile exists").generate();

    let mut miners: Vec<Box<dyn Miner>> = vec![Box::new(CfpGrowthMiner::new())];
    miners.extend(all_miners());
    let names: Vec<&'static str> = miners.iter().map(|m| m.name()).collect();

    let mut headers = vec!["minsup", "itemsets"];
    headers.extend(names.iter().copied());
    let mut time_t =
        Table::new(format!("Figure 8 ({profile_name}): total execution time (seconds)"), &headers);
    let mut mem_t = Table::new(format!("Figure 8 ({profile_name}): peak memory (MiB)"), &headers);

    // An algorithm exceeding the budget is skipped at lower supports,
    // mirroring the paper's treatment of multi-hour runs.
    let mut over_budget = vec![false; miners.len()];
    for &f in fractions {
        let minsup = ((db.len() as f64 * f).ceil() as u64).max(1);
        let mut times = Vec::new();
        let mut mems = Vec::new();
        let mut itemsets: Option<u64> = None;
        for (i, m) in miners.iter().enumerate() {
            if over_budget[i] {
                times.push("skipped".to_string());
                mems.push("skipped".to_string());
                continue;
            }
            let stats = run_miner(m.as_ref(), &db, minsup);
            if let Some(expect) = itemsets {
                assert_eq!(stats.itemsets, expect, "{} disagrees at {minsup}", m.name());
            } else {
                itemsets = Some(stats.itemsets);
            }
            if stats.total_time() > budget() {
                over_budget[i] = true;
            }
            times.push(secs(stats.total_time()));
            mems.push(mib(stats.peak_bytes));
        }
        let mut trow = vec![minsup.to_string(), cfp_metrics::fmt_count(itemsets.unwrap_or(0))];
        trow.extend(times);
        time_t.push_row(trow);
        let mut mrow = vec![minsup.to_string(), cfp_metrics::fmt_count(itemsets.unwrap_or(0))];
        mrow.extend(mems);
        mem_t.push_row(mrow);
    }
    (time_t, mem_t)
}

/// Ablation of the CFP-tree's structural techniques: chain nodes and
/// embedded leaves toggled independently (the byte-level encodings are
/// inherent to the node format). Bytes per logical node, per profile at
/// the medium support level.
pub fn ablation() -> Table {
    use cfp_tree::CfpTreeConfig;
    let configs: [(&str, CfpTreeConfig); 4] = [
        ("full", CfpTreeConfig::default()),
        ("no-chains", CfpTreeConfig { max_chain_len: 0, embed_leaves: true }),
        ("no-embed", CfpTreeConfig { max_chain_len: 15, embed_leaves: false }),
        ("neither", CfpTreeConfig { max_chain_len: 0, embed_leaves: false }),
    ];
    let mut headers = vec!["dataset"];
    headers.extend(configs.iter().map(|(n, _)| *n));
    let mut t = Table::new(
        "Ablation: CFP-tree bytes/node with techniques disabled (medium support)",
        &headers,
    );
    for p in profiles::all() {
        let db = p.generate();
        let minsup = p.absolute_support(&db, 1);
        let recoder = ItemRecoder::scan(&db, minsup);
        let mut cells = vec![p.name.to_string()];
        let mut buf = Vec::new();
        for (_, cfg) in configs {
            let mut tree = cfp_tree::CfpTree::with_config(recoder.num_items(), cfg);
            for txn in db.iter() {
                recoder.recode_transaction(txn, &mut buf);
                tree.insert(&buf, 1);
            }
            if tree.num_nodes() == 0 {
                cells.push("-".into());
            } else {
                cells.push(format!("{:.2}", tree.avg_node_bytes()));
            }
        }
        t.push_row(cells);
    }
    t
}

/// The in-core capacity claim of §4.4: at a fixed memory budget, how many
/// prefix-tree nodes can each representation hold before spilling? The
/// paper reports CFP-growth staying in-core for 7.5x larger trees than
/// FP-growth; the ratio here follows directly from measured bytes/node.
pub fn capacity(budget_bytes: u64) -> Table {
    let mut t = Table::new(
        format!(
            "In-core capacity at a {} budget (nodes before spilling; mine-phase structures)",
            cfp_metrics::fmt_bytes(budget_bytes)
        ),
        &[
            "dataset",
            "fp-growth (40 B)",
            "fp-growth (28 B)",
            "cfp-growth",
            "capacity ratio vs 40 B",
        ],
    );
    for p in profiles::all() {
        let db = p.generate();
        let minsup = p.absolute_support(&db, 1);
        let recoder = ItemRecoder::scan(&db, minsup);
        let tree = CfpTree::from_db(&db, &recoder);
        if tree.num_nodes() == 0 {
            continue;
        }
        let array = cfp_core::convert(&tree);
        // During conversion tree and array coexist; afterwards only the
        // array remains, so capacity is bounded by the coexistence peak.
        let cfp_bytes_per_node =
            (tree.arena_used() + array.data_bytes()) as f64 / tree.num_nodes() as f64;
        let cap = |bpn: f64| (budget_bytes as f64 / bpn) as u64;
        t.push_row(vec![
            p.name.to_string(),
            cfp_metrics::fmt_count(cap(40.0)),
            cfp_metrics::fmt_count(cap(28.0)),
            cfp_metrics::fmt_count(cap(cfp_bytes_per_node)),
            format!("x{:.1}", 40.0 / cfp_bytes_per_node),
        ]);
    }
    t
}

/// Parallel mine-phase scaling on quest1 (the §5 class-4 extension).
pub fn parallel_scaling() -> Table {
    use cfp_core::ParallelCfpGrowthMiner;
    let p = profiles::by_name("quest1").expect("profile exists");
    let db = p.generate();
    let minsup = p.absolute_support(&db, 2);
    let seq = run_miner(&CfpGrowthMiner::new(), &db, minsup);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut t = Table::new(
        format!(
            "Parallel scaling (quest1, minsup {minsup}, {} itemsets, host has {cores} core(s))",
            cfp_metrics::fmt_count(seq.itemsets)
        ),
        &["threads", "total (s)", "mine (s)", "speedup vs 1 thread (mine)", "peak (MiB)"],
    );
    t.push_row(vec![
        "1".into(),
        secs(seq.total_time()),
        secs(seq.mine_time),
        "x1.0".into(),
        mib(seq.peak_bytes),
    ]);
    for threads in [2usize, 4, 8] {
        let stats = run_miner(&ParallelCfpGrowthMiner::new(threads), &db, minsup);
        assert_eq!(stats.itemsets, seq.itemsets, "parallel result mismatch");
        t.push_row(vec![
            threads.to_string(),
            secs(stats.total_time()),
            secs(stats.mine_time),
            format!("x{:.1}", seq.mine_time.as_secs_f64() / stats.mine_time.as_secs_f64()),
            mib(stats.peak_bytes),
        ]);
    }
    t
}

/// Skew benchmark: mine-phase load balance on a heavy-tailed dataset,
/// static round-robin deal vs. the dynamic work-stealing scheduler.
///
/// Reports per-worker claimed cost (the max/min ratio is the imbalance
/// measure), mine time, and the scheduler's trace counters (claims,
/// steals, arena resets) for each schedule at four workers.
pub fn skew() -> Table {
    use cfp_core::{ParallelCfpGrowthMiner, Schedule};
    use cfp_trace::counters as tc;
    let p = profiles::by_name("kosarak-like").expect("profile exists");
    let db = p.generate();
    let minsup = p.absolute_support(&db, 2);
    let threads = 4;
    let mut t = Table::new(
        format!(
            "Skew benchmark: mine-phase load balance (kosarak-like, minsup {minsup}, {threads} workers)"
        ),
        &[
            "schedule",
            "mine (s)",
            "worker cost max/min",
            "worker tasks",
            "claims",
            "steals",
            "arena resets",
        ],
    );
    let mut itemsets: Option<u64> = None;
    for schedule in [Schedule::Static, Schedule::Dynamic] {
        let was_enabled = cfp_trace::enabled();
        cfp_trace::set_enabled(true);
        cfp_trace::reset();
        let miner = ParallelCfpGrowthMiner { schedule, ..ParallelCfpGrowthMiner::new(threads) };
        let stats = run_miner(&miner, &db, minsup);
        let (claims, steals, resets) =
            (tc::CORE_TASKS_CLAIMED.get(), tc::CORE_TASKS_STOLEN.get(), tc::MEMMAN_RESETS.get());
        cfp_trace::set_enabled(was_enabled);
        if let Some(expect) = itemsets {
            assert_eq!(stats.itemsets, expect, "schedules disagree");
        } else {
            itemsets = Some(stats.itemsets);
        }
        let max = stats.worker_costs.iter().copied().max().unwrap_or(0);
        let min = stats.worker_costs.iter().copied().min().unwrap_or(0);
        let tasks: Vec<String> = stats.worker_tasks.iter().map(u64::to_string).collect();
        t.push_row(vec![
            schedule.name().into(),
            secs(stats.mine_time),
            format!("x{:.2}", max as f64 / min.max(1) as f64),
            tasks.join("/"),
            claims.to_string(),
            steals.to_string(),
            resets.to_string(),
        ]);
    }
    t
}

/// Headline compression summary: bytes per node of every representation.
pub fn compression_summary() -> Table {
    let mut t = Table::new(
        "Compression summary (medium support level per profile)",
        &[
            "dataset",
            "nodes",
            "fp-tree B/node",
            "paper fp B/node",
            "cfp-tree B/node",
            "cfp-array B/node",
            "tree reduction",
            "array reduction",
        ],
    );
    for p in profiles::all() {
        let db = p.generate();
        let minsup = p.absolute_support(&db, 1);
        let recoder = ItemRecoder::scan(&db, minsup);
        let cfp_tree = CfpTree::from_db(&db, &recoder);
        let array = cfp_core::convert(&cfp_tree);
        if cfp_tree.num_nodes() == 0 {
            t.push_row(vec![
                p.name.to_string(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let tree_avg = cfp_tree.avg_node_bytes();
        let array_avg = array.avg_node_bytes();
        t.push_row(vec![
            p.name.to_string(),
            cfp_metrics::fmt_count(cfp_tree.num_nodes()),
            format!("{}", FpTree::NODE_BYTES),
            format!("{}", FpTree::PAPER_NODE_BYTES),
            format!("{tree_avg:.2}"),
            format!("{array_avg:.2}"),
            format!("x{:.1}", 40.0 / tree_avg.max(0.01)),
            format!("x{:.1}", 40.0 / array_avg.max(0.01)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reports_both_quests() {
        let t = table3();
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0][0] == "quest1");
    }

    #[test]
    fn fig7_sweep_is_consistent_on_a_small_grid() {
        let rows = fig7_sweep(Some(&[0.05, 0.03]));
        assert_eq!(rows.len(), 2);
        assert!(rows[0].tree_nodes <= rows[1].tree_nodes, "lower support, bigger tree");
        for r in &rows {
            assert!(r.cfp_build_bytes < r.fp_build_bytes, "CFP must be smaller");
        }
        // All four tables render.
        for t in [fig7a(&rows), fig7b(&rows), fig7c(&rows), fig7d(&rows)] {
            assert!(!t.render().is_empty());
        }
    }

    /// A database whose two cost-heaviest first-level items land on the
    /// same worker under a two-thread round-robin deal, while the dynamic
    /// queue hands one heavy item to each.
    ///
    /// 53 items: 10 fillers (recoded 0..9), 40 single-node padding items
    /// (10..49), then the tail heavy1 (50), a light mid item (51), and
    /// heavy2 (52). With n = 53, the static deal sends even recoded ids —
    /// including both heavies — to worker 0. Each heavy item sits under
    /// ~900 distinct filler-subset prefixes, so its subarray dwarfs
    /// everything else and the mine phase is long enough for both dynamic
    /// workers to reach the queue.
    fn parity_skewed_db() -> TransactionDb {
        // Distinct non-empty subsets of the 10 filler items, |S| <= 7.
        let masks: Vec<u16> = (1u16..1024).filter(|m| m.count_ones() <= 7).collect();
        let with_suffix = |m: u16, extra: u32| -> Vec<u32> {
            let mut row: Vec<u32> = (0..10u32).filter(|&i| m >> i & 1 == 1).collect();
            row.push(extra);
            row
        };
        let mut rows: Vec<Vec<u32>> = Vec::new();
        for &m in &masks[..900] {
            rows.push(with_suffix(m, 50)); // heavy1: 900 nodes
        }
        for &m in &masks[..850] {
            rows.push(with_suffix(m, 52)); // heavy2: 850 nodes
        }
        for _ in 0..875 {
            rows.push(vec![51]); // mid item: support between the heavies, 1 node
        }
        // Padding items with distinct supports 988 down to 910, one tree
        // node each.
        for (k, item) in (10..50u32).enumerate() {
            for _ in 0..(988 - 2 * k) {
                rows.push(vec![item]);
            }
        }
        // Top the fillers up to strictly decreasing supports above
        // everything else, pinning recoded ids to original ids.
        let mut count = std::collections::HashMap::new();
        for r in &rows {
            for &i in r {
                *count.entry(i).or_insert(0u32) += 1;
            }
        }
        for k in 0..10u32 {
            for _ in count[&k]..(1200 - 10 * k) {
                rows.push(vec![k]);
            }
        }
        TransactionDb::from_rows(&rows)
    }

    #[test]
    fn dynamic_schedule_balances_the_parity_skewed_load_better() {
        use cfp_core::{ParallelCfpGrowthMiner, Schedule};
        let db = parity_skewed_db();
        let imbalance = |costs: &[u64]| {
            let max = *costs.iter().max().unwrap() as f64;
            // A worker that claimed nothing makes the ratio infinite.
            max / *costs.iter().min().unwrap() as f64
        };
        let stat_miner =
            ParallelCfpGrowthMiner { schedule: Schedule::Static, ..ParallelCfpGrowthMiner::new(2) };
        let stat = run_miner(&stat_miner, &db, 1);
        let static_imb = imbalance(&stat.worker_costs);
        assert!(static_imb > 1.5, "construction must skew the static deal, got {static_imb:.2}");
        let dyn_miner = ParallelCfpGrowthMiner {
            schedule: Schedule::Dynamic,
            ..ParallelCfpGrowthMiner::new(2)
        };
        // The dynamic split depends on claim timing; the best of a few
        // runs is what the scheduler can achieve, and must beat the
        // deterministic static deal.
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let stats = run_miner(&dyn_miner, &db, 1);
            assert_eq!(stats.itemsets, stat.itemsets, "schedules disagree");
            best = best.min(imbalance(&stats.worker_costs));
        }
        assert!(best < static_imb, "dynamic {best:.2} must beat static {static_imb:.2}");
    }

    #[test]
    fn skew_table_reports_both_schedules() {
        let t = skew();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "static");
        assert_eq!(t.rows[1][0], "dynamic");
        // The dynamic row's claim counter covers every first-level item
        // and its arena resets are visible.
        assert!(t.rows[1][4].parse::<u64>().unwrap() > 0);
        assert!(t.rows[1][6].parse::<u64>().unwrap() > 0);
    }

    #[test]
    fn fig8_all_miners_agree_at_high_support() {
        let (time_t, mem_t) = fig8(QuestSet::Quest1, Some(&[0.06]));
        assert_eq!(time_t.rows.len(), 1);
        assert_eq!(mem_t.rows.len(), 1);
        assert!(!time_t.rows[0].iter().any(|c| c == "skipped"));
    }
}
