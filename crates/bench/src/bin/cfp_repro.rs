//! `cfp-repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! cfp-repro [--csv DIR] <experiment> [...]
//!   table1 table2 table3      field statistics and dataset summary
//!   fig6a fig6b               node-size measurements
//!   fig7                      Quest1 sweep: 7(a)-7(d) from one run
//!   fig8a                     Quest1, all algorithms (time + memory)
//!   fig8d                     Quest2, all algorithms (time + memory)
//!   summary                   headline compression ratios
//!   ablation                  chain/embedding techniques toggled off
//!   capacity                  in-core capacity at a 64 MiB budget (§4.4)
//!   parallel                  mine-phase scaling with worker threads
//!   skew                      static vs dynamic scheduling on a skewed
//!                             dataset; with --csv also writes a
//!                             cfp-profile/2 JSON per schedule
//!   profile                   traced CFP run on Quest1, written as a
//!                             cfp-profile/2 JSON document
//!   all                       everything above
//!
//! cfp-repro bench [--out DIR]
//!   Runs the fixed benchmark set and writes one cfp-bench/1 snapshot
//!   per benchmark as DIR/BENCH_<name>.json (default DIR: results/).
//!   Every run is armed with an attribution pool, so snapshots carry a
//!   per-component memory summary alongside the timings.
//!
//! cfp-repro compare BASELINE CANDIDATE [--threshold PCT]
//!   Diffs two snapshot files and exits 1 when the candidate regressed
//!   more than PCT percent (default 25) on wall time, peak bytes, any
//!   phase, the pool peak or any attribution component — or mined a
//!   different itemset count, or failed its memory audit.
//!
//! cfp-repro ckpt-trim OUTPUT CKPT_DIR
//!   Prepares a crashed checkpointed run's output file for `--resume`:
//!   truncates OUTPUT to the durable watermark recorded in CKPT_DIR's
//!   manifest (to zero when no manifest was committed), discarding any
//!   bytes written past the last commit. Rejects an invalid manifest
//!   with exit 9 and an output file shorter than its watermark with
//!   exit 9 (the stream lost committed bytes; resume would be wrong).
//!
//! cfp-repro ckpt-info CKPT_DIR
//!   Prints the validated manifest JSON, or fails with its structured
//!   error (exit 9 on a torn/corrupt manifest, 1 when none exists).
//!
//! cfp-repro postmortem BLACKBOX
//!   Verifies a `cfp-blackbox/1` flight-recorder dump's checksum and
//!   renders it as a readable report: the fatal error and exit code,
//!   run context, phase times, latency percentiles, memory state,
//!   degradation rungs, counters, and the last events per thread.
//!   BLACKBOX is the blackbox.json file or the directory holding it.
//!   Exits 1 when the file is unreadable, corrupt, or mis-checksummed.
//!
//! cfp-repro inspect [--out PATH] [--support N] PROFILE
//!   Mines a synthetic dataset profile sequentially with an attribution
//!   pool and emits the cfp-memstat/1 document (stdout by default):
//!   per-component peaks, the reconciliation audit, structure
//!   analytics, the compression table against FP-tree baselines, and
//!   the mine-phase distributions. N is an absolute support; the
//!   default is the profile's high-support level.
//! ```
//!
//! With `--csv DIR`, every produced table is additionally written to
//! `DIR/<table-id>.csv` for external plotting.
//!
//! Environment: `CFP_BUDGET_SECS` (default 20) bounds a single algorithm
//! run in fig8 sweeps; slower algorithms are skipped at lower supports.

use cfp_bench::experiments::{self, QuestSet};
use cfp_bench::report::Table;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `bench` and `compare` are subcommands with their own flags, not
    // experiments; dispatch them before --csv handling.
    match args.first().map(String::as_str) {
        Some("bench") => run_bench(&args[1..]),
        Some("compare") => run_compare(&args[1..]),
        Some("inspect") => run_inspect(&args[1..]),
        Some("ckpt-trim") => run_ckpt_trim(&args[1..]),
        Some("ckpt-info") => run_ckpt_info(&args[1..]),
        Some("postmortem") => run_postmortem(&args[1..]),
        _ => {}
    }
    let mut csv_dir: Option<PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        if pos + 1 >= args.len() {
            eprintln!("--csv requires a directory");
            std::process::exit(2);
        }
        csv_dir = Some(PathBuf::from(args.remove(pos + 1)));
        args.remove(pos);
    }
    if args.is_empty() {
        eprintln!(
            "usage: cfp-repro [--csv DIR] <table1|table2|table3|fig6a|fig6b|fig7|fig8a|fig8d|summary|ablation|capacity|parallel|skew|profile|all> ...\n       cfp-repro bench [--out DIR]\n       cfp-repro compare BASELINE CANDIDATE [--threshold PCT]\n       cfp-repro inspect [--out PATH] [--support N] PROFILE\n       cfp-repro ckpt-trim OUTPUT CKPT_DIR\n       cfp-repro ckpt-info CKPT_DIR\n       cfp-repro postmortem BLACKBOX"
        );
        std::process::exit(2);
    }
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    for arg in &args {
        run(arg, csv_dir.as_deref());
    }
}

fn emit(id: &str, table: &Table, csv_dir: Option<&std::path::Path>) {
    println!("{}", table.render());
    if let Some(dir) = csv_dir {
        let path = dir.join(format!("{id}.csv"));
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn run(name: &str, csv_dir: Option<&std::path::Path>) {
    let start = Instant::now();
    match name {
        "table1" => emit("table1", &experiments::table1(), csv_dir),
        "table2" => emit("table2", &experiments::table2(), csv_dir),
        "table3" => emit("table3", &experiments::table3(), csv_dir),
        "fig6a" => emit("fig6a", &experiments::fig6a(), csv_dir),
        "fig6b" => emit("fig6b", &experiments::fig6b(), csv_dir),
        "fig7" => {
            let rows = experiments::fig7_sweep(None);
            emit("fig7a", &experiments::fig7a(&rows), csv_dir);
            emit("fig7b", &experiments::fig7b(&rows), csv_dir);
            emit("fig7c", &experiments::fig7c(&rows), csv_dir);
            emit("fig7d", &experiments::fig7d(&rows), csv_dir);
        }
        "fig8a" => {
            let (t, m) = experiments::fig8(QuestSet::Quest1, None);
            emit("fig8a_time", &t, csv_dir);
            emit("fig8b_memory", &m, csv_dir);
        }
        "fig8d" => {
            let (t, m) = experiments::fig8(QuestSet::Quest2, None);
            emit("fig8d_time", &t, csv_dir);
            emit("fig8d_memory", &m, csv_dir);
        }
        "summary" => emit("summary", &experiments::compression_summary(), csv_dir),
        "ablation" => emit("ablation", &experiments::ablation(), csv_dir),
        "capacity" => emit("capacity", &experiments::capacity(64 * 1024 * 1024), csv_dir),
        "parallel" => emit("parallel", &experiments::parallel_scaling(), csv_dir),
        "skew" => {
            emit("skew", &experiments::skew(), csv_dir);
            // One cfp-profile/1 document per schedule, so the steal and
            // arena-reset counters are inspectable machine-readably.
            let p = cfp_data::profiles::by_name("kosarak-like").expect("profile exists");
            let db = p.generate();
            let minsup = p.absolute_support(&db, 2);
            for schedule in [cfp_core::Schedule::Static, cfp_core::Schedule::Dynamic] {
                let miner = cfp_core::ParallelCfpGrowthMiner {
                    schedule,
                    ..cfp_core::ParallelCfpGrowthMiner::new(4)
                };
                let report = cfp_bench::report::profile_run(&miner, &db, "kosarak-like", minsup, 4)
                    .with_schedule(schedule.name());
                let name = format!("profile_skew_{}.json", schedule.name());
                let path = csv_dir.map(|d| d.join(&name)).unwrap_or_else(|| PathBuf::from(&name));
                if let Err(e) = std::fs::write(&path, report.to_json().to_pretty()) {
                    eprintln!("cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
                println!(
                    "profile: kosarak-like {} schedule  itemsets {}  -> {}",
                    schedule.name(),
                    report.itemsets,
                    path.display()
                );
            }
        }
        "profile" => {
            let db = cfp_data::profiles::by_name("quest1").expect("profile exists").generate();
            let minsup = ((db.len() as f64 * 0.02).ceil() as u64).max(1);
            let miner = cfp_core::CfpGrowthMiner::new();
            let report = cfp_bench::report::profile_run(&miner, &db, "quest1", minsup, 1);
            let path = csv_dir
                .map(|d| d.join("profile_quest1.json"))
                .unwrap_or_else(|| PathBuf::from("profile_quest1.json"));
            if let Err(e) = std::fs::write(&path, report.to_json().to_pretty()) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!(
                "profile: quest1 minsup {minsup}  itemsets {}  wall {:.3}s  -> {}",
                report.itemsets,
                report.wall_nanos as f64 / 1e9,
                path.display()
            );
        }
        "all" => {
            for e in [
                "table1", "table2", "table3", "fig6a", "fig6b", "fig7", "fig8a", "fig8d",
                "summary", "ablation", "capacity", "parallel", "skew", "profile",
            ] {
                run(e, csv_dir);
            }
            return;
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(2);
        }
    }
    eprintln!("[{name} took {:.1}s]", start.elapsed().as_secs_f64());
}

/// Arms the sequential miner with an attribution pool: every arena the
/// run carves is charged to the pool's per-component gauges, while the
/// unlimited budget keeps admission — and therefore the mined output —
/// identical to an unpooled run.
struct PooledMiner {
    inner: cfp_core::CfpGrowthMiner,
    pool: cfp_memman::BudgetPool,
}

impl cfp_data::Miner for PooledMiner {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn mine(
        &self,
        db: &cfp_data::TransactionDb,
        min_support: u64,
        sink: &mut dyn cfp_data::ItemsetSink,
    ) -> cfp_data::MineStats {
        let opts = cfp_core::MineOpts { pool: Some(self.pool.clone()), ..Default::default() };
        self.inner
            .try_mine_with(db, min_support, sink, &opts)
            .expect("an unlimited attribution pool admits every reservation")
    }
}

/// FP-tree baselines for the compression table, built from the same
/// item counts the CFP structures use.
fn fp_baselines(db: &cfp_data::TransactionDb, min_support: u64) -> cfp_core::FpBaselineBytes {
    let recoder = cfp_core::ItemRecoder::scan(db, min_support);
    let fp = cfp_fptree::FpTree::from_db(db, &recoder);
    let b = cfp_fptree::analysis::baselines(&fp);
    cfp_core::FpBaselineBytes {
        nodes: b.nodes,
        in_memory_bytes: b.in_memory_bytes,
        paper_bytes: b.paper_bytes,
        nonordfp_bytes: b.nonordfp_bytes,
    }
}

/// One entry of the fixed benchmark set `cfp-repro bench` snapshots.
/// A parallel CFP run that also commits `cfp-ckpt/1` manifests at its
/// progress boundaries — the checkpointed benchmark. Output goes to the
/// harness's counting sink (no stdout), so the snapshot's wall-time
/// delta against the identical uncheckpointed run isolates the cost of
/// the commit protocol itself.
struct CkptMiner {
    inner: cfp_core::ParallelCfpGrowthMiner,
    dataset: &'static str,
    dir: PathBuf,
    every: u64,
}

/// Forwards emissions and commits a manifest every `every` completed
/// resume units.
struct CkptAdapter<'a> {
    inner: &'a mut dyn cfp_data::ItemsetSink,
    dir: &'a std::path::Path,
    every: u64,
    template: cfp_core::Manifest,
    emitted: u64,
    last: u64,
}

impl cfp_data::ItemsetSink for CkptAdapter<'_> {
    fn emit(&mut self, itemset: &[u32], support: u64) {
        self.emitted += 1;
        self.inner.emit(itemset, support);
    }

    fn progress(&mut self, p: cfp_data::MineProgress<'_>) -> Result<(), cfp_data::CfpError> {
        let snapshot = match p {
            cfp_data::MineProgress::Items { done } => {
                cfp_core::CkptProgress::Mono { items_done: done }
            }
            cfp_data::MineProgress::SpillParts { done, remaining } => {
                cfp_core::CkptProgress::Spill { parts_done: done, remaining: remaining.to_vec() }
            }
        };
        let done = snapshot.done();
        if done >= self.last + self.every {
            let manifest = cfp_core::Manifest {
                progress: snapshot,
                itemsets: self.emitted,
                ..self.template.clone()
            };
            cfp_core::ckpt::save(self.dir, &manifest)?;
            self.last = done;
        }
        Ok(())
    }
}

impl cfp_data::Miner for CkptMiner {
    fn name(&self) -> &'static str {
        "cfp-parallel-ckpt"
    }

    fn mine(
        &self,
        db: &cfp_data::TransactionDb,
        min_support: u64,
        sink: &mut dyn cfp_data::ItemsetSink,
    ) -> cfp_data::MineStats {
        self.try_mine(db, min_support, sink).expect("checkpointed bench run failed")
    }

    fn try_mine(
        &self,
        db: &cfp_data::TransactionDb,
        min_support: u64,
        sink: &mut dyn cfp_data::ItemsetSink,
    ) -> Result<cfp_data::MineStats, cfp_data::CfpError> {
        std::fs::create_dir_all(&self.dir)?;
        let recoder = cfp_data::ItemRecoder::scan(db, min_support);
        let template = cfp_core::Manifest {
            input: self.dataset.to_string(),
            min_support,
            counts: cfp_core::ckpt::counts_fingerprint(&recoder),
            num_items: recoder.num_items() as u64,
            output: "all".to_string(),
            progress: cfp_core::CkptProgress::Mono { items_done: 0 },
            output_bytes: 0,
            itemsets: 0,
        };
        let mut adapter = CkptAdapter {
            inner: sink,
            dir: &self.dir,
            every: self.every,
            template,
            emitted: 0,
            last: 0,
        };
        let stats = self.inner.try_mine(db, min_support, &mut adapter)?;
        cfp_core::ckpt::clear(&self.dir);
        let _ = std::fs::remove_dir_all(&self.dir);
        Ok(stats)
    }
}

struct Bench {
    name: &'static str,
    miner: Box<dyn cfp_data::Miner>,
    dataset: &'static str,
    minsup: u64,
    threads: u64,
    /// The attribution pool the miner above is armed with; read back
    /// after the run for the snapshot's memory summary.
    pool: cfp_memman::BudgetPool,
}

/// The fixed benchmark set: one sequential, one parallel-with-steals,
/// and one dense workload, all deterministic.
fn bench_set() -> Vec<Bench> {
    let quest1 = cfp_data::profiles::by_name("quest1").expect("profile exists");
    let kosarak = cfp_data::profiles::by_name("kosarak-like").expect("profile exists");
    let connect = cfp_data::profiles::by_name("connect-like").expect("profile exists");
    let q_db = quest1.generate();
    let k_db = kosarak.generate();
    let c_db = connect.generate();
    let q_pool = cfp_memman::BudgetPool::unlimited();
    let k_pool = cfp_memman::BudgetPool::unlimited();
    let kc_pool = cfp_memman::BudgetPool::unlimited();
    let kcl_pool = cfp_memman::BudgetPool::unlimited();
    let c_pool = cfp_memman::BudgetPool::unlimited();
    vec![
        Bench {
            name: "quest1-seq",
            miner: Box::new(PooledMiner {
                inner: cfp_core::CfpGrowthMiner::new(),
                pool: q_pool.clone(),
            }),
            dataset: "quest1",
            minsup: ((q_db.len() as f64 * 0.02).ceil() as u64).max(1),
            threads: 1,
            pool: q_pool,
        },
        Bench {
            name: "kosarak-par4",
            miner: Box::new(cfp_core::ParallelCfpGrowthMiner {
                schedule: cfp_core::Schedule::Dynamic,
                pool: Some(k_pool.clone()),
                ..cfp_core::ParallelCfpGrowthMiner::new(4)
            }),
            dataset: "kosarak-like",
            minsup: kosarak.absolute_support(&k_db, 2),
            threads: 4,
            pool: k_pool,
        },
        Bench {
            // kosarak-par4 with the checkpoint commit protocol armed:
            // the wall-time delta between the two snapshots is the
            // price of crash safety (manifest commits at watermark
            // boundaries), pinned by results/BENCH_kosarak-ckpt.json.
            name: "kosarak-ckpt",
            miner: Box::new(CkptMiner {
                inner: cfp_core::ParallelCfpGrowthMiner {
                    schedule: cfp_core::Schedule::Dynamic,
                    pool: Some(kc_pool.clone()),
                    ..cfp_core::ParallelCfpGrowthMiner::new(4)
                },
                dataset: "kosarak-like",
                dir: std::env::temp_dir().join(format!("cfp-bench-ckpt-{}", std::process::id())),
                every: 32,
            }),
            dataset: "kosarak-like",
            minsup: kosarak.absolute_support(&k_db, 2),
            threads: 4,
            pool: kc_pool,
        },
        Bench {
            // kosarak-par4 in first-class closed mode: the wall-time
            // delta against kosarak-par4 prices the in-recursion
            // closure checks plus the ordered-emitter reconcile, pinned
            // by results/BENCH_kosarak-closed.json.
            name: "kosarak-closed",
            miner: Box::new(cfp_core::ParallelCfpGrowthMiner {
                schedule: cfp_core::Schedule::Dynamic,
                pool: Some(kcl_pool.clone()),
                output: cfp_core::OutputMode::Closed,
                ..cfp_core::ParallelCfpGrowthMiner::new(4)
            }),
            dataset: "kosarak-like",
            minsup: kosarak.absolute_support(&k_db, 2),
            threads: 4,
            pool: kcl_pool,
        },
        Bench {
            name: "connect-seq",
            miner: Box::new(PooledMiner {
                inner: cfp_core::CfpGrowthMiner::new(),
                pool: c_pool.clone(),
            }),
            dataset: "connect-like",
            minsup: connect.absolute_support(&c_db, 0),
            threads: 1,
            pool: c_pool,
        },
    ]
}

/// `cfp-repro ckpt-trim OUTPUT CKPT_DIR` — truncate a crashed run's
/// output file to its manifest's durable watermark so `--resume` can
/// append to it byte-exactly. A crash (SIGKILL, power loss) can leave
/// auto-flushed bytes past the last committed manifest; those are
/// exactly the bytes a resumed run will re-emit, so they must go.
fn run_ckpt_trim(args: &[String]) -> ! {
    let [output, dir] = args else {
        eprintln!("usage: cfp-repro ckpt-trim OUTPUT CKPT_DIR");
        std::process::exit(2);
    };
    let watermark = match cfp_core::ckpt::load(std::path::Path::new(dir)) {
        Ok(Some(m)) => {
            println!(
                "manifest: {} unit(s) done ({} mode), watermark {} byte(s)",
                m.progress.done(),
                m.progress.mode(),
                m.output_bytes
            );
            m.output_bytes
        }
        // No commit ever happened: everything in the file is
        // uncommitted and the fresh run re-emits it all.
        Ok(None) => {
            println!("no manifest in {dir}; trimming {output} to 0 bytes");
            0
        }
        Err(e) => {
            eprintln!("cfp-repro: {e}");
            std::process::exit(e.exit_code());
        }
    };
    let file =
        match std::fs::OpenOptions::new().write(true).create(true).truncate(false).open(output) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cfp-repro: cannot open {output}: {e}");
                std::process::exit(1);
            }
        };
    let len = file.metadata().map(|m| m.len()).unwrap_or(0);
    if len < watermark {
        eprintln!(
            "cfp-repro: {output} holds {len} byte(s) but the manifest committed {watermark}: \
             the output lost durable bytes, resume would corrupt the stream"
        );
        std::process::exit(9);
    }
    if let Err(e) = file.set_len(watermark) {
        eprintln!("cfp-repro: cannot truncate {output}: {e}");
        std::process::exit(1);
    }
    println!("trimmed {output}: {len} -> {watermark} byte(s)");
    std::process::exit(0);
}

/// `cfp-repro ckpt-info CKPT_DIR` — print the validated manifest.
fn run_ckpt_info(args: &[String]) -> ! {
    let [dir] = args else {
        eprintln!("usage: cfp-repro ckpt-info CKPT_DIR");
        std::process::exit(2);
    };
    match cfp_core::ckpt::load(std::path::Path::new(dir)) {
        Ok(Some(m)) => {
            print!("{}", m.to_json_text());
            std::process::exit(0);
        }
        Ok(None) => {
            eprintln!("cfp-repro: no checkpoint manifest in {dir}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("cfp-repro: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

/// `cfp-repro postmortem BLACKBOX` — verify and render a flight-recorder
/// dump. Accepts the blackbox.json file itself or the `--blackbox`
/// directory that contains it.
fn run_postmortem(args: &[String]) -> ! {
    let [path] = args else {
        eprintln!("usage: cfp-repro postmortem BLACKBOX");
        std::process::exit(2);
    };
    let mut path = PathBuf::from(path);
    if path.is_dir() {
        path = path.join("blackbox.json");
    }
    match cfp_trace::blackbox::load(&path) {
        Ok(body) => {
            print!("{}", cfp_trace::blackbox::render(&body));
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("cfp-repro: {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// `cfp-repro bench [--out DIR]` — snapshot the fixed benchmark set.
fn run_bench(args: &[String]) -> ! {
    let mut out_dir = PathBuf::from("results");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown bench argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    for Bench { name, miner, dataset, minsup, threads, pool } in bench_set() {
        let db = cfp_data::profiles::by_name(dataset).expect("profile exists").generate();
        let report = cfp_bench::report::profile_run(miner.as_ref(), &db, dataset, minsup, threads);
        // A post-run analytics pass over the same pool: the snapshot
        // carries per-component peaks and the reconciliation verdict.
        let run = cfp_core::MemStatRun { dataset, algorithm: miner.name(), threads };
        let memstat =
            cfp_core::collect_memstat(&db, minsup, &run, &pool, Some(fp_baselines(&db, minsup)))
                .unwrap_or_else(|e| {
                    eprintln!("bench {name}: memory attribution failed: {e}");
                    std::process::exit(1);
                });
        let snap = cfp_bench::snapshot::BenchSnapshot::from_report(name, &report)
            .with_memstat(memstat.summary());
        let path = out_dir.join(format!("BENCH_{name}.json"));
        if let Err(e) = std::fs::write(&path, snap.to_json().to_pretty()) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "bench: {name}  itemsets {}  wall {:.3}s  peak {} MiB  steals {}  audit {}  -> {}",
            snap.itemsets,
            snap.wall_nanos as f64 / 1e9,
            cfp_bench::report::mib(snap.peak_bytes),
            snap.steals,
            if snap.memstat.as_ref().is_some_and(|m| m.reconciled) { "ok" } else { "FAILED" },
            path.display()
        );
    }
    std::process::exit(0);
}

/// `cfp-repro inspect [--out PATH] [--support N] PROFILE` — mine one
/// profile with an attribution pool and emit the cfp-memstat/1 report.
fn run_inspect(args: &[String]) -> ! {
    let mut out: Option<PathBuf> = None;
    let mut support: Option<u64> = None;
    let mut profile_name: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            "--support" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => support = Some(n),
                _ => {
                    eprintln!("--support requires a positive absolute count");
                    std::process::exit(2);
                }
            },
            other if profile_name.is_none() && !other.starts_with('-') => {
                profile_name = Some(other.to_string());
            }
            other => {
                eprintln!("unknown inspect argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(name) = profile_name else {
        eprintln!("usage: cfp-repro inspect [--out PATH] [--support N] PROFILE");
        std::process::exit(2);
    };
    let Some(profile) = cfp_data::profiles::by_name(&name) else {
        let known: Vec<&str> = cfp_data::profiles::all().iter().map(|p| p.name).collect();
        eprintln!("unknown profile {name:?}; known profiles: {}", known.join(", "));
        std::process::exit(2);
    };
    let db = profile.generate();
    let minsup = support.unwrap_or_else(|| profile.absolute_support(&db, 0));
    // Mine with the pool armed so the mine-phase histograms and the
    // cond-tree/cond-array components are populated, then run the
    // analytics pass over the same pool.
    let pool = cfp_memman::BudgetPool::unlimited();
    let miner = PooledMiner { inner: cfp_core::CfpGrowthMiner::new(), pool: pool.clone() };
    let report = cfp_bench::report::profile_run(&miner, &db, &name, minsup, 1);
    let run = cfp_core::MemStatRun { dataset: &name, algorithm: "cfp", threads: 1 };
    let memstat =
        cfp_core::collect_memstat(&db, minsup, &run, &pool, Some(fp_baselines(&db, minsup)))
            .unwrap_or_else(|e| {
                eprintln!("inspect {name}: memory attribution failed: {e}");
                std::process::exit(1);
            });
    eprintln!(
        "inspect: {name}  minsup {minsup}  itemsets {}  pool peak {} MiB  audit {}",
        report.itemsets,
        cfp_bench::report::mib(memstat.summary().pool_peak),
        if memstat.audit.reconciled { "ok" } else { "FAILED" },
    );
    let text = memstat.to_json().to_pretty();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("inspect: report -> {}", path.display());
        }
        None => println!("{text}"),
    }
    std::process::exit(if memstat.audit.reconciled { 0 } else { 1 });
}

/// `cfp-repro compare BASELINE CANDIDATE [--threshold PCT]` — exits 1 on
/// regression.
fn run_compare(args: &[String]) -> ! {
    let mut threshold_pct = 25.0;
    let mut files: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) => threshold_pct = pct,
                None => {
                    eprintln!("--threshold requires a percentage");
                    std::process::exit(2);
                }
            },
            _ => files.push(arg),
        }
    }
    let [baseline_path, candidate_path] = files[..] else {
        eprintln!("usage: cfp-repro compare BASELINE CANDIDATE [--threshold PCT]");
        std::process::exit(2);
    };
    let load = |path: &str| {
        cfp_bench::snapshot::BenchSnapshot::load(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        })
    };
    let baseline = load(baseline_path);
    let candidate = load(candidate_path);
    if baseline.name != candidate.name {
        eprintln!(
            "warning: comparing different benchmarks ({:?} vs {:?})",
            baseline.name, candidate.name
        );
    }
    println!("compare: {} (threshold {threshold_pct}%)", baseline.name);
    let deltas = cfp_bench::snapshot::compare(&baseline, &candidate, threshold_pct);
    let mut regressed = false;
    for d in &deltas {
        let flag = if d.regressed { "  REGRESSED" } else { "" };
        println!(
            "  {:<16} {:>14} -> {:>14}  {:>+8.1}%{flag}",
            d.metric, d.baseline, d.candidate, d.change_pct
        );
        regressed |= d.regressed;
    }
    if regressed {
        eprintln!("compare: regression past {threshold_pct}% threshold");
        std::process::exit(1);
    }
    println!("compare: ok");
    std::process::exit(0);
}
