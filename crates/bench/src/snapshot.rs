//! Benchmark snapshots and regression comparison.
//!
//! `cfp-repro bench` distils a traced run ([`crate::report::profile_run`])
//! into a small `cfp-bench/1` JSON document — phase wall times, peak
//! bytes, steal count, itemsets — written as `results/BENCH_<name>.json`.
//! `cfp-repro compare old.json new.json` diffs two such snapshots and
//! exits non-zero when the candidate regressed past a percentage
//! threshold, so CI can keep a baseline file and catch performance
//! regressions without any external tooling.

use cfp_trace::json::{self, Json};
use cfp_trace::{MemSummary, RunReport};
use std::path::Path;

/// Schema identifier of the snapshot layout.
pub const SCHEMA: &str = "cfp-bench/1";

/// Phases shorter than this in the baseline are skipped by [`compare`]:
/// their relative timing is scheduler noise, not signal.
pub const PHASE_FLOOR_NANOS: u64 = 1_000_000;

/// One benchmark run, reduced to the numbers worth diffing.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSnapshot {
    /// Benchmark name (also names the `BENCH_<name>.json` file).
    pub name: String,
    /// Dataset profile the benchmark mined.
    pub dataset: String,
    /// Absolute minimum support.
    pub min_support: u64,
    /// Worker threads.
    pub threads: u64,
    /// Frequent itemsets found — a correctness check, not a perf number.
    pub itemsets: u64,
    /// End-to-end wall time.
    pub wall_nanos: u64,
    /// Accumulated `(phase, nanos)` wall times, in pipeline order.
    pub phases: Vec<(String, u64)>,
    /// Peak tracked bytes.
    pub peak_bytes: u64,
    /// Dynamic-schedule steals during the mine phase.
    pub steals: u64,
    /// Condensed-mode pruning counters (`core.closed_pruned`,
    /// `core.maximal_pruned`, `core.topk_pruned`), present only when the
    /// run pruned anything — all-itemsets benchmarks (and snapshots
    /// taken before this field existed) omit the block entirely.
    pub pruning: Vec<(String, u64)>,
    /// Per-component memory attribution (absent in snapshots taken
    /// before the memstat report existed — old files must keep parsing).
    pub memstat: Option<MemSummary>,
}

/// The pruning counters a snapshot pins, in registry order.
const PRUNING_COUNTERS: [&str; 3] =
    ["core.closed_pruned", "core.maximal_pruned", "core.topk_pruned"];

impl BenchSnapshot {
    /// Reduces a traced run report to a snapshot.
    pub fn from_report(name: &str, report: &RunReport) -> Self {
        let counter = |name: &str| {
            report.counters.iter().find(|&&(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
        };
        let steals = counter("core.tasks_stolen");
        let mut pruning: Vec<(String, u64)> =
            PRUNING_COUNTERS.iter().map(|&n| (n.to_string(), counter(n))).collect();
        if pruning.iter().all(|&(_, v)| v == 0) {
            pruning.clear();
        }
        BenchSnapshot {
            name: name.to_string(),
            dataset: report.dataset.clone(),
            min_support: report.support,
            threads: report.threads,
            itemsets: report.itemsets,
            wall_nanos: report.wall_nanos,
            phases: report.phases.iter().map(|p| (p.name.to_string(), p.nanos)).collect(),
            peak_bytes: report.peak_bytes,
            steals,
            pruning,
            memstat: report.memstat.clone(),
        }
    }

    /// Attaches a memory-attribution summary (builder style).
    pub fn with_memstat(mut self, summary: MemSummary) -> Self {
        self.memstat = Some(summary);
        self
    }

    /// Serialises to the `cfp-bench/1` JSON document.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("name".into(), Json::str(self.name.clone())),
            ("dataset".into(), Json::str(self.dataset.clone())),
            ("min_support".into(), Json::u64(self.min_support)),
            ("threads".into(), Json::u64(self.threads)),
            ("itemsets".into(), Json::u64(self.itemsets)),
            ("wall_nanos".into(), Json::u64(self.wall_nanos)),
            (
                "phases".into(),
                Json::Obj(
                    self.phases
                        .iter()
                        .map(|(name, nanos)| (name.clone(), Json::u64(*nanos)))
                        .collect(),
                ),
            ),
            ("peak_bytes".into(), Json::u64(self.peak_bytes)),
            ("steals".into(), Json::u64(self.steals)),
        ];
        if !self.pruning.is_empty() {
            fields.push((
                "pruning".into(),
                Json::Obj(
                    self.pruning.iter().map(|(name, v)| (name.clone(), Json::u64(*v))).collect(),
                ),
            ));
        }
        if let Some(m) = &self.memstat {
            fields.push(("memstat".into(), m.to_json()));
        }
        Json::Obj(fields)
    }

    /// Parses a snapshot document, checking the schema first.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("<missing>");
        if schema != SCHEMA {
            return Err(format!("unsupported snapshot schema {schema:?} (want {SCHEMA:?})"));
        }
        let str_field = |name: &str| -> Result<String, String> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("snapshot field {name:?} missing or not a string"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("snapshot field {name:?} missing or not an integer"))
        };
        let phases = match doc.get("phases") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(name, v)| {
                    v.as_u64()
                        .map(|nanos| (name.clone(), nanos))
                        .ok_or_else(|| format!("phase {name:?} is not an integer"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("snapshot field \"phases\" missing or not an object".into()),
        };
        // Optional, like memstat: absent in all-itemsets runs and in
        // snapshots written before condensed mining existed.
        let pruning = match doc.get("pruning") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(name, v)| {
                    v.as_u64()
                        .map(|n| (name.clone(), n))
                        .ok_or_else(|| format!("pruning counter {name:?} is not an integer"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        Ok(BenchSnapshot {
            name: str_field("name")?,
            dataset: str_field("dataset")?,
            min_support: u64_field("min_support")?,
            threads: u64_field("threads")?,
            itemsets: u64_field("itemsets")?,
            wall_nanos: u64_field("wall_nanos")?,
            phases,
            peak_bytes: u64_field("peak_bytes")?,
            steals: u64_field("steals")?,
            pruning,
            memstat: doc.get("memstat").map(MemSummary::from_json),
        })
    }

    /// Loads and parses a snapshot file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&doc)
    }
}

/// One metric's change between two snapshots, produced by [`compare`].
#[derive(Clone, Debug)]
pub struct Delta {
    /// Metric name (`"wall_nanos"`, `"peak_bytes"`, `"phase mine"`, ...).
    pub metric: String,
    /// Baseline value.
    pub baseline: u64,
    /// Candidate value.
    pub candidate: u64,
    /// Signed percentage change relative to the baseline.
    pub change_pct: f64,
    /// Whether the change exceeds the caller's regression threshold.
    pub regressed: bool,
}

fn delta(metric: &str, baseline: u64, candidate: u64, threshold_pct: f64) -> Delta {
    let change_pct = if baseline == 0 {
        if candidate == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (candidate as f64 - baseline as f64) / baseline as f64 * 100.0
    };
    Delta {
        metric: metric.to_string(),
        baseline,
        candidate,
        change_pct,
        regressed: change_pct > threshold_pct,
    }
}

/// Diffs `candidate` against `baseline`: wall time, peak bytes, and every
/// phase at least [`PHASE_FLOOR_NANOS`] long in the baseline, each flagged
/// when it grew more than `threshold_pct` percent. An itemsets mismatch is
/// always flagged — a benchmark that mines a different result is not
/// comparable, it is broken.
///
/// When both snapshots carry a memstat summary, the pool peak and every
/// baseline component peak are diffed too, so a memory regression in one
/// component fails CI even if the total stays flat. A candidate whose
/// audit did not reconcile is always flagged — its numbers cannot be
/// trusted. Snapshots without memstat (pre-attribution files) skip the
/// memory deltas rather than erroring.
pub fn compare(
    baseline: &BenchSnapshot,
    candidate: &BenchSnapshot,
    threshold_pct: f64,
) -> Vec<Delta> {
    let mut deltas = Vec::new();
    let mut itemsets = delta("itemsets", baseline.itemsets, candidate.itemsets, threshold_pct);
    itemsets.regressed = baseline.itemsets != candidate.itemsets;
    deltas.push(itemsets);
    deltas.push(delta("wall_nanos", baseline.wall_nanos, candidate.wall_nanos, threshold_pct));
    deltas.push(delta("peak_bytes", baseline.peak_bytes, candidate.peak_bytes, threshold_pct));
    for (name, base_nanos) in &baseline.phases {
        if *base_nanos < PHASE_FLOOR_NANOS {
            continue;
        }
        let cand_nanos =
            candidate.phases.iter().find(|(n, _)| n == name).map(|&(_, nanos)| nanos).unwrap_or(0);
        deltas.push(delta(&format!("phase {name}"), *base_nanos, cand_nanos, threshold_pct));
    }
    // Pruning counters are correctness numbers like itemsets: for the same
    // dataset and mode the miner must prune the same sets, so any drift is
    // flagged regardless of the percentage threshold. Snapshots without
    // the block (all-itemsets runs, pre-condensed baselines) skip these
    // rows entirely.
    if !baseline.pruning.is_empty() && !candidate.pruning.is_empty() {
        for (name, base_pruned) in &baseline.pruning {
            let cand_pruned =
                candidate.pruning.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0);
            let mut row = delta(&format!("pruning {name}"), *base_pruned, cand_pruned, 0.0);
            row.regressed = *base_pruned != cand_pruned;
            deltas.push(row);
        }
    }
    if let (Some(base_mem), Some(cand_mem)) = (&baseline.memstat, &candidate.memstat) {
        deltas.push(delta("mem pool_peak", base_mem.pool_peak, cand_mem.pool_peak, threshold_pct));
        for (name, base_peak) in &base_mem.component_peaks {
            let cand_peak = cand_mem
                .component_peaks
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, peak)| peak)
                .unwrap_or(0);
            deltas.push(delta(&format!("mem {name}"), *base_peak, cand_peak, threshold_pct));
        }
        if !cand_mem.reconciled {
            deltas.push(Delta {
                metric: "mem reconciled".into(),
                baseline: base_mem.reconciled as u64,
                candidate: 0,
                change_pct: -100.0,
                regressed: true,
            });
        }
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(wall: u64, peak: u64, mine_nanos: u64) -> BenchSnapshot {
        BenchSnapshot {
            name: "quest1-seq".into(),
            dataset: "quest1".into(),
            min_support: 40,
            threads: 1,
            itemsets: 1234,
            wall_nanos: wall,
            phases: vec![
                ("read".into(), 0),
                ("build".into(), 30_000_000),
                ("mine".into(), mine_nanos),
            ],
            peak_bytes: peak,
            steals: 0,
            pruning: vec![],
            memstat: None,
        }
    }

    fn pruning(closed: u64, maximal: u64, topk: u64) -> Vec<(String, u64)> {
        vec![
            ("core.closed_pruned".into(), closed),
            ("core.maximal_pruned".into(), maximal),
            ("core.topk_pruned".into(), topk),
        ]
    }

    fn mem(pool_peak: u64, tree_peak: u64, arrays_peak: u64) -> MemSummary {
        MemSummary {
            pool_peak,
            reconciled: true,
            component_peaks: vec![
                ("build-tree".into(), tree_peak),
                ("cond-arrays".into(), arrays_peak),
            ],
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = snapshot(100_000_000, 5 << 20, 60_000_000);
        let text = snap.to_json().to_pretty();
        let parsed = BenchSnapshot::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn snapshot_with_memstat_round_trips_and_emits_the_block() {
        let snap = snapshot(100_000_000, 5 << 20, 60_000_000).with_memstat(mem(9000, 8000, 1500));
        let text = snap.to_json().to_pretty();
        assert!(text.contains("\"memstat\""), "{text}");
        let parsed = BenchSnapshot::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, snap);
        // A snapshot without the summary omits the key entirely.
        let bare = snapshot(1, 1, 1).to_json().to_pretty();
        assert!(!bare.contains("memstat"), "{bare}");
    }

    #[test]
    fn unknown_fields_and_absent_memstat_are_tolerated() {
        // Forward compatibility: a snapshot written by a newer build with
        // extra fields — or an older one without memstat — must parse.
        let mut doc = snapshot(100, 200, 300).to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.push(("future_field".into(), Json::str("ignored")));
            fields.push(("another".into(), Json::Obj(vec![("x".into(), Json::u64(1))])));
        }
        let parsed = BenchSnapshot::from_json(&doc).unwrap();
        assert_eq!(parsed, snapshot(100, 200, 300));
        assert_eq!(parsed.memstat, None);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let doc = json::parse(r#"{"schema": "cfp-bench/9"}"#).unwrap();
        let err = BenchSnapshot::from_json(&doc).unwrap_err();
        assert!(err.contains("cfp-bench/9"), "{err}");
    }

    #[test]
    fn identical_snapshots_do_not_regress() {
        let snap = snapshot(100_000_000, 5 << 20, 60_000_000);
        assert!(compare(&snap, &snap, 10.0).iter().all(|d| !d.regressed));
    }

    #[test]
    fn slowdown_past_the_threshold_regresses() {
        let base = snapshot(100_000_000, 5 << 20, 60_000_000);
        let slow = snapshot(150_000_000, 5 << 20, 95_000_000);
        let deltas = compare(&base, &slow, 25.0);
        let wall = deltas.iter().find(|d| d.metric == "wall_nanos").unwrap();
        assert!(wall.regressed, "{wall:?}");
        assert!((wall.change_pct - 50.0).abs() < 1e-9);
        let mine = deltas.iter().find(|d| d.metric == "phase mine").unwrap();
        assert!(mine.regressed, "{mine:?}");
        // Improvements and in-threshold moves pass.
        assert!(compare(&base, &snapshot(110_000_000, 5 << 20, 62_000_000), 25.0)
            .iter()
            .all(|d| !d.regressed));
        assert!(compare(&slow, &base, 25.0).iter().all(|d| !d.regressed), "speedup flagged");
    }

    #[test]
    fn component_memory_regression_is_flagged() {
        let base = snapshot(100, 100, 100).with_memstat(mem(9000, 8000, 1000));
        // Total pool peak flat, but one component doubled: still flagged.
        let mut grown = base.clone();
        grown.memstat = Some(mem(9000, 8000, 2500));
        let deltas = compare(&base, &grown, 25.0);
        let arrays = deltas.iter().find(|d| d.metric == "mem cond-arrays").unwrap();
        assert!(arrays.regressed, "{arrays:?}");
        let pool = deltas.iter().find(|d| d.metric == "mem pool_peak").unwrap();
        assert!(!pool.regressed, "{pool:?}");
        // In-threshold memory moves pass.
        let mut ok = base.clone();
        ok.memstat = Some(mem(9100, 8100, 1100));
        assert!(compare(&base, &ok, 25.0).iter().all(|d| !d.regressed));
    }

    #[test]
    fn unreconciled_candidate_always_regresses() {
        let base = snapshot(100, 100, 100).with_memstat(mem(9000, 8000, 1000));
        let mut broken = base.clone();
        if let Some(m) = &mut broken.memstat {
            m.reconciled = false;
        }
        let deltas = compare(&base, &broken, 1_000_000.0);
        assert!(deltas.iter().any(|d| d.metric == "mem reconciled" && d.regressed), "{deltas:?}");
    }

    #[test]
    fn memoryless_snapshots_skip_memory_deltas() {
        // An old baseline without memstat compares cleanly against a new
        // candidate that has one (and vice versa) — no memory rows.
        let old = snapshot(100, 100, 100);
        let new = snapshot(100, 100, 100).with_memstat(mem(9000, 8000, 1000));
        for (a, b) in [(&old, &new), (&new, &old)] {
            let deltas = compare(a, b, 25.0);
            assert!(deltas.iter().all(|d| !d.metric.starts_with("mem ")), "{deltas:?}");
            assert!(deltas.iter().all(|d| !d.regressed));
        }
    }

    #[test]
    fn pruning_counters_round_trip_and_are_omitted_when_empty() {
        let mut snap = snapshot(100, 200, 300);
        snap.pruning = pruning(42, 7, 0);
        let text = snap.to_json().to_pretty();
        assert!(text.contains("\"pruning\""), "{text}");
        assert!(text.contains("core.closed_pruned"), "{text}");
        let parsed = BenchSnapshot::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, snap);
        // An all-itemsets snapshot omits the block, and a document without
        // it (an old baseline) parses back to the empty vec.
        let bare = snapshot(100, 200, 300);
        let bare_text = bare.to_json().to_pretty();
        assert!(!bare_text.contains("pruning"), "{bare_text}");
        let reparsed = BenchSnapshot::from_json(&json::parse(&bare_text).unwrap()).unwrap();
        assert!(reparsed.pruning.is_empty());
    }

    #[test]
    fn from_report_surfaces_nonzero_pruning_counters() {
        let mut report = RunReport {
            dataset: "kosarak-like".into(),
            transactions: 1000,
            support: 8,
            algorithm: "cfp-growth-closed".into(),
            threads: 1,
            schedule: None,
            itemsets: 77,
            wall_nanos: 5_000,
            phases: vec![],
            counters: vec![("core.closed_pruned", 55), ("core.patterns", 77)],
            histograms: vec![],
            peak_bytes: 9_000,
            final_bytes: 0,
            samples: vec![],
            degradation: None,
            events: None,
            memstat: None,
        };
        let snap = BenchSnapshot::from_report("kosarak-closed", &report);
        assert_eq!(snap.pruning, pruning(55, 0, 0));
        // All-zero pruning (an all-itemsets run) keeps the block out.
        report.counters = vec![("core.patterns", 77)];
        let bare = BenchSnapshot::from_report("kosarak-seq", &report);
        assert!(bare.pruning.is_empty());
    }

    #[test]
    fn pruning_drift_always_regresses() {
        let mut base = snapshot(100, 100, 100);
        base.pruning = pruning(42, 0, 0);
        let mut drifted = base.clone();
        drifted.pruning = pruning(41, 0, 0);
        let deltas = compare(&base, &drifted, 1_000_000.0);
        let row = deltas.iter().find(|d| d.metric == "pruning core.closed_pruned").unwrap();
        assert!(row.regressed, "{row:?}");
        // Identical pruning passes, and snapshots without the block skip
        // the rows entirely (old baseline vs new candidate).
        assert!(compare(&base, &base, 10.0).iter().all(|d| !d.regressed));
        let old = snapshot(100, 100, 100);
        let deltas = compare(&old, &base, 10.0);
        assert!(deltas.iter().all(|d| !d.metric.starts_with("pruning ")), "{deltas:?}");
    }

    #[test]
    fn itemsets_mismatch_always_regresses() {
        let base = snapshot(100, 100, 100);
        let mut wrong = base.clone();
        wrong.itemsets += 1;
        let deltas = compare(&base, &wrong, 1_000_000.0);
        assert!(deltas.iter().any(|d| d.metric == "itemsets" && d.regressed));
    }

    #[test]
    fn sub_floor_phases_are_ignored() {
        let base = snapshot(100_000_000, 5 << 20, 60_000_000);
        let mut noisy = base.clone();
        // "read" is 0ns in the baseline: even a huge relative change in a
        // sub-millisecond phase must not flag.
        noisy.phases[0].1 = 900_000;
        let deltas = compare(&base, &noisy, 10.0);
        assert!(!deltas.iter().any(|d| d.metric == "phase read"), "{deltas:?}");
    }

    #[test]
    fn from_report_extracts_steals_from_the_counters() {
        // Built as a literal rather than via RunReport::capture so this
        // test does not touch the global counter registry (which other
        // tests in this binary reset concurrently).
        let report = RunReport {
            dataset: "kosarak-like".into(),
            transactions: 1000,
            support: 8,
            algorithm: "cfp-growth-parallel".into(),
            threads: 4,
            schedule: Some("dynamic".into()),
            itemsets: 77,
            wall_nanos: 5_000,
            phases: vec![cfp_trace::span::PhaseSpan { name: "mine", nanos: 4_000, count: 4 }],
            counters: vec![("core.tasks_stolen", 2), ("core.workers", 4)],
            histograms: vec![],
            peak_bytes: 9_000,
            final_bytes: 0,
            samples: vec![],
            degradation: None,
            events: None,
            memstat: None,
        };
        let snap = BenchSnapshot::from_report("kosarak-par4", &report);
        assert_eq!(snap.steals, 2);
        assert_eq!(snap.itemsets, 77);
        assert_eq!(snap.threads, 4);
        assert_eq!(snap.phases, vec![("mine".to_string(), 4_000)]);
        assert!(snap.pruning.is_empty());
    }
}
