//! Plain-text table rendering for experiment reports, plus traced runs
//! producing machine-readable `cfp-profile/2` documents.

use cfp_data::miner::CountingSink;
use cfp_data::{Miner, TransactionDb};
use cfp_trace::{MemSampler, RunReport};
use std::time::{Duration, Instant};

/// Runs `miner` once with tracing enabled and returns the machine-readable
/// run report ([`cfp_trace::report::SCHEMA`]). The global registry is reset
/// first so the report covers exactly this run; the previous trace-enabled
/// state is restored afterwards.
pub fn profile_run(
    miner: &dyn Miner,
    db: &TransactionDb,
    dataset: &str,
    min_support: u64,
    threads: u64,
) -> RunReport {
    let was_enabled = cfp_trace::enabled();
    cfp_trace::set_enabled(true);
    cfp_trace::reset();
    let sampler = MemSampler::start(Duration::from_millis(10));
    let started = Instant::now();
    let mut sink = CountingSink::new();
    let stats = miner.mine(db, min_support, &mut sink);
    let wall_nanos = started.elapsed().as_nanos() as u64;
    let samples = sampler.stop();
    let report = RunReport::capture(
        dataset,
        db.len() as u64,
        min_support,
        miner.name(),
        threads,
        stats.itemsets,
        wall_nanos,
        samples,
    );
    cfp_trace::set_enabled(was_enabled);
    report
}

/// A titled table with aligned columns.
#[derive(Clone, Debug)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; short rows are padded with empty cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len().max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width.saturating_sub(cell.chars().count());
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

impl Table {
    /// Renders the table as CSV (headers + rows; cells quoted when they
    /// contain commas or quotes).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| cell(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a byte count in MiB with 2 decimals.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["short".into(), "1".into()]);
        t.push_row(vec!["a-much-longer-name".into(), "23456".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows share the column start of the second column.
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1'), Some(col));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.push_row(vec!["only-one".into()]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn csv_escapes_and_emits_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "plain".into()]);
        t.push_row(vec!["quote\"inside".into(), "2".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "\"1,5\",plain");
        assert_eq!(lines[2], "\"quote\"\"inside\",2");
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(mib(3 * 1024 * 1024), "3.00");
    }

    #[test]
    fn profile_run_produces_a_populated_report() {
        let db = crate::bench_quest(400);
        let miner = cfp_core::CfpGrowthMiner::new();
        let report = profile_run(&miner, &db, "bench-quest-400", 15, 1);
        assert_eq!(report.dataset, "bench-quest-400");
        assert_eq!(report.transactions, 400);
        assert!(report.itemsets > 0);
        assert!(report.wall_nanos > 0);
        assert!(report.samples.len() >= 2);
        // Count/build/convert/mine all ran under tracing (read is the
        // CLI's file pass; recover and spill belong to the supervisor's
        // escalation ladder; all three stay zero here).
        for p in &report.phases {
            if !matches!(p.name, "read" | "recover" | "spill") {
                assert!(p.count > 0, "phase {} not recorded", p.name);
            }
        }
        let trees =
            report.counters.iter().find(|(n, _)| *n == "core.conditional_trees").map(|&(_, v)| v);
        assert!(trees.unwrap_or(0) > 0, "conditional trees counted");
        assert!(!cfp_trace::enabled(), "previous enabled state restored");
    }
}
