//! Microbenchmarks of the lightweight codecs (§2.3): the paper's choice
//! of byte-level static encodings hinges on their per-value cost being a
//! handful of nanoseconds.

use cfp_encoding::{varint, zerosup, zigzag};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn values() -> Vec<u64> {
    // Mix mimicking CFP fields: mostly tiny, occasionally large.
    (0..4096u64)
        .map(|i| match i % 8 {
            0..=5 => i % 120,
            6 => 300 + i,
            _ => 1 << (i % 30),
        })
        .collect()
}

fn bench_varint(c: &mut Criterion) {
    let vals = values();
    let mut g = c.benchmark_group("varint");
    g.throughput(Throughput::Elements(vals.len() as u64));
    g.bench_function("encode", |b| {
        let mut out = Vec::with_capacity(vals.len() * 5);
        b.iter(|| {
            out.clear();
            for &v in &vals {
                varint::write_u64(&mut out, black_box(v));
            }
            black_box(out.len())
        });
    });
    let mut encoded = Vec::new();
    for &v in &vals {
        varint::write_u64(&mut encoded, v);
    }
    g.bench_function("decode", |b| {
        b.iter(|| {
            let mut at = 0;
            let mut sum = 0u64;
            while at < encoded.len() {
                let (v, n) = varint::read_u64_unchecked(&encoded[at..]);
                sum = sum.wrapping_add(v);
                at += n;
            }
            black_box(sum)
        });
    });
    g.bench_function("skip", |b| {
        b.iter(|| {
            let mut at = 0;
            let mut n_vals = 0u32;
            while at < encoded.len() {
                at += varint::skip(&encoded[at..]);
                n_vals += 1;
            }
            black_box(n_vals)
        });
    });
    g.finish();
}

fn bench_zerosup(c: &mut Criterion) {
    let vals: Vec<u32> = values().iter().map(|&v| v as u32).collect();
    let mut g = c.benchmark_group("zero-suppression");
    g.throughput(Throughput::Elements(vals.len() as u64));
    g.bench_function("encode", |b| {
        let mut buf = [0u8; 4];
        b.iter(|| {
            let mut total = 0usize;
            for &v in &vals {
                let n = zerosup::significant_bytes(v);
                zerosup::write_bytes(&mut buf, black_box(v), n);
                total += n;
            }
            black_box(total)
        });
    });
    g.bench_function("decode", |b| {
        let pairs: Vec<([u8; 4], usize)> = vals
            .iter()
            .map(|&v| {
                let mut buf = [0u8; 4];
                let n = zerosup::significant_bytes(v);
                zerosup::write_bytes(&mut buf, v, n);
                (buf, n)
            })
            .collect();
        b.iter(|| {
            let mut sum = 0u64;
            for (buf, n) in &pairs {
                sum = sum.wrapping_add(zerosup::read_bytes(buf, *n) as u64);
            }
            black_box(sum)
        });
    });
    g.finish();
}

fn bench_zigzag(c: &mut Criterion) {
    let vals: Vec<i64> = values().iter().map(|&v| v as i64 - 2048).collect();
    c.bench_function("zigzag/round-trip", |b| {
        b.iter(|| {
            let mut sum = 0i64;
            for &v in &vals {
                sum = sum.wrapping_add(zigzag::decode(zigzag::encode(black_box(v))));
            }
            black_box(sum)
        });
    });
}

criterion_group!(benches, bench_varint, bench_zerosup, bench_zigzag);
criterion_main!(benches);
