//! Figure 6 driver: builds the compressed structures on every dataset
//! profile and reports bytes per node through Criterion's measurement of
//! the build+convert pipeline (the node sizes themselves are printed by
//! `cfp-repro fig6a fig6b`; this bench tracks the cost of producing them).

use cfp_data::profiles;
use cfp_data::ItemRecoder;
use cfp_tree::CfpTree;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6-pipeline");
    g.sample_size(10);
    for p in profiles::all() {
        // The two large quest profiles are covered by fig7/fig8 benches.
        if p.name.starts_with("quest") {
            continue;
        }
        let db = p.generate();
        let minsup = p.absolute_support(&db, 1);
        let recoder = ItemRecoder::scan(&db, minsup);
        g.bench_with_input(BenchmarkId::new("build+convert", p.name), &db, |b, db| {
            b.iter(|| {
                let tree = CfpTree::from_db(db, &recoder);
                let array = cfp_core::convert(&tree);
                black_box((tree.avg_node_bytes(), array.avg_node_bytes()))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
