//! Figure 7(a) driver: build and conversion time of CFP-growth vs. the
//! FP-tree build, on a Quest workload at several supports.

use cfp_bench::bench_quest;
use cfp_data::ItemRecoder;
use cfp_fptree::FpTree;
use cfp_tree::CfpTree;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_build_convert(c: &mut Criterion) {
    let db = bench_quest(20_000);
    let mut g = c.benchmark_group("fig7-build-convert");
    g.sample_size(10);
    for minsup in [400u64, 100, 40] {
        let recoder = ItemRecoder::scan(&db, minsup);
        g.bench_with_input(BenchmarkId::new("fp-build", minsup), &minsup, |b, _| {
            b.iter(|| black_box(FpTree::from_db(&db, &recoder).num_nodes()));
        });
        g.bench_with_input(BenchmarkId::new("cfp-build", minsup), &minsup, |b, _| {
            b.iter(|| black_box(CfpTree::from_db(&db, &recoder).num_nodes()));
        });
        let tree = CfpTree::from_db(&db, &recoder);
        g.bench_with_input(BenchmarkId::new("cfp-convert", minsup), &minsup, |b, _| {
            b.iter(|| black_box(cfp_core::convert(&tree).num_nodes()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build_convert);
criterion_main!(benches);
