//! Microbenchmarks of the memory manager (Appendix A): node allocation
//! must stay far cheaper than `malloc` for CFP-tree construction to be
//! competitive.

use cfp_memman::Arena;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("memman");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("alloc-10k-mixed", |b| {
        b.iter(|| {
            let mut a = Arena::with_capacity(256 * 1024);
            for i in 0..10_000u64 {
                black_box(a.alloc(7 + (i % 18) as usize));
            }
            black_box(a.footprint())
        });
    });
    g.bench_function("alloc-free-cycle", |b| {
        b.iter(|| {
            let mut a = Arena::with_capacity(64 * 1024);
            let mut offs = Vec::with_capacity(1000);
            for round in 0..10 {
                for i in 0..1000u64 {
                    offs.push(a.alloc(7 + ((i + round) % 18) as usize));
                }
                for (i, off) in offs.drain(..).enumerate() {
                    a.free(off, 7 + ((i as u64 + round) % 18) as usize);
                }
            }
            black_box(a.footprint())
        });
    });
    g.bench_function("realloc-grow", |b| {
        b.iter(|| {
            let mut a = Arena::with_capacity(64 * 1024);
            let mut offs: Vec<u64> = (0..1000).map(|_| a.alloc(7)).collect();
            for off in offs.iter_mut() {
                *off = a.realloc(*off, 7, 12);
            }
            for off in offs.iter_mut() {
                *off = a.realloc(*off, 12, 17);
            }
            black_box(a.used())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
