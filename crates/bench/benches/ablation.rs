//! Build-time cost of the CFP-tree's structural techniques: chains and
//! embedded leaves save memory — do they also cost (or save) time? The
//! paper argues the (de)compression overhead is largely offset by better
//! memory-bandwidth usage; this bench measures the build side of that
//! trade on one workload.

use cfp_bench::bench_quest;
use cfp_data::ItemRecoder;
use cfp_tree::{CfpTree, CfpTreeConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let db = bench_quest(10_000);
    let recoder = ItemRecoder::scan(&db, 20);
    let configs: [(&str, CfpTreeConfig); 4] = [
        ("full", CfpTreeConfig::default()),
        ("no-chains", CfpTreeConfig { max_chain_len: 0, embed_leaves: true }),
        ("no-embed", CfpTreeConfig { max_chain_len: 15, embed_leaves: false }),
        ("neither", CfpTreeConfig { max_chain_len: 0, embed_leaves: false }),
    ];

    let mut g = c.benchmark_group("ablation-build");
    g.sample_size(20);
    for (name, cfg) in configs {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut buf = Vec::new();
            b.iter(|| {
                let mut tree = CfpTree::with_config(recoder.num_items(), cfg);
                for t in db.iter() {
                    recoder.recode_transaction(t, &mut buf);
                    tree.insert(&buf, 1);
                }
                black_box(tree.arena_used())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
