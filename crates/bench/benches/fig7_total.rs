//! Figure 7(c) driver: total execution time of FP-growth vs. CFP-growth
//! across supports on a Quest workload.

use cfp_bench::{bench_quest, run_miner};
use cfp_core::CfpGrowthMiner;
use cfp_fptree::FpGrowthMiner;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_total(c: &mut Criterion) {
    let db = bench_quest(20_000);
    let fp = FpGrowthMiner::new();
    let cfp = CfpGrowthMiner::new();
    let mut g = c.benchmark_group("fig7-total");
    g.sample_size(10);
    for minsup in [400u64, 100, 40] {
        g.bench_with_input(BenchmarkId::new("fp-growth", minsup), &minsup, |b, &m| {
            b.iter(|| black_box(run_miner(&fp, &db, m).itemsets));
        });
        g.bench_with_input(BenchmarkId::new("cfp-growth", minsup), &minsup, |b, &m| {
            b.iter(|| black_box(run_miner(&cfp, &db, m).itemsets));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_total);
criterion_main!(benches);
