//! Build-phase microbenchmark: inserting transactions into the compressed
//! CFP-tree vs. the pointer-based FP-tree. The paper's claim is that
//! compression does not deteriorate build time when data is small.

use cfp_bench::bench_quest;
use cfp_data::ItemRecoder;
use cfp_fptree::FpTree;
use cfp_tree::CfpTree;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_build(c: &mut Criterion) {
    let db = bench_quest(5_000);
    let mut g = c.benchmark_group("tree-build");
    for minsup in [250u64, 50, 10] {
        let recoder = ItemRecoder::scan(&db, minsup);
        g.throughput(Throughput::Elements(db.len() as u64));
        g.bench_with_input(BenchmarkId::new("fp-tree", minsup), &minsup, |b, _| {
            b.iter(|| black_box(FpTree::from_db(&db, &recoder).num_nodes()));
        });
        g.bench_with_input(BenchmarkId::new("cfp-tree", minsup), &minsup, |b, _| {
            b.iter(|| black_box(CfpTree::from_db(&db, &recoder).num_nodes()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
