//! Scaling of the parallel mine phase with worker count (the class-4
//! extension of §5: the first-level items are independent units of work).

use cfp_bench::{bench_quest, run_miner};
use cfp_core::{CfpGrowthMiner, ParallelCfpGrowthMiner};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_parallel(c: &mut Criterion) {
    let db = bench_quest(20_000);
    let minsup = 40u64;
    let expect = run_miner(&CfpGrowthMiner::new(), &db, minsup).itemsets;

    let mut g = c.benchmark_group("parallel-scaling");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("threads", 1), |b| {
        b.iter(|| black_box(run_miner(&CfpGrowthMiner::new(), &db, minsup).itemsets));
    });
    for threads in [2usize, 4, 8] {
        let miner = ParallelCfpGrowthMiner::new(threads);
        assert_eq!(run_miner(&miner, &db, minsup).itemsets, expect);
        g.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| black_box(run_miner(&miner, &db, minsup).itemsets));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
