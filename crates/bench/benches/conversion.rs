//! Microbenchmarks of the CFP-tree → CFP-array conversion (§3.5) and of
//! the CFP-array access paths the mine phase lives on: sequential
//! subarray scans (nodelink replacement) and parent-chain walks.

use cfp_bench::bench_quest;
use cfp_data::ItemRecoder;
use cfp_tree::CfpTree;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_conversion(c: &mut Criterion) {
    let db = bench_quest(20_000);
    let recoder = ItemRecoder::scan(&db, 40);
    let tree = CfpTree::from_db(&db, &recoder);
    let nodes = tree.num_nodes();

    let mut g = c.benchmark_group("conversion");
    g.throughput(Throughput::Elements(nodes));
    g.bench_function("tree-to-array", |b| {
        b.iter(|| black_box(cfp_core::convert(&tree).num_nodes()));
    });
    g.finish();

    let array = cfp_core::convert(&tree);
    let mut g = c.benchmark_group("array-access");
    g.throughput(Throughput::Elements(nodes));
    g.bench_function("full-subarray-scan", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for item in 0..array.num_items() as u32 {
                for node in array.subarray(item) {
                    sum = sum.wrapping_add(node.count);
                }
            }
            black_box(sum)
        });
    });
    g.bench_function("parent-chain-walks", |b| {
        let mut path = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for item in (0..array.num_items() as u32).rev().take(50) {
                for node in array.subarray(item) {
                    array.prefix_path(item, &node, &mut path);
                    total += path.len();
                }
            }
            black_box(total)
        });
    });
    g.finish();

    let mut g = c.benchmark_group("serialization");
    g.throughput(Throughput::Bytes(array.data_bytes()));
    g.bench_function("write", |b| {
        let mut buf = Vec::with_capacity(array.data_bytes() as usize + 1024);
        b.iter(|| {
            buf.clear();
            array.write_to(&mut buf).expect("in-memory write");
            black_box(buf.len())
        });
    });
    let mut bytes = Vec::new();
    array.write_to(&mut bytes).expect("in-memory write");
    g.bench_function("read", |b| {
        b.iter(|| {
            black_box(
                cfp_array::CfpArray::read_from(bytes.as_slice()).expect("valid image").num_nodes(),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_conversion);
criterion_main!(benches);
