//! Figure 8 driver: all algorithms on one Quest workload at a medium
//! support (full sweeps with per-algorithm memory live in `cfp-repro
//! fig8a fig8d`; Criterion tracks regressions of each algorithm's time).

use cfp_baselines::all_miners;
use cfp_bench::{bench_quest, run_miner};
use cfp_core::CfpGrowthMiner;
use cfp_data::Miner;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_algorithms(c: &mut Criterion) {
    let db = bench_quest(10_000);
    let minsup = 60u64;
    let mut miners: Vec<Box<dyn Miner>> = vec![Box::new(CfpGrowthMiner::new())];
    miners.extend(all_miners());

    // Cross-check once before timing.
    let expect = run_miner(miners[0].as_ref(), &db, minsup).itemsets;
    for m in &miners {
        assert_eq!(run_miner(m.as_ref(), &db, minsup).itemsets, expect, "{}", m.name());
    }

    let mut g = c.benchmark_group("fig8-algorithms");
    g.sample_size(10);
    for m in &miners {
        g.bench_with_input(BenchmarkId::new(m.name(), minsup), &minsup, |b, &sup| {
            b.iter(|| black_box(run_miner(m.as_ref(), &db, sup).itemsets));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
