//! Lightweight byte-level compression codecs (§2.3 of the paper).
//!
//! The CFP-tree and CFP-array deliberately avoid entropy coding and
//! bit-level schemes: the prefix tree is traversed many times, so the
//! paper restricts itself to *byte-level static encodings* whose
//! (de)compression cost is a handful of instructions:
//!
//! - **Variable-byte encoding** ([`varint`]): 7 payload bits per byte plus a
//!   continuation bit. Used for every field of the CFP-array.
//! - **Zigzag mapping** ([`zigzag`]): maps signed deltas to unsigned values
//!   so small-magnitude negatives stay short under varint. The paper leaves
//!   the sign handling of the CFP-array's `Δpos` field unspecified; a DFS
//!   layout cannot guarantee non-negative deltas, so we zigzag them.
//! - **Leading-zero-byte suppression** ([`zerosup`]): drops the leading zero
//!   bytes of a 32-bit value and records how many were dropped in a 2-bit or
//!   3-bit compression mask. Used for `Δitem` and `pcount` in the ternary
//!   CFP-tree.
//! - **Null suppression via presence bits**: pointers in the ternary
//!   CFP-tree are stored only when non-null; three presence bits in the
//!   compression-mask byte say which of `left`, `right`, `suffix` follow.
//!   The [`mask`] module packs and unpacks that byte.
//! - **40-bit pointers** ([`ptr40`]): enough to address 1 TiB, cutting each
//!   stored pointer from 8 to 5 bytes.

#![warn(missing_docs)]

pub mod mask;
pub mod ptr40;
pub mod varint;
pub mod zerosup;
pub mod zigzag;

pub use mask::NodeMask;
pub use ptr40::Ptr40;
