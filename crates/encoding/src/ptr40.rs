//! 40-bit pointers (§3.3).
//!
//! The ternary CFP-tree stores pointers in 5 bytes, "sufficient to address
//! 1 TB of main memory". In this implementation a pointer is a byte offset
//! into the memory manager's arena. The field is stored big-endian so that
//! its *first* byte is the most significant one: the paper reserves a first
//! byte of `0xFF` to mark an embedded leaf node stored in place of the
//! pointer, and the memory manager guarantees it never hands out offsets
//! whose top byte is `0xFF` (offsets stay below 2^39 in practice).

/// Marker value of the first byte of a 5-byte field holding an embedded
/// leaf instead of a pointer.
pub const EMBED_MARKER: u8 = 0xFF;

/// Width of a stored pointer in bytes.
pub const PTR_BYTES: usize = 5;

/// Largest offset a [`Ptr40`] may carry without colliding with the
/// embedded-leaf marker (top byte must stay below `0xFF`).
pub const MAX_OFFSET: u64 = (0xFFu64 << 32) - 1;

/// A nullable 40-bit arena offset.
///
/// Offset 0 is the null pointer; the arena reserves it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ptr40(u64);

impl Ptr40 {
    /// The null pointer.
    pub const NULL: Ptr40 = Ptr40(0);

    /// Wraps an arena offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds [`MAX_OFFSET`] (the arena would have to
    /// be ≥ 0xFF00000000 bytes ≈ 1020 GiB for that to happen).
    #[inline]
    pub fn new(offset: u64) -> Self {
        assert!(
            offset <= MAX_OFFSET,
            "arena offset {offset:#x} collides with the embedded-leaf marker"
        );
        Ptr40(offset)
    }

    /// The raw offset.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0
    }

    /// Whether this is the null pointer.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Writes the pointer as 5 big-endian bytes into `buf[..5]`.
    #[inline]
    pub fn write(self, buf: &mut [u8]) {
        write_raw40(buf, self.0);
    }

    /// Reads a pointer from 5 big-endian bytes.
    ///
    /// The caller must have checked that `buf[0] != EMBED_MARKER` (an
    /// embedded leaf is not a pointer); debug builds assert it.
    #[inline]
    pub fn read(buf: &[u8]) -> Self {
        debug_assert_ne!(buf[0], EMBED_MARKER, "embedded leaf read as pointer");
        Ptr40(read_raw40(buf))
    }
}

/// Writes `v` (must fit in 40 bits) as 5 big-endian bytes.
#[inline]
pub fn write_raw40(buf: &mut [u8], v: u64) {
    debug_assert!(v < 1u64 << 40);
    buf[0] = (v >> 32) as u8;
    buf[1] = (v >> 24) as u8;
    buf[2] = (v >> 16) as u8;
    buf[3] = (v >> 8) as u8;
    buf[4] = v as u8;
}

/// Reads 5 big-endian bytes as a u64.
#[inline]
pub fn read_raw40(buf: &[u8]) -> u64 {
    ((buf[0] as u64) << 32)
        | ((buf[1] as u64) << 24)
        | ((buf[2] as u64) << 16)
        | ((buf[3] as u64) << 8)
        | (buf[4] as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_round_trips_as_zero_bytes() {
        let mut buf = [0xAAu8; 5];
        Ptr40::NULL.write(&mut buf);
        assert_eq!(buf, [0; 5]);
        assert!(Ptr40::read(&buf).is_null());
    }

    #[test]
    fn five_byte_big_endian_layout() {
        let p = Ptr40::new(0x01_2345_6789);
        let mut buf = [0u8; 5];
        p.write(&mut buf);
        assert_eq!(buf, [0x01, 0x23, 0x45, 0x67, 0x89]);
        assert_eq!(Ptr40::read(&buf).offset(), 0x01_2345_6789);
    }

    #[test]
    fn max_offset_has_non_marker_top_byte() {
        let p = Ptr40::new(MAX_OFFSET);
        let mut buf = [0u8; 5];
        p.write(&mut buf);
        assert_eq!(buf[0], 0xFE);
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn offsets_in_marker_range_rejected() {
        let _ = Ptr40::new(MAX_OFFSET + 1);
    }

    /// Property tests require the optional `proptest` dependency,
    /// which offline builds cannot fetch. Enable with
    /// `--features proptest` after restoring the dev-dependency
    /// (see README § Offline builds).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_round_trip(v in 0u64..=MAX_OFFSET) {
                let mut buf = [0u8; 5];
                Ptr40::new(v).write(&mut buf);
                prop_assert_eq!(Ptr40::read(&buf).offset(), v);
                prop_assert_ne!(buf[0], EMBED_MARKER);
            }

            #[test]
            fn prop_raw40_round_trip(v in 0u64..(1u64 << 40)) {
                let mut buf = [0u8; 5];
                write_raw40(&mut buf, v);
                prop_assert_eq!(read_raw40(&buf), v);
            }
        }
    }
}
