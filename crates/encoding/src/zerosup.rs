//! Leading-zero-byte suppression for 32-bit integers (§2.3).
//!
//! Westmann-style "small integer" compression: the leading (most
//! significant) zero bytes of a value are dropped and their number is
//! recorded in a small compression mask stored elsewhere (in the CFP-tree,
//! inside the node's first byte — see [`crate::mask`]).
//!
//! Two variants exist:
//!
//! - **3-bit mask** ([`significant_bytes`] ∈ 0..=4): can express that *all
//!   four* bytes were suppressed, i.e. the value is 0 and occupies no bytes
//!   at all. Used for `pcount`, which is 0 for the vast majority of CFP-tree
//!   nodes (Table 2: ~97% on webdocs).
//! - **2-bit mask** ([`significant_bytes_min1`] ∈ 1..=4): always stores at
//!   least the low byte, even when it is zero. Used for `Δitem`, which is
//!   never 0 (support-ordered item ids strictly increase along every path).
//!
//! Bytes are written least-significant first; only the count of suppressed
//! bytes travels in the mask.

/// Number of significant (stored) bytes under the 3-bit-mask variant: 0..=4.
#[inline]
pub fn significant_bytes(v: u32) -> usize {
    4 - v.leading_zeros() as usize / 8
}

/// Number of stored bytes under the 2-bit-mask variant: 1..=4.
#[inline]
pub fn significant_bytes_min1(v: u32) -> usize {
    significant_bytes(v).max(1)
}

/// Writes the `n` low bytes of `v` (LSB first) into `buf[..n]`.
///
/// `n` must come from [`significant_bytes`] / [`significant_bytes_min1`]
/// for the value to round-trip.
#[inline]
pub fn write_bytes(buf: &mut [u8], v: u32, n: usize) {
    let le = v.to_le_bytes();
    buf[..n].copy_from_slice(&le[..n]);
}

/// Appends the `n` low bytes of `v` to `out`.
#[inline]
pub fn push_bytes(out: &mut Vec<u8>, v: u32, n: usize) {
    out.extend_from_slice(&v.to_le_bytes()[..n]);
}

/// Reads a value stored as `n` low bytes (LSB first) from `buf[..n]`.
#[inline]
pub fn read_bytes(buf: &[u8], n: usize) -> u32 {
    debug_assert!(n <= 4);
    let mut le = [0u8; 4];
    le[..n].copy_from_slice(&buf[..n]);
    u32::from_le_bytes(le)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn significant_bytes_boundaries() {
        assert_eq!(significant_bytes(0), 0);
        assert_eq!(significant_bytes(1), 1);
        assert_eq!(significant_bytes(0xFF), 1);
        assert_eq!(significant_bytes(0x100), 2);
        assert_eq!(significant_bytes(0xFFFF), 2);
        assert_eq!(significant_bytes(0x1_0000), 3);
        assert_eq!(significant_bytes(0xFF_FFFF), 3);
        assert_eq!(significant_bytes(0x100_0000), 4);
        assert_eq!(significant_bytes(u32::MAX), 4);
    }

    #[test]
    fn min1_variant_always_stores_a_byte() {
        assert_eq!(significant_bytes_min1(0), 1);
        assert_eq!(significant_bytes_min1(1), 1);
        assert_eq!(significant_bytes_min1(0x100), 2);
    }

    #[test]
    fn paper_example_0x90_stores_one_byte() {
        // §2.3: hexadecimal 00000090 keeps a single non-zero byte under
        // leading-zero suppression (the 3-bit mask says 3 bytes dropped).
        let v = 0x90u32;
        let n = significant_bytes(v);
        assert_eq!(n, 1);
        let mut buf = [0u8; 4];
        write_bytes(&mut buf, v, n);
        assert_eq!(buf[0], 0x90);
        assert_eq!(read_bytes(&buf, n), v);
    }

    #[test]
    fn zero_value_occupies_nothing_in_3bit_variant() {
        let n = significant_bytes(0);
        assert_eq!(n, 0);
        assert_eq!(read_bytes(&[], 0), 0);
    }

    #[test]
    fn push_bytes_appends_exactly_n() {
        let mut out = vec![0xEE];
        push_bytes(&mut out, 0x0102_0304, 4);
        assert_eq!(out, vec![0xEE, 0x04, 0x03, 0x02, 0x01]);
    }

    /// Property tests require the optional `proptest` dependency,
    /// which offline builds cannot fetch. Enable with
    /// `--features proptest` after restoring the dev-dependency
    /// (see README § Offline builds).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_round_trip_3bit(v in any::<u32>()) {
                let n = significant_bytes(v);
                let mut buf = [0u8; 4];
                write_bytes(&mut buf, v, n);
                prop_assert_eq!(read_bytes(&buf, n), v);
            }

            #[test]
            fn prop_round_trip_2bit(v in any::<u32>()) {
                let n = significant_bytes_min1(v);
                let mut buf = [0u8; 4];
                write_bytes(&mut buf, v, n);
                prop_assert_eq!(read_bytes(&buf, n), v);
            }

            #[test]
            fn prop_stored_length_is_minimal(v in 1u32..) {
                let n = significant_bytes(v);
                // v does not fit in n-1 bytes.
                prop_assert!(n == 0 || v > (1u64 << (8 * (n - 1))) as u32 - 1);
            }
        }
    }
}
