//! Zigzag mapping between signed and unsigned integers.
//!
//! Maps 0, -1, 1, -2, 2, … to 0, 1, 2, 3, 4, … so that values of small
//! magnitude — positive *or* negative — stay small and therefore short
//! under variable-byte encoding. Used for the CFP-array's `Δpos` field,
//! whose sign the DFS layout cannot guarantee (see crate docs).

/// Maps a signed value to its zigzag-encoded unsigned form.
#[inline]
pub fn encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`encode`].
#[inline]
pub fn decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_interleave() {
        assert_eq!(encode(0), 0);
        assert_eq!(encode(-1), 1);
        assert_eq!(encode(1), 2);
        assert_eq!(encode(-2), 3);
        assert_eq!(encode(2), 4);
    }

    #[test]
    fn extremes_round_trip() {
        for v in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
            assert_eq!(decode(encode(v)), v);
        }
        assert_eq!(encode(i64::MAX), u64::MAX - 1);
        assert_eq!(encode(i64::MIN), u64::MAX);
    }

    /// Property tests require the optional `proptest` dependency,
    /// which offline builds cannot fetch. Enable with
    /// `--features proptest` after restoring the dev-dependency
    /// (see README § Offline builds).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_round_trip(v in any::<i64>()) {
                prop_assert_eq!(decode(encode(v)), v);
            }

            #[test]
            fn prop_magnitude_order_preserved(v in any::<i32>()) {
                // |v| <= |w| implies encode(v) is within one of encode(w)'s band:
                // specifically encode maps magnitude m to 2m or 2m-1.
                let v = v as i64;
                let e = encode(v);
                let m = v.unsigned_abs();
                prop_assert!(e == 2 * m || e + 1 == 2 * m);
            }
        }
    }
}
