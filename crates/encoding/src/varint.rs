//! Variable-byte (varint128 / 7-bit) encoding.
//!
//! An integer is split into 7-bit groups stored little-endian-first; the
//! high bit of each byte is a continuation flag (1 = another byte follows).
//! Values below 128 take a single byte, which the paper exploits: `Δitem`
//! and `count` in the CFP-array almost always fit in one byte.

/// Maximum encoded length of a `u64` (⌈64/7⌉ bytes).
pub const MAX_LEN_U64: usize = 10;

/// Maximum encoded length of a `u32` (⌈32/7⌉ bytes).
pub const MAX_LEN_U32: usize = 5;

/// Number of bytes [`write_u64`] produces for `v`.
#[inline]
pub fn encoded_len(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    let bits = 64 - v.leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Appends the varint encoding of `v` to `out`, returning the byte count.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        n += 1;
        if v == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Encodes `v` into `buf`, which must hold at least [`encoded_len`]`(v)`
/// bytes. Returns the byte count.
#[inline]
pub fn write_u64_into(buf: &mut [u8], mut v: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf[n] = byte;
            return n + 1;
        }
        buf[n] = byte | 0x80;
        n += 1;
    }
}

/// Decodes a varint from the start of `buf`.
///
/// Returns the value and the number of bytes consumed, or `None` if `buf`
/// ends mid-value or the encoding overflows 64 bits.
#[inline]
pub fn read_u64(buf: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        let payload = (byte & 0x7F) as u64;
        // The 10th byte of a u64 varint may only contribute its low bit.
        if shift == 63 && payload > 1 {
            return None;
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

/// Decodes a varint known to be valid (panics on malformed input in debug
/// builds; used on buffers this library produced itself).
#[inline]
pub fn read_u64_unchecked(buf: &[u8]) -> (u64, usize) {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    let mut i = 0;
    loop {
        let byte = buf[i];
        value |= ((byte & 0x7F) as u64) << shift;
        i += 1;
        if byte & 0x80 == 0 {
            return (value, i);
        }
        shift += 7;
    }
}

/// Number of bytes of the varint starting at `buf[0]`, without decoding it.
///
/// Variable-byte encoding cannot look up a value's length without scanning
/// the continuation bits (§2.3); this is the scan.
#[inline]
pub fn skip(buf: &[u8]) -> usize {
    let mut i = 0;
    while buf[i] & 0x80 != 0 {
        i += 1;
    }
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_0x90_takes_two_bytes() {
        // §2.3: hexadecimal 00000090 encodes as 10010000 00000001
        // (low group first with continuation bit set).
        let mut out = Vec::new();
        write_u64(&mut out, 0x90);
        assert_eq!(out, vec![0b1001_0000, 0b0000_0001]);
        assert_eq!(read_u64(&out), Some((0x90, 2)));
    }

    #[test]
    fn boundary_lengths() {
        assert_eq!(encoded_len(0), 1);
        assert_eq!(encoded_len(127), 1);
        assert_eq!(encoded_len(128), 2);
        assert_eq!(encoded_len(16_383), 2);
        assert_eq!(encoded_len(16_384), 3);
        assert_eq!(encoded_len(u32::MAX as u64), 5);
        assert_eq!(encoded_len(u64::MAX), 10);
    }

    #[test]
    fn round_trip_selected_values() {
        for v in [0u64, 1, 127, 128, 255, 300, 1 << 20, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            let n = write_u64(&mut out, v);
            assert_eq!(n, out.len());
            assert_eq!(n, encoded_len(v));
            assert_eq!(read_u64(&out), Some((v, n)));
            assert_eq!(read_u64_unchecked(&out), (v, n));
            assert_eq!(skip(&out), n);
        }
    }

    #[test]
    fn write_into_matches_vec_writer() {
        for v in [0u64, 5, 129, 99999, u64::MAX] {
            let mut vec_out = Vec::new();
            write_u64(&mut vec_out, v);
            let mut buf = [0u8; MAX_LEN_U64];
            let n = write_u64_into(&mut buf, v);
            assert_eq!(&buf[..n], &vec_out[..]);
        }
    }

    #[test]
    fn truncated_input_returns_none() {
        let mut out = Vec::new();
        write_u64(&mut out, u64::MAX);
        for cut in 0..out.len() {
            assert_eq!(read_u64(&out[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn overlong_encoding_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let bad = [0x80u8; 11];
        assert_eq!(read_u64(&bad), None);
    }

    #[test]
    fn overflowing_tenth_byte_rejected() {
        // 9 continuation bytes then a final byte with more than the low bit.
        let mut bad = vec![0x80u8; 9];
        bad.push(0x02);
        assert_eq!(read_u64(&bad), None);
    }

    /// Property tests require the optional `proptest` dependency,
    /// which offline builds cannot fetch. Enable with
    /// `--features proptest` after restoring the dev-dependency
    /// (see README § Offline builds).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_round_trip(v in any::<u64>()) {
                let mut out = Vec::new();
                let n = write_u64(&mut out, v);
                prop_assert_eq!(n, encoded_len(v));
                prop_assert_eq!(read_u64(&out), Some((v, n)));
            }

            #[test]
            fn prop_encoding_is_monotone_in_length(a in any::<u64>(), b in any::<u64>()) {
                // A larger value never encodes shorter.
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(encoded_len(lo) <= encoded_len(hi));
            }

            #[test]
            fn prop_skip_agrees_with_decode(v in any::<u64>()) {
                let mut out = Vec::new();
                write_u64(&mut out, v);
                out.extend_from_slice(&[0xAB, 0xCD]); // trailing garbage
                prop_assert_eq!(skip(&out), encoded_len(v));
            }
        }
    }
}
