//! The compression-mask byte of ternary CFP-tree nodes (§3.3).
//!
//! Every standard node starts with one byte that encodes how the rest of
//! the node is laid out:
//!
//! ```text
//! bit 7        bit 6   bit 5   bits 4..2     bits 1..0
//! suffix?      right?  left?   pcount mask   Δitem mask
//! ```
//!
//! - The 2-bit `Δitem` mask stores `stored_bytes - 1` (1..=4 bytes follow;
//!   `Δitem` is never 0, so at least one byte is always present).
//! - The 3-bit `pcount` mask stores the number of bytes that follow
//!   (0..=4); `pcount` is 0 for most nodes, which then contribute no bytes
//!   at all.
//! - Three presence bits implement null suppression for the `left`,
//!   `right`, and `suffix` pointers: a pointer is stored (5 bytes) only
//!   when the corresponding bit is set.
//!
//! A 4-byte value can never need more than 4 stored bytes, so the 3-bit
//! pcount mask has three unused values (5, 6, 7). We use `0b111` as the
//! discriminator for **chain nodes**: when bits 4..2 read `0b111` the byte
//! is a [`ChainHeader`] instead, with the chain length in the remaining
//! bits (the paper caps chains at 15 entries):
//!
//! ```text
//! bit 7        bits 6..5           bits 4..2    bits 1..0
//! suffix?      high 2 of len-2     0b111        low 2 of len-2
//! ```

/// Value of the 3-bit pcount field that marks a chain node.
pub const CHAIN_TAG: u8 = 0b111;

/// Maximum number of entries in a single chain node (§4.1).
pub const MAX_CHAIN_LEN: usize = 15;

/// Minimum number of entries for a chain node to be worthwhile.
pub const MIN_CHAIN_LEN: usize = 2;

/// Decoded layout byte of a standard ternary CFP-tree node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeMask {
    /// Stored bytes of the Δitem field (1..=4).
    pub ditem_len: usize,
    /// Stored bytes of the pcount field (0..=4).
    pub pcount_len: usize,
    /// Whether a 5-byte left pointer follows.
    pub has_left: bool,
    /// Whether a 5-byte right pointer follows.
    pub has_right: bool,
    /// Whether a 5-byte suffix pointer follows.
    pub has_suffix: bool,
}

impl NodeMask {
    /// Packs the mask into its byte representation.
    #[inline]
    pub fn encode(self) -> u8 {
        debug_assert!((1..=4).contains(&self.ditem_len));
        debug_assert!(self.pcount_len <= 4);
        (self.ditem_len as u8 - 1)
            | ((self.pcount_len as u8) << 2)
            | ((self.has_left as u8) << 5)
            | ((self.has_right as u8) << 6)
            | ((self.has_suffix as u8) << 7)
    }

    /// Unpacks a mask byte.
    ///
    /// The caller must have established that `byte` is not a chain header
    /// (see [`is_chain`]); debug builds assert it.
    #[inline]
    pub fn decode(byte: u8) -> Self {
        debug_assert!(!is_chain(byte), "chain header decoded as standard mask");
        NodeMask {
            ditem_len: ((byte & 0b11) + 1) as usize,
            pcount_len: ((byte >> 2) & 0b111) as usize,
            has_left: byte & (1 << 5) != 0,
            has_right: byte & (1 << 6) != 0,
            has_suffix: byte & (1 << 7) != 0,
        }
    }

    /// Total encoded size of a node with this layout, in bytes.
    #[inline]
    pub fn node_size(self) -> usize {
        1 + self.ditem_len
            + self.pcount_len
            + 5 * (self.has_left as usize + self.has_right as usize + self.has_suffix as usize)
    }
}

/// Whether a first byte marks a chain node rather than a standard node.
#[inline]
pub fn is_chain(byte: u8) -> bool {
    (byte >> 2) & 0b111 == CHAIN_TAG
}

/// Decoded header byte of a chain node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainHeader {
    /// Number of entries in the chain (2..=15).
    pub len: usize,
    /// Whether a 5-byte suffix pointer ends the node.
    pub has_suffix: bool,
}

impl ChainHeader {
    /// Packs the header into its byte representation.
    #[inline]
    pub fn encode(self) -> u8 {
        debug_assert!((MIN_CHAIN_LEN..=MAX_CHAIN_LEN).contains(&self.len));
        let l = (self.len - MIN_CHAIN_LEN) as u8;
        (l & 0b11) | (CHAIN_TAG << 2) | ((l >> 2) << 5) | ((self.has_suffix as u8) << 7)
    }

    /// Unpacks a chain header byte.
    #[inline]
    pub fn decode(byte: u8) -> Self {
        debug_assert!(is_chain(byte));
        let l = (byte & 0b11) | (((byte >> 5) & 0b11) << 2);
        ChainHeader { len: l as usize + MIN_CHAIN_LEN, has_suffix: byte & (1 << 7) != 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure4_example() {
        // Figure 4: Δitem = 3 (one stored byte, mask bits 11 meaning three
        // leading zero bytes), pcount = 0 (no bytes), pointers 0/0/suffix.
        // The node compresses to 7 bytes: mask + 1 Δitem byte + 5-byte
        // suffix pointer.
        let m = NodeMask {
            ditem_len: 1,
            pcount_len: 0,
            has_left: false,
            has_right: false,
            has_suffix: true,
        };
        assert_eq!(m.node_size(), 7);
        assert_eq!(NodeMask::decode(m.encode()), m);
        assert!(!is_chain(m.encode()));
    }

    #[test]
    fn smallest_standard_node_is_three_bytes() {
        // §3.3: mask + one Δitem byte + one pcount byte, no pointers.
        let m = NodeMask {
            ditem_len: 1,
            pcount_len: 1,
            has_left: false,
            has_right: false,
            has_suffix: true,
        };
        let leaf = NodeMask { has_suffix: false, ..m };
        assert_eq!(leaf.node_size(), 3);
    }

    #[test]
    fn largest_standard_node_is_24_bytes() {
        // Appendix A: node footprints range from 7 to 24 bytes.
        let m = NodeMask {
            ditem_len: 4,
            pcount_len: 4,
            has_left: true,
            has_right: true,
            has_suffix: true,
        };
        assert_eq!(m.node_size(), 24);
    }

    #[test]
    fn standard_masks_never_collide_with_chain_tag() {
        for ditem_len in 1..=4 {
            for pcount_len in 0..=4 {
                for bits in 0..8u8 {
                    let m = NodeMask {
                        ditem_len,
                        pcount_len,
                        has_left: bits & 1 != 0,
                        has_right: bits & 2 != 0,
                        has_suffix: bits & 4 != 0,
                    };
                    let b = m.encode();
                    assert!(!is_chain(b), "mask {m:?} encodes as chain byte {b:#010b}");
                    assert_eq!(NodeMask::decode(b), m);
                }
            }
        }
    }

    #[test]
    fn chain_header_round_trips_all_lengths() {
        for len in MIN_CHAIN_LEN..=MAX_CHAIN_LEN {
            for has_suffix in [false, true] {
                let h = ChainHeader { len, has_suffix };
                let b = h.encode();
                assert!(is_chain(b), "chain {h:?} not recognized");
                assert_eq!(ChainHeader::decode(b), h);
            }
        }
    }

    #[test]
    fn embed_marker_byte_is_a_chain_pattern() {
        // 0xFF never appears as a first byte of an allocated node because
        // it would decode as a chain of maximum length with suffix; the
        // slot-level embedded-leaf marker never reaches node decoding.
        assert!(is_chain(0xFF));
    }

    /// Property tests require the optional `proptest` dependency,
    /// which offline builds cannot fetch. Enable with
    /// `--features proptest` after restoring the dev-dependency
    /// (see README § Offline builds).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_standard_round_trip(
                ditem_len in 1usize..=4,
                pcount_len in 0usize..=4,
                has_left: bool,
                has_right: bool,
                has_suffix: bool,
            ) {
                let m = NodeMask { ditem_len, pcount_len, has_left, has_right, has_suffix };
                prop_assert_eq!(NodeMask::decode(m.encode()), m);
            }
        }
    }
}
