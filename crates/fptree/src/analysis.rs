//! Field-level compressibility analysis of the FP-tree (Table 1).
//!
//! Table 1 of the paper reports, for an FP-tree built on webdocs, how many
//! leading zero bytes each 32-bit node field has. Pointer fields are
//! analyzed as the *byte addresses* a pointer-based implementation would
//! store: we map node index `i` to the address `i * 28` (our node size),
//! which reproduces the address-magnitude distribution of a memory pool.
//! Null pointers analyze as value 0 (four leading zero bytes) — exactly
//! the redundancy that null suppression removes.

use crate::tree::{FpTree, NIL};
use cfp_metrics::LeadingZeroHistogram;

/// Per-field leading-zero-byte histograms of an FP-tree (Table 1 layout).
#[derive(Clone, Debug, Default)]
pub struct FpTreeFieldStats {
    /// The `item` field.
    pub item: LeadingZeroHistogram,
    /// The `count` field.
    pub count: LeadingZeroHistogram,
    /// The `nodelink` pointer.
    pub nodelink: LeadingZeroHistogram,
    /// The `parent` pointer.
    pub parent: LeadingZeroHistogram,
    /// The `suffix` pointer.
    pub suffix: LeadingZeroHistogram,
    /// The `left` pointer.
    pub left: LeadingZeroHistogram,
    /// The `right` pointer.
    pub right: LeadingZeroHistogram,
}

impl FpTreeFieldStats {
    /// Fraction of all field bytes that are zero (the paper observes
    /// roughly 53% on webdocs).
    pub fn zero_byte_fraction(&self) -> f64 {
        let fields = [
            &self.item,
            &self.count,
            &self.nodelink,
            &self.parent,
            &self.suffix,
            &self.left,
            &self.right,
        ];
        let mut zero = 0.0;
        let mut total = 0.0;
        for f in fields {
            // Leading zero bytes are a lower bound on zero bytes; interior
            // zero bytes exist too but the paper's table counts leading
            // ones, so we do the same.
            zero += f.mean_zero_bytes() * f.total() as f64;
            total += 4.0 * f.total() as f64;
        }
        if total == 0.0 {
            0.0
        } else {
            zero / total
        }
    }

    /// Rows in the order of Table 1.
    pub fn rows(&self) -> [(&'static str, &LeadingZeroHistogram); 7] {
        [
            ("item", &self.item),
            ("count", &self.count),
            ("nodelink", &self.nodelink),
            ("parent", &self.parent),
            ("suffix", &self.suffix),
            ("left", &self.left),
            ("right", &self.right),
        ]
    }
}

/// Baseline byte figures of an FP-tree, for the memstat compression
/// table: the same logical tree costed under three representations the
/// paper compares against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FpTreeBaselines {
    /// Logical nodes (excluding the sentinel root).
    pub nodes: u64,
    /// Exact bytes of this crate's in-memory layout (28-byte nodes plus
    /// per-item headers — [`FpTree`]'s [`HeapSize`] accounting).
    pub in_memory_bytes: u64,
    /// The paper's §4.2 baseline convention: 40 bytes per node.
    pub paper_bytes: u64,
    /// Estimate of the nonordfp array representation built from the
    /// same tree: `count` + `parent` `u32` arrays per node, per-item
    /// subarray `starts` (`u32`, items + 1), and a `u64` support table.
    pub nonordfp_bytes: u64,
}

/// Costs `tree` under the three baseline representations.
pub fn baselines(tree: &FpTree) -> FpTreeBaselines {
    use cfp_metrics::HeapSize;
    let nodes = tree.num_nodes() as u64;
    let items = tree.num_items() as u64;
    FpTreeBaselines {
        nodes,
        in_memory_bytes: tree.heap_bytes(),
        paper_bytes: nodes * FpTree::PAPER_NODE_BYTES as u64,
        nonordfp_bytes: 4 * nodes + 4 * nodes + 4 * (items + 1) + 8 * items,
    }
}

/// Synthetic byte address of a node index in a pointer-based pool.
fn address(idx: u32) -> u32 {
    if idx == NIL || idx == 0 {
        0
    } else {
        idx * FpTree::NODE_BYTES as u32
    }
}

/// Analyzes every node (excluding the sentinel root) of `tree`.
pub fn analyze(tree: &FpTree) -> FpTreeFieldStats {
    let mut stats = FpTreeFieldStats::default();
    for item in 0..tree.num_items() as u32 {
        for idx in tree.nodelinks(item) {
            let n = tree.node(idx);
            stats.item.record(n.item);
            stats.count.record(n.count);
            stats.nodelink.record(address(n.nodelink));
            stats.parent.record(address(n.parent));
            stats.suffix.record(address(n.suffix));
            stats.left.record(address(n.left));
            stats.right.record(address(n.right));
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bushy_tree() -> FpTree {
        let mut t = FpTree::new(8);
        for a in 0..4u32 {
            for b in 4..8u32 {
                t.insert(&[a, b], 1);
            }
        }
        t
    }

    #[test]
    fn every_field_sees_every_node() {
        let t = bushy_tree();
        let s = analyze(&t);
        let n = t.num_nodes() as u64;
        for (_, h) in s.rows() {
            assert_eq!(h.total(), n);
        }
    }

    #[test]
    fn small_items_have_three_leading_zero_bytes() {
        let s = analyze(&bushy_tree());
        // All item ids < 256 (id 0 counts as four leading zero bytes).
        assert_eq!(s.item.buckets()[3] + s.item.buckets()[4], s.item.total());
    }

    #[test]
    fn leaf_pointers_are_mostly_null() {
        let t = bushy_tree();
        let s = analyze(&t);
        // Leaves (16 of 20 nodes) have null suffix pointers -> bucket 4.
        assert!(s.suffix.buckets()[4] >= 16);
    }

    #[test]
    fn zero_byte_fraction_is_substantial() {
        // The paper reports ~53% on webdocs; any prefix tree with small
        // items and counts should exceed 40%.
        let frac = analyze(&bushy_tree()).zero_byte_fraction();
        assert!(frac > 0.4, "fraction {frac}");
    }

    #[test]
    fn empty_tree_analyzes_cleanly() {
        let t = FpTree::new(3);
        let s = analyze(&t);
        assert_eq!(s.item.total(), 0);
        assert_eq!(s.zero_byte_fraction(), 0.0);
    }

    #[test]
    fn baselines_cost_the_same_tree_three_ways() {
        let t = bushy_tree();
        let b = baselines(&t);
        assert_eq!(b.nodes, t.num_nodes() as u64);
        assert_eq!(b.paper_bytes, b.nodes * 40);
        assert_eq!(b.in_memory_bytes, cfp_metrics::HeapSize::heap_bytes(&t));
        // nonordfp drops the five pointers for two u32 arrays plus a
        // small index: smaller than the in-memory tree on any
        // non-degenerate shape.
        assert!(b.nonordfp_bytes < b.in_memory_bytes);
        assert_eq!(b.nonordfp_bytes, 8 * b.nodes + 4 * (8 + 1) + 8 * 8);
    }
}
