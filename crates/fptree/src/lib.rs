//! The classic FP-tree and FP-growth algorithm (§2.1–2.2 of the paper).
//!
//! This crate is the *baseline* the paper improves on: a ternary-tree
//! physical representation of the FP-tree in which every node carries the
//! seven fields `item`, `count`, `parent`, `nodelink`, `left`, `right`,
//! and `suffix`. The `left`/`right` pointers arrange the direct suffixes
//! (children) of each node in a binary search tree; `suffix` points to the
//! root of that child BST; `nodelink` chains all nodes of one item for the
//! sideways traversals of the mine phase.
//!
//! Nodes here are plain structs with 32-bit index "pointers" (28 bytes per
//! node). State-of-the-art C implementations spend 40 bytes per node
//! (§4.2); both figures are reported by the benchmark harness.
//!
//! [`growth::FpGrowthMiner`] implements the full FP-growth algorithm on
//! this representation, including conditional trees and the single-path
//! shortcut, and serves as the correctness oracle and performance baseline
//! for CFP-growth.

#![warn(missing_docs)]

pub mod analysis;
pub mod growth;
pub mod tree;

pub use growth::FpGrowthMiner;
pub use tree::{FpNode, FpTree, NIL};
