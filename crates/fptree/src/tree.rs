//! The ternary FP-tree data structure.

use cfp_data::{ItemRecoder, TransactionDb};
use cfp_metrics::HeapSize;

/// The null "pointer" (node index).
pub const NIL: u32 = u32::MAX;

/// One FP-tree node in ternary representation (§2.2).
///
/// All pointers are indices into the tree's node vector; `NIL` is null.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FpNode {
    /// Recoded item identifier (support-descending dense ids).
    pub item: u32,
    /// Number of transactions whose prefix ends at or passes through this
    /// node (the *cumulative* count of the classic FP-tree).
    pub count: u32,
    /// Parent node, `NIL` for children of the root.
    pub parent: u32,
    /// Next node with the same item.
    pub nodelink: u32,
    /// Left child in the sibling binary search tree.
    pub left: u32,
    /// Right child in the sibling binary search tree.
    pub right: u32,
    /// Root of the BST holding this node's direct suffixes (children).
    pub suffix: u32,
}

/// Per-item header: entry point of the nodelink chain plus total support.
#[derive(Clone, Copy, Debug, Default)]
pub struct Header {
    /// First node of the item's nodelink chain (`NIL` if none).
    pub link: u32,
    /// Total support of the item in this tree.
    pub support: u64,
}

/// An FP-tree over recoded items `0..num_items`.
///
/// Node 0 is a sentinel root with `item == NIL`; the trees of the
/// root's children hang off `nodes[0].suffix`.
#[derive(Clone, Debug)]
pub struct FpTree {
    nodes: Vec<FpNode>,
    headers: Vec<Header>,
}

impl FpTree {
    /// Creates an empty tree over `num_items` recoded items.
    pub fn new(num_items: usize) -> Self {
        let root = FpNode {
            item: NIL,
            count: 0,
            parent: NIL,
            nodelink: NIL,
            left: NIL,
            right: NIL,
            suffix: NIL,
        };
        FpTree { nodes: vec![root], headers: vec![Header { link: NIL, support: 0 }; num_items] }
    }

    /// Builds the initial FP-tree from a database: recodes every
    /// transaction and inserts it with weight 1.
    pub fn from_db(db: &TransactionDb, recoder: &ItemRecoder) -> Self {
        let mut tree = FpTree::new(recoder.num_items());
        let mut buf = Vec::new();
        for t in db.iter() {
            recoder.recode_transaction(t, &mut buf);
            tree.insert(&buf, 1);
        }
        tree
    }

    /// Number of items this tree was created for.
    pub fn num_items(&self) -> usize {
        self.headers.len()
    }

    /// Number of tree nodes, excluding the sentinel root.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether the tree holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Immutable node access.
    #[inline]
    pub fn node(&self, idx: u32) -> &FpNode {
        &self.nodes[idx as usize]
    }

    /// The per-item headers.
    pub fn headers(&self) -> &[Header] {
        &self.headers
    }

    /// Inserts a transaction of strictly ascending recoded items,
    /// incrementing the counts along its path by `weight`.
    pub fn insert(&mut self, items: &[u32], weight: u32) {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "items must ascend");
        let mut cur = 0u32;
        for &item in items {
            self.headers[item as usize].support += weight as u64;
            cur = self.child(cur, item, weight);
        }
    }

    /// Finds or creates the child of `parent` holding `item`, bumps its
    /// count by `weight`, and returns its index.
    fn child(&mut self, parent: u32, item: u32, weight: u32) -> u32 {
        // Walk the sibling BST. `slot` identifies the NIL link we would
        // attach a fresh node to: (owner, which-field).
        let mut cur = self.nodes[parent as usize].suffix;
        if cur == NIL {
            let idx = self.new_node(parent, item, weight);
            self.nodes[parent as usize].suffix = idx;
            return idx;
        }
        loop {
            let node = &mut self.nodes[cur as usize];
            match item.cmp(&node.item) {
                std::cmp::Ordering::Equal => {
                    node.count += weight;
                    return cur;
                }
                std::cmp::Ordering::Less => {
                    if node.left == NIL {
                        let idx = self.new_node(parent, item, weight);
                        self.nodes[cur as usize].left = idx;
                        return idx;
                    }
                    cur = node.left;
                }
                std::cmp::Ordering::Greater => {
                    if node.right == NIL {
                        let idx = self.new_node(parent, item, weight);
                        self.nodes[cur as usize].right = idx;
                        return idx;
                    }
                    cur = node.right;
                }
            }
        }
    }

    fn new_node(&mut self, parent: u32, item: u32, weight: u32) -> u32 {
        let idx = self.nodes.len() as u32;
        assert!(idx != NIL, "FP-tree exceeded u32 node indices");
        let header = &mut self.headers[item as usize];
        self.nodes.push(FpNode {
            item,
            count: weight,
            parent,
            nodelink: header.link,
            left: NIL,
            right: NIL,
            suffix: NIL,
        });
        header.link = idx;
        idx
    }

    /// Iterates the nodelink chain of `item`.
    pub fn nodelinks(&self, item: u32) -> NodeLinkIter<'_> {
        NodeLinkIter { tree: self, cur: self.headers[item as usize].link }
    }

    /// Collects the items on the path from `idx`'s parent up to the root,
    /// in ascending item order (root side first).
    pub fn prefix_path(&self, idx: u32, out: &mut Vec<u32>) {
        out.clear();
        let mut cur = self.nodes[idx as usize].parent;
        while cur != 0 && cur != NIL {
            out.push(self.nodes[cur as usize].item);
            cur = self.nodes[cur as usize].parent;
        }
        out.reverse();
    }

    /// If the whole tree is one downward path, returns its `(item, count)`
    /// pairs from the top; otherwise `None`. Enables the single-path
    /// shortcut of FP-growth.
    pub fn single_path(&self) -> Option<Vec<(u32, u32)>> {
        let mut path = Vec::new();
        let mut cur = self.nodes[0].suffix;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            if node.left != NIL || node.right != NIL {
                return None;
            }
            path.push((node.item, node.count));
            cur = node.suffix;
        }
        Some(path)
    }

    /// Support of `item` within this tree.
    pub fn item_support(&self, item: u32) -> u64 {
        self.headers[item as usize].support
    }

    /// Bytes per node of this in-memory representation.
    pub const NODE_BYTES: usize = std::mem::size_of::<FpNode>();

    /// Bytes per node of the 40-byte convention the paper uses as its
    /// baseline for state-of-the-art FP-growth implementations (§4.2).
    pub const PAPER_NODE_BYTES: usize = 40;
}

impl HeapSize for FpTree {
    /// Length-based accounting: the C implementations the paper compares
    /// against allocate nodes from a pool without growth slack, so we
    /// count exactly `nodes * size_of::<FpNode>()` rather than the Rust
    /// `Vec`'s doubling capacity.
    fn heap_bytes(&self) -> u64 {
        (self.nodes.len() * std::mem::size_of::<FpNode>()
            + self.headers.len() * std::mem::size_of::<Header>()) as u64
    }
}

/// Iterator over a nodelink chain.
pub struct NodeLinkIter<'a> {
    tree: &'a FpTree,
    cur: u32,
}

impl Iterator for NodeLinkIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.cur == NIL {
            return None;
        }
        let idx = self.cur;
        self.cur = self.tree.node(idx).nodelink;
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The FP-tree of Figure 1 is built from prefixes over items 1..4;
    /// here we use recoded ids 0..3.
    fn figure1_like_tree() -> FpTree {
        let mut t = FpTree::new(4);
        t.insert(&[0, 1, 2, 3], 5);
        t.insert(&[0, 1, 3], 3);
        t.insert(&[0, 2, 3], 2);
        t.insert(&[2, 3], 4);
        t.insert(&[0], 1);
        t
    }

    #[test]
    fn empty_tree_has_only_root() {
        let t = FpTree::new(3);
        assert!(t.is_empty());
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(t.single_path(), Some(vec![]));
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut t = FpTree::new(3);
        t.insert(&[0, 1], 1);
        t.insert(&[0, 1, 2], 1);
        t.insert(&[0, 2], 1);
        // nodes: 0, 0->1, 0->1->2, 0->2
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.item_support(0), 3);
        assert_eq!(t.item_support(1), 2);
        assert_eq!(t.item_support(2), 2);
    }

    #[test]
    fn counts_accumulate_along_paths() {
        let t = figure1_like_tree();
        // Node for prefix (0): count = 5 + 3 + 2 + 1 = 11.
        let first_zero = t.nodelinks(0).last().unwrap(); // oldest insertion
        assert_eq!(t.node(first_zero).item, 0);
        assert_eq!(t.node(first_zero).count, 11);
    }

    #[test]
    fn nodelinks_chain_all_occurrences() {
        let t = figure1_like_tree();
        // Item 3 occurs at ends of 4 distinct prefixes.
        assert_eq!(t.nodelinks(3).count(), 4);
        let total: u64 = t.nodelinks(3).map(|i| t.node(i).count as u64).sum();
        assert_eq!(total, t.item_support(3));
        assert_eq!(total, 5 + 3 + 2 + 4);
    }

    #[test]
    fn prefix_path_walks_to_root_in_ascending_order() {
        let t = figure1_like_tree();
        // Find the node for prefix (0,1,2,3): the deepest item-3 node.
        let idx = t
            .nodelinks(3)
            .find(|&i| {
                let mut p = Vec::new();
                t.prefix_path(i, &mut p);
                p.len() == 3
            })
            .unwrap();
        let mut path = Vec::new();
        t.prefix_path(idx, &mut path);
        assert_eq!(path, vec![0, 1, 2]);
    }

    #[test]
    fn single_path_detected() {
        let mut t = FpTree::new(4);
        t.insert(&[0, 1, 3], 2);
        t.insert(&[0, 1], 1);
        assert_eq!(t.single_path(), Some(vec![(0, 3), (1, 3), (3, 2)]));
        t.insert(&[0, 2], 1);
        assert_eq!(t.single_path(), None);
    }

    #[test]
    fn bst_ordering_holds_for_many_siblings() {
        let mut t = FpTree::new(64);
        // Insert singleton transactions in scrambled order.
        for item in [31u32, 5, 47, 0, 63, 22, 9, 40] {
            t.insert(&[item], 1);
        }
        // All are children of the root; walk the BST and check order.
        fn inorder(t: &FpTree, idx: u32, out: &mut Vec<u32>) {
            if idx == NIL {
                return;
            }
            inorder(t, t.node(idx).left, out);
            out.push(t.node(idx).item);
            inorder(t, t.node(idx).right, out);
        }
        let mut items = Vec::new();
        inorder(&t, t.node(0).suffix, &mut items);
        assert_eq!(items, vec![0, 5, 9, 22, 31, 40, 47, 63]);
    }

    #[test]
    fn from_db_applies_recoding() {
        let db = TransactionDb::from_rows(&[vec![10u32, 20], vec![10], vec![10, 20, 99]]);
        let recoder = ItemRecoder::scan(&db, 2);
        let t = FpTree::from_db(&db, &recoder);
        // item 10 (support 3) -> id 0; item 20 (support 2) -> id 1; 99 dropped.
        assert_eq!(t.num_items(), 2);
        assert_eq!(t.item_support(0), 3);
        assert_eq!(t.item_support(1), 2);
        assert_eq!(t.num_nodes(), 2);
    }

    #[test]
    fn weighted_insert_matches_repeated_insert() {
        let mut a = FpTree::new(3);
        a.insert(&[0, 2], 4);
        let mut b = FpTree::new(3);
        for _ in 0..4 {
            b.insert(&[0, 2], 1);
        }
        assert_eq!(a.item_support(0), b.item_support(0));
        assert_eq!(a.num_nodes(), b.num_nodes());
        let na = a.nodelinks(2).next().unwrap();
        let nb = b.nodelinks(2).next().unwrap();
        assert_eq!(a.node(na).count, b.node(nb).count);
    }

    #[test]
    fn node_size_is_28_bytes() {
        assert_eq!(FpTree::NODE_BYTES, 28);
    }
}
