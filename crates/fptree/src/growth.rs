//! The FP-growth mining algorithm on the classic FP-tree (§2.1).
//!
//! FP-growth is a divide-and-conquer algorithm: for every item `a`, taken
//! from least to most frequent, it (1) emits `{a} ∪ suffix` with `a`'s
//! support, (2) gathers the *conditional pattern base* of `a` — the prefix
//! paths of all of `a`'s nodes, reached through the nodelink chain and the
//! parent pointers — (3) builds a smaller *conditional FP-tree* from those
//! weighted paths, and (4) recurses on it with `a` appended to the suffix.
//!
//! When a (conditional) tree degenerates to a single downward path, all
//! frequent itemsets it can produce are the subsets of that path, each
//! supported by the count of its deepest chosen node; enumerating them
//! directly skips the remaining recursion (the classic single-path
//! shortcut, enabled by default).
//!
//! Conditional trees keep the *global* support order of items rather than
//! re-sorting by conditional frequency. Both are correct; keeping the
//! global order preserves the strictly-ascending-ids-along-paths invariant
//! that the compressed structures rely on, making this implementation a
//! like-for-like baseline for CFP-growth.

use crate::tree::FpTree;
use cfp_data::{Item, ItemRecoder, ItemsetSink, MineStats, Miner, TransactionDb};
use cfp_metrics::{HeapSize, MemGauge, Stopwatch};

/// Configurable FP-growth miner over the ternary FP-tree.
#[derive(Clone, Debug)]
pub struct FpGrowthMiner {
    /// Enumerate single-path trees directly instead of recursing.
    pub single_path_opt: bool,
}

impl Default for FpGrowthMiner {
    fn default() -> Self {
        FpGrowthMiner { single_path_opt: true }
    }
}

impl FpGrowthMiner {
    /// A miner with default options.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Recursion state shared across conditional trees.
struct Ctx<'a> {
    sink: &'a mut dyn ItemsetSink,
    gauge: MemGauge,
    min_support: u64,
    single_path_opt: bool,
    /// Original ids of the itemset under construction (unsorted).
    suffix: Vec<Item>,
    /// Scratch buffer for emitting sorted itemsets.
    emit_buf: Vec<Item>,
    /// Scratch buffer for prefix paths.
    path_buf: Vec<u32>,
    itemsets: u64,
}

impl Ctx<'_> {
    fn emit(&mut self, support: u64) {
        self.emit_buf.clear();
        self.emit_buf.extend_from_slice(&self.suffix);
        self.emit_buf.sort_unstable();
        self.sink.emit(&self.emit_buf, support);
        self.itemsets += 1;
    }
}

impl Miner for FpGrowthMiner {
    fn name(&self) -> &'static str {
        "fp-growth"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64, sink: &mut dyn ItemsetSink) -> MineStats {
        let mut stats = MineStats::default();
        let gauge = MemGauge::new();

        let mut sw = Stopwatch::start();
        let recoder = ItemRecoder::scan(db, min_support);
        stats.scan_time = sw.lap();

        let tree = FpTree::from_db(db, &recoder);
        gauge.alloc(tree.heap_bytes());
        gauge.checkpoint();
        stats.build_time = sw.lap();
        stats.tree_nodes = tree.num_nodes() as u64;

        let globals: Vec<Item> =
            (0..recoder.num_items() as u32).map(|i| recoder.original(i)).collect();
        let mut ctx = Ctx {
            sink,
            gauge: gauge.clone(),
            min_support,
            single_path_opt: self.single_path_opt,
            suffix: Vec::new(),
            emit_buf: Vec::new(),
            path_buf: Vec::new(),
            itemsets: 0,
        };
        mine_tree(&tree, &globals, &mut ctx);
        stats.mine_time = sw.lap();

        gauge.free(tree.heap_bytes());
        stats.itemsets = ctx.itemsets;
        stats.peak_bytes = gauge.peak();
        stats.avg_bytes = gauge.average();
        stats
    }
}

/// Mines all frequent itemsets of `tree`, each combined with the suffix
/// accumulated in `ctx`. `globals` maps the tree's local ids to original
/// item identifiers.
fn mine_tree(tree: &FpTree, globals: &[Item], ctx: &mut Ctx<'_>) {
    if ctx.single_path_opt {
        if let Some(path) = tree.single_path() {
            enumerate_single_path(&path, globals, ctx);
            return;
        }
    }
    for item in (0..tree.num_items() as u32).rev() {
        let support = tree.item_support(item);
        if support < ctx.min_support {
            // Items of a conditional tree are pre-filtered, but the
            // initial tree's recoder already filtered too; this only
            // guards items that vanished from this subtree entirely.
            continue;
        }
        ctx.suffix.push(globals[item as usize]);
        ctx.emit(support);

        if let Some((cond, cond_globals)) = conditional_tree(tree, item, globals, ctx) {
            ctx.gauge.alloc(cond.heap_bytes());
            ctx.gauge.checkpoint();
            mine_tree(&cond, &cond_globals, ctx);
            ctx.gauge.free(cond.heap_bytes());
        }
        ctx.suffix.pop();
    }
}

/// Builds the conditional FP-tree of `item`: the prefix paths of all its
/// nodes, restricted to items that stay frequent, inserted with the node
/// counts as weights. Returns `None` when no conditional item is frequent.
fn conditional_tree(
    tree: &FpTree,
    item: u32,
    globals: &[Item],
    ctx: &mut Ctx<'_>,
) -> Option<(FpTree, Vec<Item>)> {
    // Pass 1: conditional support of every item above `item`.
    let mut freq = vec![0u64; item as usize];
    for idx in tree.nodelinks(item) {
        let count = tree.node(idx).count as u64;
        let mut cur = tree.node(idx).parent;
        while cur != 0 && cur != crate::tree::NIL {
            freq[tree.node(cur).item as usize] += count;
            cur = tree.node(cur).parent;
        }
    }

    // Dense remap of the surviving items, preserving the global order.
    let mut remap = vec![u32::MAX; item as usize];
    let mut cond_globals = Vec::new();
    for (old, &f) in freq.iter().enumerate() {
        if f >= ctx.min_support {
            remap[old] = cond_globals.len() as u32;
            cond_globals.push(globals[old]);
        }
    }
    if cond_globals.is_empty() {
        return None;
    }

    // Pass 2: insert the filtered prefix paths.
    let mut cond = FpTree::new(cond_globals.len());
    let mut path = std::mem::take(&mut ctx.path_buf);
    let mut filtered: Vec<u32> = Vec::new();
    for idx in tree.nodelinks(item) {
        let count = tree.node(idx).count;
        tree.prefix_path(idx, &mut path);
        filtered.clear();
        filtered.extend(
            path.iter().filter(|&&it| remap[it as usize] != u32::MAX).map(|&it| remap[it as usize]),
        );
        if !filtered.is_empty() {
            cond.insert(&filtered, count);
        }
    }
    ctx.path_buf = path;
    Some((cond, cond_globals))
}

/// Emits every non-empty subset of a single-path tree combined with the
/// current suffix; the support of a subset is the count of its deepest
/// chosen node (counts are non-increasing downward).
fn enumerate_single_path(path: &[(u32, u32)], globals: &[Item], ctx: &mut Ctx<'_>) {
    fn rec(path: &[(u32, u32)], globals: &[Item], depth: usize, ctx: &mut Ctx<'_>) {
        if depth == path.len() {
            return;
        }
        // Subsets whose deepest element is path[depth]: every subset of
        // path[..depth] extended by path[depth], supported by its count.
        let (item, count) = path[depth];
        ctx.suffix.push(globals[item as usize]);
        ctx.emit(count as u64);
        rec_prefix(path, globals, depth, 0, count, ctx);
        ctx.suffix.pop();
        rec(path, globals, depth + 1, ctx);
    }

    /// Enumerates subsets of path[..deepest] to prepend to the chosen
    /// deepest element (support fixed by the deepest).
    fn rec_prefix(
        path: &[(u32, u32)],
        globals: &[Item],
        deepest: usize,
        i: usize,
        support: u32,
        ctx: &mut Ctx<'_>,
    ) {
        if i == deepest {
            return;
        }
        let (item, _) = path[i];
        ctx.suffix.push(globals[item as usize]);
        ctx.emit(support as u64);
        rec_prefix(path, globals, deepest, i + 1, support, ctx);
        ctx.suffix.pop();
        rec_prefix(path, globals, deepest, i + 1, support, ctx);
    }

    rec(path, globals, 0, ctx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_data::miner::{CollectSink, CountingSink};

    fn mine_collect(db: &TransactionDb, minsup: u64, opt: bool) -> Vec<(Vec<Item>, u64)> {
        let miner = FpGrowthMiner { single_path_opt: opt };
        let mut sink = CollectSink::new();
        miner.mine(db, minsup, &mut sink);
        sink.into_sorted()
    }

    /// Brute-force oracle over small item universes.
    fn oracle(db: &TransactionDb, minsup: u64) -> Vec<(Vec<Item>, u64)> {
        let max = db.max_item().map_or(0, |m| m as usize + 1);
        assert!(max <= 16, "oracle only for tiny universes");
        let mut out = Vec::new();
        for mask in 1u32..(1 << max) {
            let items: Vec<Item> = (0..max as u32).filter(|&i| mask & (1 << i) != 0).collect();
            let support = db.iter().filter(|t| items.iter().all(|i| t.contains(i))).count() as u64;
            if support >= minsup {
                out.push((items, support));
            }
        }
        out.sort();
        out
    }

    #[test]
    fn textbook_example_supports() {
        // Classic example from the FP-growth paper.
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]);
        let got = mine_collect(&db, 2, true);
        assert_eq!(got, oracle(&db, 2));
        // Spot checks.
        assert!(got.contains(&(vec![1, 2, 3], 2)));
        assert!(got.contains(&(vec![2], 7)));
        assert!(got.contains(&(vec![1, 2, 5], 2)));
    }

    #[test]
    fn single_path_opt_changes_nothing() {
        let db = TransactionDb::from_rows(&[
            vec![0, 1, 2, 3],
            vec![0, 1, 2],
            vec![0, 1],
            vec![0],
            vec![4, 5],
        ]);
        assert_eq!(mine_collect(&db, 1, true), mine_collect(&db, 1, false));
    }

    #[test]
    fn pure_single_path_database() {
        let db = TransactionDb::from_rows(&[vec![1, 2, 3], vec![1, 2, 3], vec![1, 2, 3]]);
        let got = mine_collect(&db, 2, true);
        assert_eq!(got.len(), 7, "2^3 - 1 subsets");
        assert!(got.iter().all(|(_, s)| *s == 3));
    }

    #[test]
    fn minsup_above_everything_yields_nothing() {
        let db = TransactionDb::from_rows(&[vec![1, 2], vec![2, 3]]);
        assert!(mine_collect(&db, 3, true).is_empty());
    }

    #[test]
    fn empty_database() {
        let db = TransactionDb::new();
        assert!(mine_collect(&db, 1, true).is_empty());
    }

    #[test]
    fn transactions_with_duplicates_count_once() {
        let db = TransactionDb::from_rows(&[vec![7, 7, 8], vec![7, 8, 8]]);
        let got = mine_collect(&db, 2, true);
        assert_eq!(got, vec![(vec![7], 2), (vec![7, 8], 2), (vec![8], 2)]);
    }

    #[test]
    fn random_databases_match_oracle() {
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..30 {
            let n_items = rng.gen_range(1..=8);
            let n_txn = rng.gen_range(1..=40);
            let mut db = TransactionDb::new();
            for _ in 0..n_txn {
                let t: Vec<Item> =
                    (0..n_items).filter(|_| rng.gen_bool(0.4)).map(|i| i as Item).collect();
                db.push(&t);
            }
            let minsup = rng.gen_range(1..=4);
            assert_eq!(
                mine_collect(&db, minsup, true),
                oracle(&db, minsup),
                "trial {trial} minsup {minsup}"
            );
        }
    }

    #[test]
    fn stats_are_populated() {
        let db = TransactionDb::from_rows(&[vec![1, 2, 3], vec![1, 2], vec![1]]);
        let miner = FpGrowthMiner::new();
        let mut sink = CountingSink::new();
        let stats = miner.mine(&db, 1, &mut sink);
        assert_eq!(stats.itemsets, sink.count);
        assert!(stats.peak_bytes > 0);
        assert_eq!(stats.tree_nodes, 3, "1-2-3 chain shares all nodes");
    }
}
