//! Leading-zero-byte histograms (Tables 1 and 2 of the paper).
//!
//! The effectiveness of leading-zero-byte suppression depends entirely on
//! how many of the four bytes of a 32-bit field are zero. Tables 1 and 2
//! report, for every node field of the FP-tree and the CFP-tree, the
//! fraction of nodes whose field has 0, 1, 2, 3, or 4 leading zero bytes
//! (4 leading zero bytes means the value is 0). [`LeadingZeroHistogram`]
//! accumulates those distributions.

/// Number of leading zero *bytes* in a 32-bit value (0..=4).
///
/// A value of 0 has 4 leading zero bytes; a value >= 2^24 has none.
pub fn leading_zero_bytes(v: u32) -> usize {
    (v.leading_zeros() / 8) as usize
}

/// Distribution of leading-zero-byte counts over many 32-bit samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LeadingZeroHistogram {
    buckets: [u64; 5],
}

impl LeadingZeroHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one 32-bit sample.
    pub fn record(&mut self, value: u32) {
        self.buckets[leading_zero_bytes(value)] += 1;
    }

    /// Adds `n` samples of the same value at once.
    pub fn record_n(&mut self, value: u32, n: u64) {
        self.buckets[leading_zero_bytes(value)] += n;
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Raw bucket counts, indexed by number of leading zero bytes.
    pub fn buckets(&self) -> &[u64; 5] {
        &self.buckets
    }

    /// Fraction of samples in each bucket (all zero when empty).
    pub fn fractions(&self) -> [f64; 5] {
        let total = self.total();
        if total == 0 {
            return [0.0; 5];
        }
        let mut out = [0.0; 5];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = *b as f64 / total as f64;
        }
        out
    }

    /// Formats the buckets in the paper's table style (`0% <1% 2% 98% 0%`).
    pub fn paper_row(&self) -> String {
        self.fractions()
            .iter()
            .map(|&f| {
                let pct = f * 100.0;
                if pct == 0.0 {
                    "0%".to_string()
                } else if pct < 1.0 {
                    "<1%".to_string()
                } else if pct > 99.0 && pct < 100.0 {
                    ">99%".to_string()
                } else {
                    format!("{:.0}%", pct)
                }
            })
            .collect::<Vec<_>>()
            .join("\t")
    }

    /// Average number of leading zero bytes per sample.
    pub fn mean_zero_bytes(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self.buckets.iter().enumerate().map(|(i, &c)| i as u64 * c).sum();
        weighted as f64 / total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Percentile summary of a log2-bucketed histogram.
///
/// The trace registry's `Histogram::record_log2` puts value 0 in bucket 0
/// and value `v > 0` in bucket `64 - v.leading_zeros()`, so bucket `k > 0`
/// covers `[2^(k-1), 2^k)`. A percentile over such buckets is only known
/// up to a bucket, so the summary reports each percentile as the bucket's
/// *upper bound* (`2^k - 1`; 0 for bucket 0) — a conservative "at most"
/// figure that is stable across runs, unlike an ad-hoc maximum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Log2Summary {
    /// Number of recorded samples.
    pub count: u64,
    /// Upper bound of the bucket holding the 50th percentile.
    pub p50: u64,
    /// Upper bound of the bucket holding the 95th percentile.
    pub p95: u64,
    /// Upper bound of the highest non-empty bucket.
    pub max: u64,
}

/// Summarizes a dense log2-bucket vector (as produced by the trace
/// registry's histogram snapshots) into count / p50 / p95 / max.
pub fn summarize_log2(buckets: &[u64]) -> Log2Summary {
    summarize_by(buckets, |k| {
        if k == 0 {
            0
        } else if k >= 64 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    })
}

/// Summarizes a *linear*-bucketed histogram (bucket `k` holds the exact
/// value `k`, e.g. recursion depths): percentiles report the bucket
/// index itself, which is exact rather than an upper bound.
pub fn summarize_linear(buckets: &[u64]) -> Log2Summary {
    summarize_by(buckets, |k| k as u64)
}

fn summarize_by(buckets: &[u64], upper: impl Fn(usize) -> u64) -> Log2Summary {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return Log2Summary::default();
    }
    let percentile = |q_num: u64, q_den: u64| -> u64 {
        // Smallest bucket whose cumulative count reaches ceil(q * count).
        let target = count.saturating_mul(q_num).div_ceil(q_den);
        let mut cum = 0u64;
        for (k, &c) in buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return upper(k);
            }
        }
        upper(buckets.len() - 1)
    };
    let max_bucket = buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
    Log2Summary {
        count,
        p50: percentile(50, 100),
        p95: percentile(95, 100),
        max: upper(max_bucket),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leading_zero_bytes_boundaries() {
        assert_eq!(leading_zero_bytes(0), 4);
        assert_eq!(leading_zero_bytes(1), 3);
        assert_eq!(leading_zero_bytes(0xFF), 3);
        assert_eq!(leading_zero_bytes(0x100), 2);
        assert_eq!(leading_zero_bytes(0xFFFF), 2);
        assert_eq!(leading_zero_bytes(0x1_0000), 1);
        assert_eq!(leading_zero_bytes(0xFF_FFFF), 1);
        assert_eq!(leading_zero_bytes(0x100_0000), 0);
        assert_eq!(leading_zero_bytes(u32::MAX), 0);
    }

    #[test]
    fn record_buckets_correctly() {
        let mut h = LeadingZeroHistogram::new();
        h.record(0);
        h.record(0);
        h.record(5);
        h.record(0x1234_5678);
        assert_eq!(h.buckets(), &[1, 0, 0, 1, 2]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = LeadingZeroHistogram::new();
        for v in [0u32, 1, 300, 70000, 0x2000_0000] {
            h.record(v);
        }
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LeadingZeroHistogram::new();
        assert_eq!(h.fractions(), [0.0; 5]);
        assert_eq!(h.mean_zero_bytes(), 0.0);
    }

    #[test]
    fn mean_zero_bytes_weighted() {
        let mut h = LeadingZeroHistogram::new();
        h.record_n(0, 3); // 4 zero bytes each
        h.record_n(0x100_0000, 1); // 0 zero bytes
        assert!((h.mean_zero_bytes() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_buckets() {
        let mut a = LeadingZeroHistogram::new();
        a.record(0);
        let mut b = LeadingZeroHistogram::new();
        b.record(1);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.buckets()[4], 1);
        assert_eq!(a.buckets()[3], 1);
    }

    #[test]
    fn paper_row_formats_edges() {
        let mut h = LeadingZeroHistogram::new();
        h.record_n(0, 98);
        h.record_n(0x100_0000, 2);
        let row = h.paper_row();
        assert!(row.starts_with("2%"), "row was {row}");
        assert!(row.ends_with("98%"), "row was {row}");
    }

    #[test]
    fn summarize_log2_empty_is_zero() {
        assert_eq!(summarize_log2(&[]), Log2Summary::default());
        assert_eq!(summarize_log2(&[0, 0, 0]), Log2Summary::default());
    }

    #[test]
    fn summarize_linear_reports_bucket_indexes() {
        assert_eq!(summarize_linear(&[]), Log2Summary::default());
        // 50 depth-1 events, 45 depth-2, 5 depth-7: the median is depth 1
        // exactly (not an upper bound), p95 depth 2, max depth 7.
        let s = summarize_linear(&[0, 50, 45, 0, 0, 0, 0, 5]);
        assert_eq!(s, Log2Summary { count: 100, p50: 1, p95: 2, max: 7 });
    }

    #[test]
    fn summarize_log2_single_bucket() {
        // 10 samples of value 0 (bucket 0).
        let s = summarize_log2(&[10]);
        assert_eq!(s, Log2Summary { count: 10, p50: 0, p95: 0, max: 0 });
        // 10 samples in bucket 3, i.e. values in [4, 8): upper bound 7.
        let s = summarize_log2(&[0, 0, 0, 10]);
        assert_eq!(s, Log2Summary { count: 10, p50: 7, p95: 7, max: 7 });
    }

    #[test]
    fn summarize_log2_percentiles_split_buckets() {
        // 60 samples in bucket 1 ([1,2)), 30 in bucket 4 ([8,16)),
        // 10 in bucket 6 ([32,64)).
        let mut buckets = vec![0u64; 8];
        buckets[1] = 60;
        buckets[4] = 30;
        buckets[6] = 10;
        let s = summarize_log2(&buckets);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 1, "50th sample is still in bucket 1");
        assert_eq!(s.p95, 63, "95th sample lands in bucket 6");
        assert_eq!(s.max, 63);
    }

    #[test]
    fn summarize_log2_p95_on_boundary() {
        // Exactly 95 of 100 in the low bucket: the 95th sample is the
        // last low one, so p95 reports the low bucket.
        let s = summarize_log2(&[95, 5]);
        assert_eq!(s.p50, 0);
        assert_eq!(s.p95, 0);
        assert_eq!(s.max, 1);
    }
}
