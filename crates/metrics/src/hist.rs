//! Leading-zero-byte histograms (Tables 1 and 2 of the paper).
//!
//! The effectiveness of leading-zero-byte suppression depends entirely on
//! how many of the four bytes of a 32-bit field are zero. Tables 1 and 2
//! report, for every node field of the FP-tree and the CFP-tree, the
//! fraction of nodes whose field has 0, 1, 2, 3, or 4 leading zero bytes
//! (4 leading zero bytes means the value is 0). [`LeadingZeroHistogram`]
//! accumulates those distributions.

/// Number of leading zero *bytes* in a 32-bit value (0..=4).
///
/// A value of 0 has 4 leading zero bytes; a value >= 2^24 has none.
pub fn leading_zero_bytes(v: u32) -> usize {
    (v.leading_zeros() / 8) as usize
}

/// Distribution of leading-zero-byte counts over many 32-bit samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LeadingZeroHistogram {
    buckets: [u64; 5],
}

impl LeadingZeroHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one 32-bit sample.
    pub fn record(&mut self, value: u32) {
        self.buckets[leading_zero_bytes(value)] += 1;
    }

    /// Adds `n` samples of the same value at once.
    pub fn record_n(&mut self, value: u32, n: u64) {
        self.buckets[leading_zero_bytes(value)] += n;
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Raw bucket counts, indexed by number of leading zero bytes.
    pub fn buckets(&self) -> &[u64; 5] {
        &self.buckets
    }

    /// Fraction of samples in each bucket (all zero when empty).
    pub fn fractions(&self) -> [f64; 5] {
        let total = self.total();
        if total == 0 {
            return [0.0; 5];
        }
        let mut out = [0.0; 5];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = *b as f64 / total as f64;
        }
        out
    }

    /// Formats the buckets in the paper's table style (`0% <1% 2% 98% 0%`).
    pub fn paper_row(&self) -> String {
        self.fractions()
            .iter()
            .map(|&f| {
                let pct = f * 100.0;
                if pct == 0.0 {
                    "0%".to_string()
                } else if pct < 1.0 {
                    "<1%".to_string()
                } else if pct > 99.0 && pct < 100.0 {
                    ">99%".to_string()
                } else {
                    format!("{:.0}%", pct)
                }
            })
            .collect::<Vec<_>>()
            .join("\t")
    }

    /// Average number of leading zero bytes per sample.
    pub fn mean_zero_bytes(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self.buckets.iter().enumerate().map(|(i, &c)| i as u64 * c).sum();
        weighted as f64 / total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leading_zero_bytes_boundaries() {
        assert_eq!(leading_zero_bytes(0), 4);
        assert_eq!(leading_zero_bytes(1), 3);
        assert_eq!(leading_zero_bytes(0xFF), 3);
        assert_eq!(leading_zero_bytes(0x100), 2);
        assert_eq!(leading_zero_bytes(0xFFFF), 2);
        assert_eq!(leading_zero_bytes(0x1_0000), 1);
        assert_eq!(leading_zero_bytes(0xFF_FFFF), 1);
        assert_eq!(leading_zero_bytes(0x100_0000), 0);
        assert_eq!(leading_zero_bytes(u32::MAX), 0);
    }

    #[test]
    fn record_buckets_correctly() {
        let mut h = LeadingZeroHistogram::new();
        h.record(0);
        h.record(0);
        h.record(5);
        h.record(0x1234_5678);
        assert_eq!(h.buckets(), &[1, 0, 0, 1, 2]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = LeadingZeroHistogram::new();
        for v in [0u32, 1, 300, 70000, 0x2000_0000] {
            h.record(v);
        }
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LeadingZeroHistogram::new();
        assert_eq!(h.fractions(), [0.0; 5]);
        assert_eq!(h.mean_zero_bytes(), 0.0);
    }

    #[test]
    fn mean_zero_bytes_weighted() {
        let mut h = LeadingZeroHistogram::new();
        h.record_n(0, 3); // 4 zero bytes each
        h.record_n(0x100_0000, 1); // 0 zero bytes
        assert!((h.mean_zero_bytes() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_buckets() {
        let mut a = LeadingZeroHistogram::new();
        a.record(0);
        let mut b = LeadingZeroHistogram::new();
        b.record(1);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.buckets()[4], 1);
        assert_eq!(a.buckets()[3], 1);
    }

    #[test]
    fn paper_row_formats_edges() {
        let mut h = LeadingZeroHistogram::new();
        h.record_n(0, 98);
        h.record_n(0x100_0000, 2);
        let row = h.paper_row();
        assert!(row.starts_with("2%"), "row was {row}");
        assert!(row.ends_with("98%"), "row was {row}");
    }
}
