//! A shareable current/peak memory gauge.
//!
//! Mining algorithms in this workspace account for their memory explicitly:
//! every data structure they create or drop reports its exact byte footprint
//! to a [`MemGauge`]. The gauge records the running total and the peak, which
//! is the quantity plotted in Figures 7(b), 7(d), and 8(b) of the paper.
//!
//! The gauge is a cheap `Rc<Cell>` pair so that deeply recursive code (the
//! mine phase builds thousands of conditional trees) can clone a handle
//! instead of threading `&mut` borrows through every call.
//!
//! When tracing is enabled (`cfp_trace::set_enabled(true)`), every gauge
//! additionally mirrors its movements into the global
//! `cfp_trace::counters::MEM_CURRENT_BYTES` / `MEM_PEAK_BYTES` atomics.
//! `MemGauge` itself is `Rc`-based and not `Send`, so the mirror is what
//! the background memory sampler reads: the sum of all live gauges across
//! the process.

use cfp_trace::counters::{MEM_CURRENT_BYTES, MEM_PEAK_BYTES};
use std::cell::Cell;
use std::rc::Rc;

#[derive(Debug, Default)]
struct Inner {
    current: Cell<u64>,
    peak: Cell<u64>,
    /// Sum of `current` observed at every `checkpoint` call, for averages.
    sample_sum: Cell<u64>,
    sample_count: Cell<u64>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // A gauge dropped with bytes still accounted (its owner structure
        // is going away wholesale) must release them from the global
        // mirror, or dead runs would inflate later samples.
        let cur = self.current.get();
        if cur > 0 && cfp_trace::enabled() {
            MEM_CURRENT_BYTES.sub(cur);
        }
    }
}

/// Tracks current and peak logical memory usage in bytes.
///
/// Cloning produces a handle to the same underlying counters.
#[derive(Clone, Debug, Default)]
pub struct MemGauge {
    inner: Rc<Inner>,
}

impl MemGauge {
    /// Creates a gauge with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `bytes` additional bytes are now in use.
    pub fn alloc(&self, bytes: u64) {
        let cur = self.inner.current.get() + bytes;
        self.inner.current.set(cur);
        if cur > self.inner.peak.get() {
            self.inner.peak.set(cur);
        }
        if cfp_trace::enabled() {
            MEM_CURRENT_BYTES.add(bytes);
            MEM_PEAK_BYTES.record(MEM_CURRENT_BYTES.get());
        }
    }

    /// Records that `bytes` bytes have been released.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if more bytes are freed than were allocated;
    /// release builds saturate at zero.
    pub fn free(&self, bytes: u64) {
        let cur = self.inner.current.get();
        debug_assert!(bytes <= cur, "MemGauge::free({bytes}) exceeds current usage {cur}");
        self.inner.current.set(cur.saturating_sub(bytes));
        if cfp_trace::enabled() {
            MEM_CURRENT_BYTES.sub(bytes.min(cur));
        }
    }

    /// Adjusts the gauge to reflect that a structure changed size.
    pub fn resize(&self, old_bytes: u64, new_bytes: u64) {
        if new_bytes >= old_bytes {
            self.alloc(new_bytes - old_bytes);
        } else {
            self.free(old_bytes - new_bytes);
        }
    }

    /// Currently accounted bytes.
    pub fn current(&self) -> u64 {
        self.inner.current.get()
    }

    /// Highest value `current` has reached since the last [`reset`](Self::reset).
    pub fn peak(&self) -> u64 {
        self.inner.peak.get()
    }

    /// Samples `current` for the running average (the paper reports average
    /// memory consumption of CFP-growth in Figure 7(d)).
    pub fn checkpoint(&self) {
        self.inner.sample_sum.set(self.inner.sample_sum.get() + self.inner.current.get());
        self.inner.sample_count.set(self.inner.sample_count.get() + 1);
    }

    /// Average of all checkpointed samples, or 0 with no samples.
    pub fn average(&self) -> u64 {
        self.inner.sample_sum.get().checked_div(self.inner.sample_count.get()).unwrap_or(0)
    }

    /// Clears every counter.
    pub fn reset(&self) {
        if cfp_trace::enabled() {
            MEM_CURRENT_BYTES.sub(self.inner.current.get());
        }
        self.inner.current.set(0);
        self.inner.peak.set(0);
        self.inner.sample_sum.set(0);
        self.inner.sample_count.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_tracks_current_and_peak() {
        let g = MemGauge::new();
        g.alloc(100);
        g.alloc(50);
        assert_eq!(g.current(), 150);
        assert_eq!(g.peak(), 150);
        g.free(120);
        assert_eq!(g.current(), 30);
        assert_eq!(g.peak(), 150);
        g.alloc(10);
        assert_eq!(g.peak(), 150, "peak only moves upward");
    }

    #[test]
    fn clones_share_state() {
        let g = MemGauge::new();
        let h = g.clone();
        g.alloc(7);
        h.alloc(3);
        assert_eq!(g.current(), 10);
        assert_eq!(h.peak(), 10);
    }

    #[test]
    fn resize_moves_in_both_directions() {
        let g = MemGauge::new();
        g.alloc(100);
        g.resize(100, 160);
        assert_eq!(g.current(), 160);
        g.resize(160, 40);
        assert_eq!(g.current(), 40);
        assert_eq!(g.peak(), 160);
    }

    #[test]
    fn average_over_checkpoints() {
        let g = MemGauge::new();
        g.alloc(10);
        g.checkpoint();
        g.alloc(30);
        g.checkpoint();
        assert_eq!(g.average(), 25);
    }

    #[test]
    fn reset_clears_all() {
        let g = MemGauge::new();
        g.alloc(10);
        g.checkpoint();
        g.reset();
        assert_eq!(g.current(), 0);
        assert_eq!(g.peak(), 0);
        assert_eq!(g.average(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds current usage")]
    #[cfg(debug_assertions)]
    fn over_free_panics_in_debug() {
        let g = MemGauge::new();
        g.alloc(1);
        g.free(2);
    }
}
