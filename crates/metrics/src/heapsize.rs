//! Exact heap-footprint reporting.
//!
//! Rather than asking the OS for RSS (noisy, allocator-dependent), every
//! data structure in this workspace can report the number of heap bytes it
//! owns. Capacity, not length, is counted: a `Vec` that reserved 1 MiB holds
//! 1 MiB of the machine's memory regardless of how much of it is filled,
//! and the paper's memory figures are about exactly that kind of footprint.

/// Types that know the exact number of heap bytes they own.
///
/// Implementations must count *capacity* (reserved memory), not just live
/// elements, and must include indirectly owned allocations.
pub trait HeapSize {
    /// Number of heap bytes owned by `self`, excluding `size_of::<Self>()`.
    fn heap_bytes(&self) -> u64;

    /// Total footprint: inline size plus owned heap bytes.
    fn total_bytes(&self) -> u64
    where
        Self: Sized,
    {
        std::mem::size_of::<Self>() as u64 + self.heap_bytes()
    }
}

impl<T: Copy> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> u64 {
        (self.capacity() * std::mem::size_of::<T>()) as u64
    }
}

impl<T: Copy> HeapSize for Box<[T]> {
    fn heap_bytes(&self) -> u64 {
        std::mem::size_of_val::<[T]>(self) as u64
    }
}

impl HeapSize for String {
    fn heap_bytes(&self) -> u64 {
        self.capacity() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_counts_capacity_not_len() {
        let mut v: Vec<u32> = Vec::with_capacity(100);
        v.push(1);
        assert_eq!(v.heap_bytes(), 400);
    }

    #[test]
    fn empty_vec_owns_nothing() {
        let v: Vec<u64> = Vec::new();
        assert_eq!(v.heap_bytes(), 0);
    }

    #[test]
    fn boxed_slice_counts_len() {
        let b: Box<[u16]> = vec![0u16; 10].into_boxed_slice();
        assert_eq!(b.heap_bytes(), 20);
    }

    #[test]
    fn total_bytes_adds_inline_size() {
        let v: Vec<u8> = Vec::with_capacity(8);
        assert_eq!(v.total_bytes(), 8 + std::mem::size_of::<Vec<u8>>() as u64);
    }
}
