//! Phase timing for the build / convert / mine phases of the algorithms.

use std::time::{Duration, Instant};

/// A restartable stopwatch.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Elapsed time since start (or the last [`lap`](Self::lap)).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Returns the elapsed time and restarts the watch.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.start;
        self.start = now;
        d
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Named accumulated durations for an algorithm's phases.
///
/// CFP-growth reports scan, build, convert, and mine times separately
/// (Figure 7(a) plots scan vs. build+convert).
#[derive(Clone, Debug, Default)]
pub struct PhaseTimes {
    phases: Vec<(&'static str, Duration)>,
}

impl PhaseTimes {
    /// An empty set of phases.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to the accumulated time of `name`, creating it if needed.
    pub fn add(&mut self, name: &'static str, d: Duration) {
        if let Some((_, acc)) = self.phases.iter_mut().find(|(n, _)| *n == name) {
            *acc += d;
        } else {
            self.phases.push((name, d));
        }
    }

    /// Accumulated time of `name`, or zero if never recorded.
    pub fn get(&self, name: &str) -> Duration {
        self.phases.iter().find(|(n, _)| *n == name).map(|(_, d)| *d).unwrap_or_default()
    }

    /// All phases in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Duration)> + '_ {
        self.phases.iter().copied()
    }

    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_positive_time() {
        let sw = Stopwatch::start();
        std::hint::black_box(0);
        assert!(sw.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn lap_restarts() {
        let mut sw = Stopwatch::start();
        let first = sw.lap();
        let second = sw.elapsed();
        assert!(first >= Duration::ZERO);
        assert!(second <= first + Duration::from_secs(1));
    }

    #[test]
    fn phases_accumulate_by_name() {
        let mut p = PhaseTimes::new();
        p.add("build", Duration::from_millis(5));
        p.add("build", Duration::from_millis(7));
        p.add("mine", Duration::from_millis(3));
        assert_eq!(p.get("build"), Duration::from_millis(12));
        assert_eq!(p.get("mine"), Duration::from_millis(3));
        assert_eq!(p.get("missing"), Duration::ZERO);
        assert_eq!(p.total(), Duration::from_millis(15));
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut p = PhaseTimes::new();
        p.add("scan", Duration::from_millis(1));
        p.add("build", Duration::from_millis(2));
        let names: Vec<_> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["scan", "build"]);
    }
}
