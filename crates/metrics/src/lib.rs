//! Measurement utilities shared by every crate in the CFP-growth workspace.
//!
//! The paper's central claim is about *memory*: the CFP-tree and CFP-array
//! shrink FP-growth's working set by roughly an order of magnitude. To verify
//! that claim we need exact, allocator-independent accounting of how many
//! bytes each data structure occupies, the peak across a whole mining run,
//! and per-field statistics such as the leading-zero-byte histograms of
//! Tables 1 and 2. This crate provides those primitives:
//!
//! - [`MemGauge`]: a shareable current/peak byte counter threaded through an
//!   algorithm's phases.
//! - [`HeapSize`]: a trait reporting the exact heap footprint of a structure.
//! - [`LeadingZeroHistogram`]: per-field distribution of leading zero bytes
//!   in 32-bit values (Tables 1 and 2).
//! - [`Stopwatch`] / [`PhaseTimes`]: simple phase timing.
//! - [`fmt_bytes`] / [`fmt_count`]: human-readable formatting for reports.

#![warn(missing_docs)]

pub mod gauge;
pub mod heapsize;
pub mod hist;
pub mod timer;

pub use gauge::MemGauge;
pub use heapsize::HeapSize;
pub use hist::{summarize_linear, summarize_log2, LeadingZeroHistogram, Log2Summary};
pub use timer::{PhaseTimes, Stopwatch};

/// Formats a byte count with a binary-prefixed unit (`1.50 MiB`).
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    if bytes < 1024 {
        return format!("{bytes} B");
    }
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

/// Formats a count with thousands separators (`1,234,567`).
pub fn fmt_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_small_values_stay_in_bytes() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(1023), "1023 B");
    }

    #[test]
    fn fmt_bytes_scales_units() {
        assert_eq!(fmt_bytes(1024), "1.00 KiB");
        assert_eq!(fmt_bytes(1536), "1.50 KiB");
        assert_eq!(fmt_bytes(1024 * 1024), "1.00 MiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 * 1024), "3.00 GiB");
    }

    #[test]
    fn fmt_count_inserts_separators() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }
}
