//! `cfp-mine` — frequent-itemset mining from the command line.
//!
//! A FIMI-repository-style interface over the whole workspace: point it at
//! a FIMI-format file, pick a support threshold (absolute count or
//! percentage), and choose an algorithm, an output mode, and optional
//! post-processing.
//!
//! ```text
//! cfp-mine <input.dat> --support <N | P%> [options]
//!
//!   --algorithm NAME   cfp (default), fp, apriori, eclat, lcm,
//!                      nonordfp, tiny, fparray
//!   --threads N        parallel CFP-growth with N workers
//!   --count            print only the number of frequent itemsets
//!   --top K            print the K highest-support itemsets
//!   --closed           print only closed itemsets
//!   --maximal          print only maximal itemsets
//!   --rules CONF       print association rules with confidence ≥ CONF
//!   --image PATH       also save a reusable mining image (CFP only)
//!   --stats            print phase times and peak memory to stderr
//!   --profile PATH     enable tracing and write a cfp-profile/1 JSON
//!                      run report (phase spans, counters, memory
//!                      time series) to PATH
//! ```
//!
//! Itemsets print in FIMI output format: space-separated items followed
//! by the absolute support in parentheses, e.g. `3 17 29 (1250)`.

use cfp_core::{
    CfpGrowthMiner, CollectSink, CountingSink, ItemsetSink, MineStats, Miner, MiningImage,
    ParallelCfpGrowthMiner, TopKSink, TransactionDb,
};
use cfp_rules::{closed_itemsets, maximal_itemsets, RuleMiner};
use std::io::Write;
use std::process::exit;

struct Options {
    input: String,
    support: SupportSpec,
    algorithm: String,
    threads: usize,
    count_only: bool,
    top: Option<usize>,
    closed: bool,
    maximal: bool,
    rules: Option<f64>,
    image: Option<String>,
    stats: bool,
    profile: Option<String>,
}

enum SupportSpec {
    Absolute(u64),
    Relative(f64),
}

fn usage() -> ! {
    eprintln!("usage: cfp-mine <input.dat> --support <N | P%> [options]");
    eprintln!("  --algorithm cfp|fp|apriori|eclat|lcm|nonordfp|tiny|fparray");
    eprintln!("  --threads N | --count | --top K | --closed | --maximal");
    eprintln!("  --rules CONF | --image PATH | --stats | --profile PATH");
    exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        input: String::new(),
        support: SupportSpec::Absolute(0),
        algorithm: "cfp".into(),
        threads: 1,
        count_only: false,
        top: None,
        closed: false,
        maximal: false,
        rules: None,
        image: None,
        stats: false,
        profile: None,
    };
    let mut support_given = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match arg.as_str() {
            "--support" => {
                let v = value(arg);
                opts.support = if let Some(pct) = v.strip_suffix('%') {
                    let p: f64 = pct.parse().unwrap_or_else(|_| {
                        eprintln!("bad percentage {v:?}");
                        usage()
                    });
                    SupportSpec::Relative(p / 100.0)
                } else {
                    SupportSpec::Absolute(v.parse().unwrap_or_else(|_| {
                        eprintln!("bad support {v:?}");
                        usage()
                    }))
                };
                support_given = true;
            }
            "--algorithm" => opts.algorithm = value(arg),
            "--threads" => {
                opts.threads = value(arg).parse().unwrap_or_else(|_| {
                    eprintln!("bad thread count");
                    usage()
                })
            }
            "--count" => opts.count_only = true,
            "--top" => {
                opts.top = Some(value(arg).parse().unwrap_or_else(|_| {
                    eprintln!("bad top-k");
                    usage()
                }))
            }
            "--closed" => opts.closed = true,
            "--maximal" => opts.maximal = true,
            "--rules" => {
                opts.rules = Some(value(arg).parse().unwrap_or_else(|_| {
                    eprintln!("bad confidence");
                    usage()
                }))
            }
            "--image" => opts.image = Some(value(arg)),
            "--stats" => opts.stats = true,
            "--profile" => opts.profile = Some(value(arg)),
            other if !other.starts_with('-') && opts.input.is_empty() => {
                opts.input = other.to_string();
            }
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    if opts.input.is_empty() || !support_given {
        usage();
    }
    opts
}

fn miner_by_name(name: &str, threads: usize) -> Box<dyn Miner> {
    match name {
        "cfp" if threads > 1 => Box::new(ParallelCfpGrowthMiner::new(threads)),
        "cfp" => Box::new(CfpGrowthMiner::new()),
        "fp" => Box::new(cfp_fptree::FpGrowthMiner::new()),
        "apriori" => Box::new(cfp_baselines::AprioriMiner::new()),
        "eclat" => Box::new(cfp_baselines::EclatMiner::new()),
        "lcm" => Box::new(cfp_baselines::LcmStyleMiner::new()),
        "nonordfp" => Box::new(cfp_baselines::NonordFpMiner::new()),
        "tiny" => Box::new(cfp_baselines::TinyStyleMiner::new()),
        "fparray" => Box::new(cfp_baselines::FpArrayStyleMiner::new()),
        other => {
            eprintln!("unknown algorithm {other:?}");
            usage();
        }
    }
}

/// Streams itemsets straight to a writer in FIMI output format.
struct PrintSink<W: Write> {
    out: W,
    count: u64,
}

impl<W: Write> ItemsetSink for PrintSink<W> {
    fn emit(&mut self, itemset: &[u32], support: u64) {
        self.count += 1;
        let mut line = String::with_capacity(itemset.len() * 7 + 12);
        for (i, item) in itemset.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&item.to_string());
        }
        line.push_str(&format!(" ({support})\n"));
        self.out.write_all(line.as_bytes()).expect("stdout write");
    }
}

fn print_itemsets(itemsets: &[(Vec<u32>, u64)]) {
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for (items, support) in itemsets {
        let mut line = String::new();
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&item.to_string());
        }
        line.push_str(&format!(" ({support})\n"));
        out.write_all(line.as_bytes()).expect("stdout write");
    }
    out.flush().expect("stdout flush");
}

fn report_stats(stats: &MineStats, n_itemsets: u64) {
    eprintln!(
        "itemsets {}  scan {:.3}s  build {:.3}s  convert {:.3}s  mine {:.3}s  peak {}",
        n_itemsets,
        stats.scan_time.as_secs_f64(),
        stats.build_time.as_secs_f64(),
        stats.convert_time.as_secs_f64(),
        stats.mine_time.as_secs_f64(),
        cfp_metrics::fmt_bytes(stats.peak_bytes),
    );
    if !stats.worker_peaks.is_empty() {
        let peaks: Vec<String> =
            stats.worker_peaks.iter().map(|&p| cfp_metrics::fmt_bytes(p)).collect();
        eprintln!("worker peaks  {}", peaks.join("  "));
    }
}

/// With tracing enabled (`--profile`), `--stats` additionally dumps the
/// counter registry so the headline numbers are inspectable without
/// opening the JSON report.
fn report_trace_stats() {
    use cfp_trace::counters as tc;
    let allocs = tc::MEMMAN_ALLOCS.get();
    let hits = tc::MEMMAN_QUEUE_HITS.get();
    let hit_pct = if allocs > 0 { 100.0 * hits as f64 / allocs as f64 } else { 0.0 };
    eprintln!(
        "arena  allocs {allocs}  frees {}  queue-hit {hit_pct:.1}%  grow {}  shrink {}  peak footprint {}",
        tc::MEMMAN_FREES.get(),
        tc::MEMMAN_GROWS.get(),
        tc::MEMMAN_SHRINKS.get(),
        cfp_metrics::fmt_bytes(tc::MEMMAN_PEAK_FOOTPRINT.get()),
    );
    eprintln!(
        "tree   standard {}  chain {}  embedded {}  splits {}  unembeds {}",
        tc::TREE_STANDARD_NODES.get(),
        tc::TREE_CHAIN_NODES.get(),
        tc::TREE_EMBEDDED_LEAVES.get(),
        tc::TREE_CHAIN_SPLITS.get(),
        tc::TREE_UNEMBEDS.get(),
    );
    eprintln!(
        "mine   conditional trees {}  single-path shortcuts {}  max depth {}  patterns {}",
        tc::CORE_CONDITIONAL_TREES.get(),
        tc::CORE_SINGLE_PATH_SHORTCUTS.get(),
        tc::CORE_MAX_DEPTH.get(),
        tc::CORE_PATTERNS.get(),
    );
}

fn main() {
    let opts = parse_args();
    let profiling = opts.profile.is_some();
    if profiling {
        cfp_trace::set_enabled(true);
    }
    let run_started = std::time::Instant::now();
    let sampler =
        profiling.then(|| cfp_trace::MemSampler::start(std::time::Duration::from_millis(10)));

    let db: TransactionDb = {
        let _s = cfp_trace::span(cfp_trace::Phase::Read);
        match cfp_data::fimi::read_file(&opts.input) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot read {}: {e}", opts.input);
                exit(1);
            }
        }
    };
    let min_support = match opts.support {
        SupportSpec::Absolute(n) => n.max(1),
        SupportSpec::Relative(f) => ((db.len() as f64 * f).ceil() as u64).max(1),
    };
    eprintln!(
        "{}: {} transactions, {} distinct items; minimum support {min_support}",
        opts.input,
        db.len(),
        db.distinct_items()
    );

    let miner = miner_by_name(&opts.algorithm, opts.threads);
    let needs_collection =
        opts.top.is_some() || opts.closed || opts.maximal || opts.rules.is_some();

    let stats = if opts.count_only {
        let mut sink = CountingSink::new();
        let stats = miner.mine(&db, min_support, &mut sink);
        println!("{}", sink.count);
        stats
    } else if let Some(k) = opts.top {
        let mut sink = TopKSink::new(k);
        let stats = miner.mine(&db, min_support, &mut sink);
        print_itemsets(&sink.into_sorted());
        stats
    } else if needs_collection {
        let mut sink = CollectSink::new();
        let stats = miner.mine(&db, min_support, &mut sink);
        let all = sink.into_sorted();
        if let Some(conf) = opts.rules {
            let rules = RuleMiner::new(&all, db.len() as u64).rules_by_confidence(conf);
            for r in &rules {
                println!(
                    "{:?} => {:?}  support {}  confidence {:.3}  lift {:.3}",
                    r.antecedent, r.consequent, r.support, r.confidence, r.lift
                );
            }
            eprintln!("{} rules", rules.len());
        } else if opts.closed {
            print_itemsets(&closed_itemsets(&all));
        } else if opts.maximal {
            print_itemsets(&maximal_itemsets(&all));
        }
        stats
    } else {
        let stdout = std::io::stdout();
        let mut sink = PrintSink { out: std::io::BufWriter::new(stdout.lock()), count: 0 };
        let stats = miner.mine(&db, min_support, &mut sink);
        sink.out.flush().expect("stdout flush");
        stats
    };
    let wall_nanos = run_started.elapsed().as_nanos() as u64;
    let samples = sampler.map(cfp_trace::MemSampler::stop).unwrap_or_default();

    if let Some(path) = &opts.image {
        if opts.algorithm != "cfp" {
            eprintln!("--image requires the cfp algorithm");
            exit(2);
        }
        let image = MiningImage::build(&db, min_support);
        if let Err(e) = image.save(path) {
            eprintln!("cannot save image {path}: {e}");
            exit(1);
        }
        eprintln!("image saved to {path}");
    }
    if opts.stats {
        report_stats(&stats, stats.itemsets);
        if profiling {
            report_trace_stats();
        }
    }
    if let Some(path) = &opts.profile {
        let report = cfp_trace::RunReport::capture(
            opts.input.clone(),
            db.len() as u64,
            min_support,
            opts.algorithm.clone(),
            opts.threads.max(1) as u64,
            stats.itemsets,
            wall_nanos,
            samples,
        );
        if let Err(e) = std::fs::write(path, report.to_json().to_pretty()) {
            eprintln!("cannot write profile {path}: {e}");
            exit(1);
        }
        eprintln!("profile written to {path}");
    }
}
