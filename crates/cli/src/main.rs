//! `cfp-mine` — frequent-itemset mining from the command line.
//!
//! A FIMI-repository-style interface over the whole workspace: point it at
//! a FIMI-format file, pick a support threshold (absolute count or
//! percentage), and choose an algorithm, an output mode, and optional
//! post-processing.
//!
//! ```text
//! cfp-mine <input.dat> --support <N | P%> [options]
//!
//!   --algorithm NAME   cfp (default), fp, apriori, eclat, lcm,
//!                      nonordfp, tiny, fparray
//!   --threads N        parallel CFP-growth with N workers
//!   --schedule S       parallel mine-phase scheduling: dynamic
//!                      (default; work-stealing claims from a shared
//!                      cost-sorted queue, deterministic output) or
//!                      static (fixed round-robin deal)
//!   --mem-budget B     cap the build-phase arena at B bytes (k/m/g
//!                      suffixes allowed; cfp algorithms only)
//!   --skip-bad-lines   drop malformed input lines instead of failing
//!   --output MODE      what the cfp engine mines: all (default; every
//!                      frequent itemset), closed, maximal, or topk:N
//!                      (the N highest-support itemsets). Condensed
//!                      modes run inside the CFP-growth recursion —
//!                      closure/maximality/top-k-bound pruning, not a
//!                      post-hoc filter — and stream in the same
//!                      deterministic order as all-mode (topk prints
//!                      support-descending at the end). cfp only
//!   --count            print only the number of frequent itemsets
//!   --top K            print the K highest-support itemsets
//!                      (cfp: alias for --output=topk:K)
//!   --closed           print only closed itemsets
//!                      (cfp: alias for --output=closed)
//!   --maximal          print only maximal itemsets
//!                      (cfp: alias for --output=maximal)
//!   --rules CONF       print association rules with confidence ≥ CONF
//!   --image PATH       also save a reusable mining image (CFP only)
//!   --stats            print phase times and peak memory to stderr
//!   --profile PATH     enable tracing and write a cfp-profile/2 JSON
//!                      run report (phase spans, counters, memory
//!                      time series, event summary) to PATH
//!   --trace-out PATH   capture the event timeline and write Chrome
//!                      trace-event JSON (open in Perfetto or
//!                      chrome://tracing; one track per worker plus
//!                      memory counter tracks)
//!   --flame-out PATH   write folded flamegraph stacks of the
//!                      conditional-tree descent (flamegraph.pl /
//!                      speedscope input)
//!   --progress         live status heartbeat on stderr (phase, items
//!                      mined, steals, budget-pool peak)
//!   --mem-report PATH  write a cfp-memstat/1 JSON memory report
//!                      (per-component attribution, reconciliation
//!                      audit, per-structure analytics, compression
//!                      table vs FP-tree baselines; cfp only). The
//!                      mining run charges an attribution pool and a
//!                      post-run analytics pass measures the structures;
//!                      mining output is byte-identical with the flag on
//!   --recover POLICY   escalation ladder on failure: off (default),
//!                      retry (compact-and-retry), degrade (… then
//!                      sequential), partition (… then item-range
//!                      partitioned fallback mining), spill (… then
//!                      out-of-core: partition arrays go through
//!                      crash-safe disk files; cfp only)
//!   --spill-dir PATH   parent directory for the spill rung's scratch
//!                      files (default: the system temp directory; a
//!                      per-run subdirectory is created and removed on
//!                      every exit path; requires --recover=spill)
//!   --worker-timeout S watchdog: fail a parallel run when no worker
//!                      makes progress for S seconds
//!   --checkpoint-dir P crash-safe checkpointing: periodically commit a
//!                      cfp-ckpt/1 manifest into P recording an exact
//!                      output watermark. The directory is guarded by a
//!                      PID lockfile. Requires the cfp algorithm,
//!                      streaming output (--output all, closed, or
//!                      maximal; no --count, --top/topk, or --rules),
//!                      the dynamic schedule, and --recover off or
//!                      spill (condensed modes: --recover off only)
//!   --checkpoint-every N  commit the manifest every N completed
//!                      top-level items (default 32; spill partitions
//!                      always commit per partition)
//!   --resume           continue from the manifest in --checkpoint-dir:
//!                      completed units are skipped, so appending this
//!                      run's stdout to the previous (truncated) output
//!                      reproduces an uninterrupted run byte for byte
//!   --deadline S       cooperative wall-clock budget: stop gracefully
//!                      at the next resumable boundary after S seconds
//!                      and exit 8 (cfp only)
//! ```
//!
//! Flags also accept the `--flag=value` spelling. Itemsets print in FIMI
//! output format: space-separated items followed by the absolute support
//! in parentheses, e.g. `3 17 29 (1250)`.
//!
//! # Exit codes
//!
//! The process maps every failure to a stable code (see
//! `CfpError::exit_code`): 0 success (including a closed output pipe),
//! 1 I/O error, 2 usage error, 3 malformed input, 4 memory budget
//! exhausted, 5 worker panic, 6 worker timeout, 7 spill failure (a
//! spill-file write, read, or checksum validation failed permanently
//! during `--recover=spill`), 8 interrupted (SIGINT/SIGTERM or
//! `--deadline` stopped the run at a resumable boundary; buffered
//! output was flushed and, under `--checkpoint-dir`, a manifest was
//! committed), 9 invalid checkpoint (torn, corrupted, or
//! config-mismatched manifest on `--resume`, or a checkpoint commit
//! failed), 10 state directory locked by another live process.
//! `--recover=off` leaves all of these exactly as they were; other
//! policies only change the outcome when a recovery rung actually
//! completes the run.

use cfp_core::{
    CfpGrowthMiner, CollectSink, CountingSink, ItemsetSink, MineStats, Miner, MiningImage,
    OutputMode, ParallelCfpGrowthMiner, RecoveryPolicy, RecoveryReport, Schedule, Supervisor,
    TopKSink, TransactionDb,
};
use cfp_data::{CfpError, ParsePolicy};
use cfp_fault::EXIT_USAGE;
use cfp_rules::{closed_itemsets, maximal_itemsets, RuleMiner};
use std::io::{self, Write};
use std::process::exit;
use std::time::Duration;

#[derive(Debug)]
struct Options {
    input: String,
    support: SupportSpec,
    algorithm: String,
    threads: usize,
    schedule: Schedule,
    mem_budget: Option<u64>,
    skip_bad_lines: bool,
    output: OutputMode,
    count_only: bool,
    top: Option<usize>,
    closed: bool,
    maximal: bool,
    rules: Option<f64>,
    image: Option<String>,
    stats: bool,
    profile: Option<String>,
    trace_out: Option<String>,
    flame_out: Option<String>,
    progress: bool,
    mem_report: Option<String>,
    metrics_out: Option<String>,
    metrics_every: Duration,
    blackbox: Option<String>,
    recover: RecoveryPolicy,
    spill_dir: Option<String>,
    worker_timeout: Option<Duration>,
    checkpoint_dir: Option<String>,
    checkpoint_every: u64,
    resume: bool,
    deadline: Option<Duration>,
}

#[derive(Debug)]
enum SupportSpec {
    Absolute(u64),
    Relative(f64),
}

fn print_usage() {
    eprintln!("usage: cfp-mine <input.dat> --support <N | P%> [options]");
    eprintln!("  --algorithm cfp|fp|apriori|eclat|lcm|nonordfp|tiny|fparray");
    eprintln!("  --threads N | --schedule static|dynamic | --mem-budget BYTES[k|m|g]");
    eprintln!("  --skip-bad-lines");
    eprintln!("  --output all|closed|maximal|topk:N");
    eprintln!("  --count | --top K | --closed | --maximal");
    eprintln!("  --rules CONF | --image PATH | --stats | --profile PATH");
    eprintln!("  --trace-out PATH | --flame-out PATH | --progress | --mem-report PATH");
    eprintln!("  --metrics-out PATH [--metrics-every DUR] | --blackbox DIR");
    eprintln!("  --recover off|retry|degrade|partition|spill | --spill-dir PATH");
    eprintln!("  --worker-timeout SECONDS");
    eprintln!("  --checkpoint-dir PATH | --checkpoint-every N | --resume | --deadline SECONDS");
}

/// Parses a duration with an optional `ms`/`s`/`m` suffix (bare numbers
/// are seconds), e.g. `250ms`, `1.5s`, `2m`.
fn parse_duration(s: &str) -> Result<Duration, String> {
    let (digits, scale) = if let Some(d) = s.strip_suffix("ms") {
        (d, 1e-3)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1.0)
    } else if let Some(d) = s.strip_suffix('m') {
        (d, 60.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = digits.parse().map_err(|_| format!("bad duration {s:?}"))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!("duration {s:?} must be positive"));
    }
    Ok(Duration::from_secs_f64(v * scale))
}

/// Parses a byte count with an optional `k`/`m`/`g` suffix (powers of
/// 1024, case-insensitive), e.g. `64m` = 67108864.
fn parse_bytes(s: &str) -> Result<u64, String> {
    let (digits, shift) = match s.to_ascii_lowercase().as_str() {
        t if t.ends_with('k') => (&s[..s.len() - 1], 10),
        t if t.ends_with('m') => (&s[..s.len() - 1], 20),
        t if t.ends_with('g') => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: u64 = digits.parse().map_err(|_| format!("bad byte count {s:?}"))?;
    n.checked_shl(shift)
        .filter(|&v| v >> shift == n)
        .ok_or_else(|| format!("byte count {s:?} overflows"))
}

/// Parses the argument list (without the program name). Returns a
/// description of the first problem instead of exiting, so main owns the
/// process exit and tests can exercise every path in-process.
fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        support: SupportSpec::Absolute(0),
        algorithm: "cfp".into(),
        threads: 1,
        schedule: Schedule::default(),
        mem_budget: None,
        skip_bad_lines: false,
        output: OutputMode::All,
        count_only: false,
        top: None,
        closed: false,
        maximal: false,
        rules: None,
        image: None,
        stats: false,
        profile: None,
        trace_out: None,
        flame_out: None,
        progress: false,
        mem_report: None,
        metrics_out: None,
        metrics_every: Duration::from_secs(1),
        blackbox: None,
        recover: RecoveryPolicy::Off,
        spill_dir: None,
        worker_timeout: None,
        checkpoint_dir: None,
        checkpoint_every: 32,
        resume: false,
        deadline: None,
    };
    let mut checkpoint_every_given = false;
    let mut metrics_every_given = false;
    let mut output_given = false;
    // Accept `--flag=value` as well as `--flag value`.
    let args: Vec<String> = args
        .iter()
        .flat_map(|a| match a.strip_prefix("--").and_then(|r| r.split_once('=')) {
            Some((flag, val)) => vec![format!("--{flag}"), val.to_string()],
            None => vec![a.clone()],
        })
        .collect();
    let mut support_given = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--support" => {
                let v = value(arg)?;
                opts.support = if let Some(pct) = v.strip_suffix('%') {
                    let p: f64 = pct.parse().map_err(|_| format!("bad percentage {v:?}"))?;
                    SupportSpec::Relative(p / 100.0)
                } else {
                    SupportSpec::Absolute(v.parse().map_err(|_| format!("bad support {v:?}"))?)
                };
                support_given = true;
            }
            "--algorithm" => opts.algorithm = value(arg)?,
            "--threads" => {
                opts.threads = value(arg)?.parse().map_err(|_| "bad thread count".to_string())?;
            }
            "--schedule" => opts.schedule = value(arg)?.parse()?,
            "--mem-budget" => opts.mem_budget = Some(parse_bytes(&value(arg)?)?),
            "--skip-bad-lines" => opts.skip_bad_lines = true,
            "--output" => {
                opts.output = value(arg)?.parse()?;
                output_given = true;
            }
            "--count" => opts.count_only = true,
            "--top" => {
                opts.top = Some(value(arg)?.parse().map_err(|_| "bad top-k".to_string())?);
            }
            "--closed" => opts.closed = true,
            "--maximal" => opts.maximal = true,
            "--rules" => {
                opts.rules = Some(value(arg)?.parse().map_err(|_| "bad confidence".to_string())?);
            }
            "--image" => opts.image = Some(value(arg)?),
            "--stats" => opts.stats = true,
            "--profile" => opts.profile = Some(value(arg)?),
            "--trace-out" => opts.trace_out = Some(value(arg)?),
            "--flame-out" => opts.flame_out = Some(value(arg)?),
            "--progress" => opts.progress = true,
            "--mem-report" => opts.mem_report = Some(value(arg)?),
            "--metrics-out" => opts.metrics_out = Some(value(arg)?),
            "--metrics-every" => {
                opts.metrics_every = parse_duration(&value(arg)?)?;
                metrics_every_given = true;
            }
            "--blackbox" => opts.blackbox = Some(value(arg)?),
            "--recover" => opts.recover = value(arg)?.parse()?,
            "--spill-dir" => opts.spill_dir = Some(value(arg)?),
            "--worker-timeout" => {
                let secs: f64 =
                    value(arg)?.parse().map_err(|_| "bad worker timeout".to_string())?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("worker timeout must be a positive number of seconds".to_string());
                }
                opts.worker_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--checkpoint-dir" => opts.checkpoint_dir = Some(value(arg)?),
            "--checkpoint-every" => {
                opts.checkpoint_every =
                    value(arg)?.parse().map_err(|_| "bad checkpoint interval".to_string())?;
                if opts.checkpoint_every == 0 {
                    return Err("--checkpoint-every must be at least 1".to_string());
                }
                checkpoint_every_given = true;
            }
            "--resume" => opts.resume = true,
            "--deadline" => {
                let secs: f64 = value(arg)?.parse().map_err(|_| "bad deadline".to_string())?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("deadline must be a positive number of seconds".to_string());
                }
                opts.deadline = Some(Duration::from_secs_f64(secs));
            }
            other if !other.starts_with('-') && opts.input.is_empty() => {
                opts.input = other.to_string();
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.input.is_empty() {
        return Err("no input file given".to_string());
    }
    if !support_given {
        return Err("no --support given".to_string());
    }
    // A budget below the arena's initial carve (the root slot, one
    // minimum-size chunk) can never admit even an empty tree: reject it
    // up front as a usage error instead of failing every attempt.
    if let Some(b) = opts.mem_budget {
        if b < cfp_memman::MIN_CHUNK as u64 {
            return Err(format!(
                "--mem-budget {b} is below the arena's minimum carve of {} bytes",
                cfp_memman::MIN_CHUNK
            ));
        }
    }
    if output_given {
        if opts.output != OutputMode::All && opts.algorithm != "cfp" {
            return Err(format!(
                "--output={} only applies to the cfp algorithm, not {:?} (use the post-hoc \
                 --top/--closed/--maximal flags for baselines)",
                opts.output, opts.algorithm
            ));
        }
        if opts.top.is_some() || opts.closed || opts.maximal {
            return Err(
                "--output cannot be combined with --top, --closed, or --maximal".to_string()
            );
        }
        if opts.rules.is_some() && opts.output != OutputMode::All {
            return Err(format!(
                "--rules needs the full frequent set; it cannot be combined with --output={}",
                opts.output
            ));
        }
    } else if opts.algorithm == "cfp" && opts.rules.is_none() && !opts.count_only {
        // The legacy condensed flags become first-class engine modes on
        // the cfp pipeline (pruning inside the recursion instead of a
        // post-hoc filter over the full set); the baselines keep the
        // post-hoc path. Precedence mirrors the historical dispatch
        // order: --top beats --closed beats --maximal.
        if let Some(k) = opts.top.take() {
            opts.output = OutputMode::TopK(k);
        } else if opts.closed {
            opts.output = OutputMode::Closed;
            opts.closed = false;
        } else if opts.maximal {
            opts.output = OutputMode::Maximal;
            opts.maximal = false;
        }
    }
    if opts.spill_dir.is_some() && opts.recover != RecoveryPolicy::Spill {
        return Err("--spill-dir requires --recover=spill".to_string());
    }
    if metrics_every_given && opts.metrics_out.is_none() {
        return Err("--metrics-every requires --metrics-out".to_string());
    }
    if opts.mem_report.is_some() && opts.algorithm != "cfp" {
        return Err(format!(
            "--mem-report only applies to the cfp algorithm, not {:?}",
            opts.algorithm
        ));
    }
    // Checkpointing promises an exact output watermark, which only the
    // deterministic plain-streaming CFP pipeline provides.
    if opts.checkpoint_dir.is_some() {
        if opts.algorithm != "cfp" {
            return Err(format!(
                "--checkpoint-dir only applies to the cfp algorithm, not {:?}",
                opts.algorithm
            ));
        }
        if opts.count_only
            || opts.top.is_some()
            || opts.closed
            || opts.maximal
            || opts.rules.is_some()
            || matches!(opts.output, OutputMode::TopK(_))
        {
            return Err("--checkpoint-dir requires streaming output (no --count, --top, \
                 --output=topk, or --rules; baseline --closed/--maximal collect in memory)"
                .to_string());
        }
        if opts.schedule != Schedule::Dynamic {
            return Err("--checkpoint-dir requires --schedule dynamic (static output order is \
                 nondeterministic, so no byte watermark exists)"
                .to_string());
        }
        if !matches!(opts.recover, RecoveryPolicy::Off | RecoveryPolicy::Spill) {
            return Err("--checkpoint-dir requires --recover off or spill (the other rungs \
                 re-emit output without a resumable watermark)"
                .to_string());
        }
        if opts.output.is_condensed() && opts.recover != RecoveryPolicy::Off {
            return Err(format!(
                "--checkpoint-dir with --output={} requires --recover=off (spill partitions \
                 cannot rebuild the cross-partition reconcile state at a mid-run watermark)",
                opts.output
            ));
        }
        if opts.mem_report.is_some() {
            return Err("--checkpoint-dir cannot be combined with --mem-report".to_string());
        }
    } else {
        if opts.resume {
            return Err("--resume requires --checkpoint-dir".to_string());
        }
        if checkpoint_every_given {
            return Err("--checkpoint-every requires --checkpoint-dir".to_string());
        }
    }
    if opts.deadline.is_some() && opts.algorithm != "cfp" {
        return Err(format!(
            "--deadline only applies to the cfp algorithm, not {:?}",
            opts.algorithm
        ));
    }
    Ok(opts)
}

/// How the run executes: a plain miner, a sequential CFP miner with
/// non-default [`cfp_core::MineOpts`] (an attribution pool from
/// `--mem-report`, a cancel token from `--deadline`), or the recovery
/// supervisor wrapping one (`--recover` other than `off`, cfp only).
enum Runner {
    Plain(Box<dyn Miner>),
    Seq(CfpGrowthMiner, cfp_core::MineOpts),
    Supervised(Supervisor),
}

impl Runner {
    /// Runs the mining phase; a supervised run also yields its
    /// [`RecoveryReport`] for the profile's degradation section.
    fn mine(
        &self,
        db: &TransactionDb,
        min_support: u64,
        sink: &mut dyn ItemsetSink,
        degradation: &mut Option<RecoveryReport>,
    ) -> Result<MineStats, CfpError> {
        match self {
            Runner::Plain(m) => m.try_mine(db, min_support, sink),
            Runner::Seq(m, mine_opts) => m.try_mine_with(db, min_support, sink, mine_opts),
            Runner::Supervised(s) => {
                let (r, report) = s.mine(db, min_support, sink);
                stash_blackbox_degradation(&report);
                *degradation = Some(report);
                r
            }
        }
    }
}

/// Builds the attribution pool a `--mem-report` run charges. Admission
/// must be byte-identical to a run without the flag: sequential runs get
/// an unlimited pool (their `--mem-budget` stays a per-arena cap), while
/// parallel runs get exactly the pool `ParallelCfpGrowthMiner` would
/// have created from `--mem-budget` itself.
fn attribution_pool(opts: &Options) -> cfp_memman::BudgetPool {
    use cfp_memman::BudgetPool;
    match opts.mem_budget {
        Some(b) if opts.algorithm == "cfp" && opts.threads > 1 => BudgetPool::new(b),
        _ => BudgetPool::unlimited(),
    }
}

fn runner_by_name(
    opts: &Options,
    pool: Option<&cfp_memman::BudgetPool>,
    cancel: Option<&cfp_fault::CancelToken>,
) -> Result<Runner, String> {
    let budget_ignored = |name: &str| {
        if opts.mem_budget.is_some() {
            eprintln!(
                "warning: --mem-budget only applies to the cfp algorithms; ignored for {name}"
            );
        }
    };
    if opts.recover != RecoveryPolicy::Off {
        if opts.algorithm != "cfp" {
            return Err(format!(
                "--recover only applies to the cfp algorithm, not {:?}",
                opts.algorithm
            ));
        }
        return Ok(Runner::Supervised(Supervisor {
            threads: opts.threads,
            schedule: opts.schedule,
            single_path_opt: true,
            mem_budget: opts.mem_budget,
            policy: opts.recover,
            worker_timeout: opts.worker_timeout,
            spill_dir: opts.spill_dir.as_ref().map(std::path::PathBuf::from),
            cancel: cancel.cloned(),
            output: opts.output,
        }));
    }
    Ok(Runner::Plain(match opts.algorithm.as_str() {
        "cfp" if opts.threads > 1 => Box::new(ParallelCfpGrowthMiner {
            schedule: opts.schedule,
            mem_budget: opts.mem_budget,
            pool: pool.cloned(),
            worker_timeout: opts.worker_timeout,
            cancel: cancel.cloned(),
            output: opts.output,
            ..ParallelCfpGrowthMiner::new(opts.threads)
        }),
        "cfp" => {
            let miner = CfpGrowthMiner { single_path_opt: true, mem_budget: opts.mem_budget };
            if pool.is_some() || cancel.is_some() || opts.output != OutputMode::All {
                return Ok(Runner::Seq(
                    miner,
                    cfp_core::MineOpts {
                        pool: pool.cloned(),
                        cancel: cancel.cloned(),
                        output: opts.output,
                        ..Default::default()
                    },
                ));
            }
            Box::new(miner)
        }
        "fp" => {
            budget_ignored("fp");
            Box::new(cfp_fptree::FpGrowthMiner::new())
        }
        "apriori" => {
            budget_ignored("apriori");
            Box::new(cfp_baselines::AprioriMiner::new())
        }
        "eclat" => {
            budget_ignored("eclat");
            Box::new(cfp_baselines::EclatMiner::new())
        }
        "lcm" => {
            budget_ignored("lcm");
            Box::new(cfp_baselines::LcmStyleMiner::new())
        }
        "nonordfp" => {
            budget_ignored("nonordfp");
            Box::new(cfp_baselines::NonordFpMiner::new())
        }
        "tiny" => {
            budget_ignored("tiny");
            Box::new(cfp_baselines::TinyStyleMiner::new())
        }
        "fparray" => {
            budget_ignored("fparray");
            Box::new(cfp_baselines::FpArrayStyleMiner::new())
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    }))
}

/// Exits with the documented code for a failed output write. A broken
/// pipe is the downstream consumer (`head`, `grep -q`, a closed pager)
/// losing interest — that is success, reported quietly, matching the
/// behaviour of well-mannered Unix filters.
fn exit_for_write_error(e: &io::Error) -> ! {
    if e.kind() == io::ErrorKind::BrokenPipe {
        exit(0);
    }
    eprintln!("cfp-mine: cannot write output: {e}");
    exit(1);
}

/// One itemset in FIMI output format: space-separated items followed by
/// the support in parentheses, newline-terminated.
fn fimi_line(itemset: &[u32], support: u64) -> String {
    let mut line = String::with_capacity(itemset.len() * 7 + 12);
    for (i, item) in itemset.iter().enumerate() {
        if i > 0 {
            line.push(' ');
        }
        line.push_str(&item.to_string());
    }
    line.push_str(&format!(" ({support})\n"));
    line
}

/// Streams itemsets straight to a writer in FIMI output format.
///
/// Write failures are recorded, not panicked on; after the first failure
/// further output is discarded (mining continues so stats stay
/// meaningful) and main exits through [`exit_for_write_error`].
struct PrintSink<W: Write> {
    out: W,
    count: u64,
    err: Option<io::Error>,
}

impl<W: Write> ItemsetSink for PrintSink<W> {
    fn emit(&mut self, itemset: &[u32], support: u64) {
        self.count += 1;
        if self.err.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(fimi_line(itemset, support).as_bytes()) {
            self.err = Some(e);
        }
    }
}

fn print_itemsets(itemsets: &[(Vec<u32>, u64)]) -> io::Result<()> {
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for (items, support) in itemsets {
        out.write_all(fimi_line(items, *support).as_bytes())?;
    }
    out.flush()
}

/// Counts the bytes that actually reached the inner writer — under a
/// `BufWriter` this advances on flush, so at commit time `written` is
/// exactly the output watermark a manifest may record as durable.
struct CountingWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Best-effort durability for stdout before a manifest commit: when
/// stdout is a regular file (`cfp-mine … > out.dat`), fsync it so the
/// manifest never records a watermark ahead of what survives a crash.
/// Pipes and ttys reject the sync; that is fine — they have no
/// post-crash contents to resume against.
fn sync_stdout() {
    #[cfg(unix)]
    {
        use std::os::unix::io::FromRawFd;
        // ManuallyDrop: fd 1 must stay open after the sync.
        let f = std::mem::ManuallyDrop::new(unsafe { std::fs::File::from_raw_fd(1) });
        let _ = f.sync_all();
    }
}

/// The checkpointing output sink (`--checkpoint-dir`): streams FIMI
/// lines like [`PrintSink`] and, at the resumable boundaries the miner
/// announces through [`ItemsetSink::progress`], commits a `cfp-ckpt/1`
/// manifest. The commit protocol orders durability correctly: flush the
/// line buffer, fsync stdout, then atomically write the manifest — so a
/// committed manifest never names bytes that were not durably written
/// first.
struct CheckpointSink<'a> {
    out: io::BufWriter<CountingWriter<io::StdoutLock<'a>>>,
    err: Option<io::Error>,
    dir: std::path::PathBuf,
    /// Commit cadence in completed top-level items; spill partitions
    /// always commit.
    every: u64,
    /// Config fingerprint stamped into every manifest.
    input: String,
    min_support: u64,
    counts: String,
    num_items: u64,
    output: String,
    /// Output bytes and itemsets carried over from the segment(s) this
    /// run resumed; manifests record cumulative totals so a crashed
    /// appended-to output file can be truncated to `output_bytes`.
    base_bytes: u64,
    base_itemsets: u64,
    /// Itemsets emitted by this segment.
    emitted: u64,
    /// The most recent watermark the miner announced, committed or not.
    latest: Option<(cfp_core::CkptProgress, u64)>,
    /// Resume units covered by the last committed manifest.
    last_committed: u64,
}

impl CheckpointSink<'_> {
    /// Flushes output and commits the latest watermark. An error from
    /// the manifest write (e.g. the `core.ckpt.write` failpoint) is
    /// structured and aborts the run through [`ItemsetSink::progress`].
    fn commit(&mut self) -> Result<(), CfpError> {
        let Some((progress, itemsets)) = self.latest.clone() else {
            return Ok(());
        };
        if self.err.is_some() {
            // Output is no longer reaching the stream; a manifest
            // claiming otherwise would corrupt a later resume.
            return Ok(());
        }
        if let Err(e) = self.out.flush() {
            self.err = Some(e);
            return Ok(());
        }
        sync_stdout();
        let manifest = cfp_core::Manifest {
            input: self.input.clone(),
            min_support: self.min_support,
            counts: self.counts.clone(),
            num_items: self.num_items,
            output: self.output.clone(),
            progress,
            output_bytes: self.base_bytes + self.out.get_ref().written,
            itemsets: self.base_itemsets + itemsets,
        };
        cfp_core::ckpt::save(&self.dir, &manifest)?;
        self.last_committed = manifest.progress.done();
        Ok(())
    }
}

impl ItemsetSink for CheckpointSink<'_> {
    fn emit(&mut self, itemset: &[u32], support: u64) {
        self.emitted += 1;
        if self.err.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(fimi_line(itemset, support).as_bytes()) {
            self.err = Some(e);
        }
    }

    fn progress(&mut self, progress: cfp_data::MineProgress<'_>) -> Result<(), CfpError> {
        let (snapshot, force) = match progress {
            cfp_data::MineProgress::Items { done } => {
                (cfp_core::CkptProgress::Mono { items_done: done }, false)
            }
            cfp_data::MineProgress::SpillParts { done, remaining } => (
                cfp_core::CkptProgress::Spill { parts_done: done, remaining: remaining.to_vec() },
                true,
            ),
        };
        let done = snapshot.done();
        self.latest = Some((snapshot, self.emitted));
        if force || done >= self.last_committed + self.every {
            self.commit()?;
        }
        Ok(())
    }
}

fn report_stats(stats: &MineStats, n_itemsets: u64) {
    eprintln!(
        "itemsets {}  scan {:.3}s  build {:.3}s  convert {:.3}s  mine {:.3}s  peak {}",
        n_itemsets,
        stats.scan_time.as_secs_f64(),
        stats.build_time.as_secs_f64(),
        stats.convert_time.as_secs_f64(),
        stats.mine_time.as_secs_f64(),
        cfp_metrics::fmt_bytes(stats.peak_bytes),
    );
    if !stats.worker_peaks.is_empty() {
        let peaks: Vec<String> =
            stats.worker_peaks.iter().map(|&p| cfp_metrics::fmt_bytes(p)).collect();
        eprintln!("worker peaks  {}", peaks.join("  "));
    }
}

/// With tracing enabled (`--profile`), `--stats` additionally dumps the
/// counter registry so the headline numbers are inspectable without
/// opening the JSON report.
fn report_trace_stats() {
    use cfp_trace::counters as tc;
    let allocs = tc::MEMMAN_ALLOCS.get();
    let hits = tc::MEMMAN_QUEUE_HITS.get();
    let hit_pct = if allocs > 0 { 100.0 * hits as f64 / allocs as f64 } else { 0.0 };
    eprintln!(
        "arena  allocs {allocs}  frees {}  queue-hit {hit_pct:.1}%  grow {}  shrink {}  peak footprint {}",
        tc::MEMMAN_FREES.get(),
        tc::MEMMAN_GROWS.get(),
        tc::MEMMAN_SHRINKS.get(),
        cfp_metrics::fmt_bytes(tc::MEMMAN_PEAK_FOOTPRINT.get()),
    );
    eprintln!(
        "tree   standard {}  chain {}  embedded {}  splits {}  unembeds {}",
        tc::TREE_STANDARD_NODES.get(),
        tc::TREE_CHAIN_NODES.get(),
        tc::TREE_EMBEDDED_LEAVES.get(),
        tc::TREE_CHAIN_SPLITS.get(),
        tc::TREE_UNEMBEDS.get(),
    );
    eprintln!(
        "mine   conditional trees {}  single-path shortcuts {}  max depth {}  patterns {}",
        tc::CORE_CONDITIONAL_TREES.get(),
        tc::CORE_SINGLE_PATH_SHORTCUTS.get(),
        tc::CORE_MAX_DEPTH.get(),
        tc::CORE_PATTERNS.get(),
    );
}

/// `--blackbox` arming state: the report directory plus the run-identity
/// context, set once before mining starts so any dying path can dump.
struct BlackboxArm {
    dir: std::path::PathBuf,
    context: Vec<(String, String)>,
}

static BLACKBOX_ARM: std::sync::OnceLock<BlackboxArm> = std::sync::OnceLock::new();
/// Degradation state stashed for the flight recorder: the recovery
/// report lives in locals the exit paths cannot reach, so supervised
/// runs deposit a copy here as soon as the supervisor returns.
static BLACKBOX_DEGRADATION: std::sync::Mutex<Option<cfp_trace::DegradationReport>> =
    std::sync::Mutex::new(None);

/// Converts the supervisor's recovery report into the trace-layer shape
/// shared by `--profile` and the blackbox.
fn to_trace_degradation(d: &RecoveryReport) -> cfp_trace::DegradationReport {
    cfp_trace::DegradationReport {
        policy: d.policy.clone(),
        rungs: d
            .rungs
            .iter()
            .map(|r| cfp_trace::RungOutcome {
                rung: r.rung.to_string(),
                succeeded: r.succeeded,
                reclaimed_bytes: r.reclaimed_bytes,
                partitions: r.partitions,
                error: r.error.clone(),
            })
            .collect(),
        recovered: d.recovered,
        final_partitions: d.final_partitions,
    }
}

/// Makes a supervised run's ladder activity visible to a later blackbox
/// dump. No-op unless `--blackbox` is armed.
fn stash_blackbox_degradation(report: &RecoveryReport) {
    if BLACKBOX_ARM.get().is_some() && !report.rungs.is_empty() {
        *BLACKBOX_DEGRADATION.lock().unwrap() = Some(to_trace_degradation(report));
    }
}

/// Exit code reported in a blackbox dump for a main-thread panic (the
/// process code the Rust runtime uses for unwound panics).
const PANIC_EXIT_CODE: i32 = 101;

/// Dumps a `cfp-blackbox/1` post-mortem if `--blackbox` is armed and the
/// exit code is one the flight recorder covers: the structured pipeline
/// failures (3–10) and panics. Usage (2) and plain I/O (1) exits carry
/// no mining state worth a report.
fn dump_blackbox(error: &str, code: i32) {
    let Some(arm) = BLACKBOX_ARM.get() else { return };
    if !(3..=10).contains(&code) && code != PANIC_EXIT_CODE {
        return;
    }
    let degradation = BLACKBOX_DEGRADATION.lock().unwrap().take();
    let report = cfp_trace::BlackboxReport::capture(
        error,
        code as i64,
        arm.context.clone(),
        None,
        degradation,
    );
    match report.write(&arm.dir) {
        Ok(path) => eprintln!("cfp-mine: blackbox report written to {}", path.display()),
        Err(e) => eprintln!("cfp-mine: cannot write blackbox report: {e}"),
    }
}

/// Reports a pipeline failure and exits with its documented code. The
/// diagnostic names the failing phase (the `Display` of
/// `CfpError::MemoryExhausted` includes it). When `--blackbox` is armed
/// this is also the flight recorder's dump point: every structured
/// mining failure funnels through here.
fn exit_for_mine_error(e: CfpError) -> ! {
    eprintln!("cfp-mine: {e}");
    dump_blackbox(&e.to_string(), e.exit_code());
    exit(e.exit_code());
}

/// Runs a `--checkpoint-dir` mining run end to end: resolve the resume
/// watermark from the manifest (if `--resume`), mine through a
/// [`CheckpointSink`], and handle the three outcomes — completed
/// (manifest cleared), interrupted at a watermark (final manifest
/// committed, exit 8), or failed (structured exit). Exits the process on
/// every error path; returns the run's stats on success.
fn run_checkpointed(
    opts: &Options,
    db: &TransactionDb,
    min_support: u64,
    cancel: Option<&cfp_fault::CancelToken>,
    degradation: &mut Option<RecoveryReport>,
) -> MineStats {
    use cfp_core::{ckpt, CkptProgress};
    let dir = std::path::Path::new(opts.checkpoint_dir.as_deref().expect("checkpoint dir set"));
    let recoder = cfp_core::ItemRecoder::scan(db, min_support);
    let counts = ckpt::counts_fingerprint(&recoder);
    let num_items = recoder.num_items() as u64;
    let spill_mode = opts.recover == RecoveryPolicy::Spill;

    let mut resume_skip = 0u64;
    let mut spill_resume: Option<(u64, Vec<(u32, u32)>)> = None;
    let mut base_bytes = 0u64;
    let mut base_itemsets = 0u64;
    if opts.resume {
        match ckpt::load(dir) {
            // No manifest is a fresh start, not an error: the previous
            // run may have died before its first commit, or completed
            // and cleared it.
            Ok(None) => eprintln!("no checkpoint manifest in {}; starting fresh", dir.display()),
            Ok(Some(m)) => {
                if let Err(e) = m.ensure_matches(
                    dir,
                    &opts.input,
                    min_support,
                    &counts,
                    &opts.output.to_string(),
                ) {
                    exit_for_mine_error(e);
                }
                let manifest_path = ckpt::manifest_path(dir).display().to_string();
                match (&m.progress, spill_mode) {
                    (CkptProgress::Mono { items_done }, false) => {
                        if *items_done > num_items {
                            exit_for_mine_error(CfpError::Checkpoint {
                                path: manifest_path,
                                message: format!(
                                    "watermark of {items_done} item(s) exceeds the \
                                     {num_items}-item universe"
                                ),
                            });
                        }
                        resume_skip = *items_done;
                    }
                    (CkptProgress::Spill { parts_done, remaining }, true) => {
                        spill_resume = Some((*parts_done, remaining.clone()));
                    }
                    (p, _) => exit_for_mine_error(CfpError::Checkpoint {
                        path: manifest_path,
                        message: format!(
                            "manifest records a '{}' run; resume it with the matching \
                             --recover policy",
                            p.mode()
                        ),
                    }),
                }
                base_bytes = m.output_bytes;
                base_itemsets = m.itemsets;
                eprintln!(
                    "resuming from checkpoint: {} unit(s) done, {} output byte(s) committed",
                    m.progress.done(),
                    m.output_bytes
                );
            }
            Err(e) => exit_for_mine_error(e),
        }
    }
    if cfp_trace::enabled() {
        // Surface the resume point in the --progress heartbeat and the
        // metrics export (first-level items for mono runs, partitions
        // for spill runs; 0 = started fresh).
        let watermark = resume_skip.max(spill_resume.as_ref().map_or(0, |(done, _)| *done));
        cfp_trace::counters::CORE_RESUME_WATERMARK.record(watermark);
    }

    let stdout = std::io::stdout();
    let mut sink = CheckpointSink {
        out: io::BufWriter::new(CountingWriter { inner: stdout.lock(), written: 0 }),
        err: None,
        dir: dir.to_path_buf(),
        every: opts.checkpoint_every,
        input: opts.input.clone(),
        min_support,
        counts,
        num_items,
        output: opts.output.to_string(),
        base_bytes,
        base_itemsets,
        emitted: 0,
        latest: None,
        last_committed: resume_skip.max(spill_resume.as_ref().map_or(0, |(done, _)| *done)),
    };

    let result = if spill_mode {
        // Checkpointed spill runs go straight out of core: only the
        // streaming spill rung produces partition watermarks, so the
        // in-memory rungs (whose output has no committed prefix) are
        // skipped deliberately.
        let supervisor = Supervisor {
            threads: opts.threads,
            schedule: opts.schedule,
            single_path_opt: true,
            mem_budget: opts.mem_budget,
            policy: RecoveryPolicy::Spill,
            worker_timeout: opts.worker_timeout,
            spill_dir: opts.spill_dir.as_ref().map(std::path::PathBuf::from),
            cancel: cancel.cloned(),
            output: opts.output,
        };
        let (r, report) =
            supervisor.mine_out_of_core_resumable(db, min_support, &mut sink, spill_resume);
        stash_blackbox_degradation(&report);
        *degradation = Some(report);
        r
    } else if opts.threads > 1 {
        ParallelCfpGrowthMiner {
            schedule: opts.schedule,
            mem_budget: opts.mem_budget,
            worker_timeout: opts.worker_timeout,
            cancel: cancel.cloned(),
            resume_skip,
            output: opts.output,
            ..ParallelCfpGrowthMiner::new(opts.threads)
        }
        .try_mine(db, min_support, &mut sink)
    } else {
        CfpGrowthMiner { single_path_opt: true, mem_budget: opts.mem_budget }.try_mine_with(
            db,
            min_support,
            &mut sink,
            &cfp_core::MineOpts {
                cancel: cancel.cloned(),
                resume_skip,
                output: opts.output,
                ..Default::default()
            },
        )
    };

    match result {
        Ok(stats) => {
            let flushed = sink.out.flush();
            if let Some(e) = sink.err {
                exit_for_write_error(&e);
            }
            if let Err(e) = flushed {
                exit_for_write_error(&e);
            }
            ckpt::clear(dir);
            stats
        }
        Err(CfpError::Interrupted) => {
            // The miner stopped exactly at the watermark in `latest`
            // (nothing is emitted between a boundary notification and
            // the Interrupted return), so committing it makes the next
            // `--resume` continue byte-exactly. A failed final commit
            // only costs re-mining back to the previous manifest.
            if let Err(e) = sink.commit() {
                eprintln!("cfp-mine: warning: final checkpoint commit failed: {e}");
            }
            if let Some(e) = sink.err {
                exit_for_write_error(&e);
            }
            let done =
                sink.latest.as_ref().map_or(sink.last_committed, |(progress, _)| progress.done());
            eprintln!(
                "cfp-mine: interrupted at a resumable watermark ({done} unit(s) done); run \
                 again with --resume to continue"
            );
            exit(CfpError::Interrupted.exit_code());
        }
        Err(e) => exit_for_mine_error(e),
    }
}

fn main() {
    // Arm failpoints from CFP_FAULT when the `fault` feature is
    // compiled in; a guaranteed no-op otherwise.
    cfp_fault::configure_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("cfp-mine: {msg}");
            print_usage();
            exit(EXIT_USAGE);
        }
    };
    // Shared state directories are single-owner: claim their PID locks
    // before any work, failing fast with exit 10 when another live run
    // already holds one. Stale locks from crashed runs are reclaimed.
    let mut state_dirs: Vec<&String> = Vec::new();
    state_dirs.extend(opts.checkpoint_dir.as_ref());
    state_dirs.extend(opts.spill_dir.as_ref());
    state_dirs.dedup();
    let _dir_locks: Vec<cfp_data::DirLock> = state_dirs
        .into_iter()
        .map(|dir| {
            cfp_data::DirLock::acquire(std::path::Path::new(dir))
                .unwrap_or_else(|e| exit_for_mine_error(e))
        })
        .collect();
    let profiling = opts.profile.is_some();
    let tracing = opts.trace_out.is_some() || opts.flame_out.is_some();
    // --mem-report needs the counter registry live for its distribution
    // summaries; counters are observational and never change output.
    // --metrics-out and --blackbox read the same registry (and the
    // latency histograms), so they arm it too.
    if profiling
        || tracing
        || opts.progress
        || opts.mem_report.is_some()
        || opts.metrics_out.is_some()
        || opts.blackbox.is_some()
    {
        cfp_trace::set_enabled(true);
    }
    if tracing || opts.blackbox.is_some() {
        // Event capture is gated separately from the counters so plain
        // `--profile` runs do not pay the per-event ring-buffer cost;
        // the flight recorder needs the rings for its last-N events.
        cfp_trace::events::set_capture(true);
        cfp_trace::events::name_thread("main");
    }
    if let Some(dir) = &opts.blackbox {
        // Create the directory up front: a run dying of ENOSPC or a
        // panic should not also have to mkdir on the way down.
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cfp-mine: cannot create blackbox directory {dir}: {e}");
            exit(1);
        }
        let context = vec![
            ("dataset".to_string(), opts.input.clone()),
            ("algorithm".to_string(), opts.algorithm.clone()),
            ("threads".to_string(), opts.threads.max(1).to_string()),
            ("output".to_string(), opts.output.to_string()),
            ("recover".to_string(), format!("{:?}", opts.recover).to_lowercase()),
        ];
        let _ = BLACKBOX_ARM.set(BlackboxArm { dir: std::path::PathBuf::from(dir), context });
        // A main-thread panic bypasses every structured exit path; hook
        // it so the flight recorder still fires (worker panics are
        // caught and arrive as CfpError::WorkerPanic instead).
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            default_hook(info);
            dump_blackbox(&format!("panic: {info}"), PANIC_EXIT_CODE);
        }));
    }
    let metrics = opts.metrics_out.as_ref().map(|path| {
        let labels = vec![
            ("dataset".to_string(), opts.input.clone()),
            ("algorithm".to_string(), opts.algorithm.clone()),
            ("threads".to_string(), opts.threads.max(1).to_string()),
        ];
        cfp_trace::MetricsExporter::start(
            std::path::PathBuf::from(path),
            opts.metrics_every,
            labels,
        )
    });
    let run_started = std::time::Instant::now();
    let sampler = (profiling || opts.trace_out.is_some())
        .then(|| cfp_trace::MemSampler::start(std::time::Duration::from_millis(10)));
    let meter = opts
        .progress
        .then(|| cfp_trace::ProgressMeter::start(std::time::Duration::from_millis(200)));

    let policy = if opts.skip_bad_lines { ParsePolicy::Skip } else { ParsePolicy::Strict };
    let db: TransactionDb = {
        let _s = cfp_trace::span(cfp_trace::Phase::Read);
        match cfp_data::fimi::read_file_with_policy(&opts.input, policy) {
            Ok((db, stats)) => {
                if stats.skipped_lines > 0 {
                    eprintln!(
                        "warning: skipped {} malformed line(s) ({} bad token(s)) in {}",
                        stats.skipped_lines, stats.bad_tokens, opts.input
                    );
                }
                db
            }
            Err(CfpError::Io(e)) => {
                eprintln!("cannot read {}: {e}", opts.input);
                exit(1);
            }
            Err(e) => {
                eprintln!("cfp-mine: {}: {e}", opts.input);
                dump_blackbox(&format!("{}: {e}", opts.input), e.exit_code());
                exit(e.exit_code());
            }
        }
    };
    let min_support = match opts.support {
        SupportSpec::Absolute(n) => n.max(1),
        SupportSpec::Relative(f) => ((db.len() as f64 * f).ceil() as u64).max(1),
    };
    eprintln!(
        "{}: {} transactions, {} distinct items; minimum support {min_support}",
        opts.input,
        db.len(),
        db.distinct_items()
    );

    // Cooperative cancellation: a checkpointed or deadlined run stops at
    // the next resumable boundary on SIGINT/SIGTERM or when its
    // wall-clock budget expires, instead of dying mid-stream. Signal
    // handlers are installed only here, so plain runs keep the default
    // kill-me-now semantics.
    let cancel = (opts.checkpoint_dir.is_some() || opts.deadline.is_some()).then(|| {
        let mut token = cfp_fault::CancelToken::new();
        if let Some(budget) = opts.deadline {
            token = token.with_deadline(budget);
        }
        if cfp_fault::install_signal_handlers() {
            token = token.observing_signals();
        }
        token
    });

    // The attribution pool exists only when --mem-report asked for it;
    // the mining run charges it so per-component peaks describe the
    // real run, and the post-run analytics pass audits against it.
    let mem_pool = opts.mem_report.as_ref().map(|_| attribution_pool(&opts));
    let runner = match runner_by_name(&opts, mem_pool.as_ref(), cancel.as_ref()) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("cfp-mine: {msg}");
            print_usage();
            exit(EXIT_USAGE);
        }
    };
    let needs_collection =
        opts.top.is_some() || opts.closed || opts.maximal || opts.rules.is_some();
    let mut degradation: Option<RecoveryReport> = None;

    let stats = if opts.checkpoint_dir.is_some() {
        run_checkpointed(&opts, &db, min_support, cancel.as_ref(), &mut degradation)
    } else if opts.count_only {
        let mut sink = CountingSink::new();
        let stats = runner
            .mine(&db, min_support, &mut sink, &mut degradation)
            .unwrap_or_else(|e| exit_for_mine_error(e));
        if let Err(e) = writeln!(std::io::stdout(), "{}", sink.count) {
            exit_for_write_error(&e);
        }
        stats
    } else if let Some(k) = opts.top {
        let mut sink = TopKSink::new(k);
        let stats = runner
            .mine(&db, min_support, &mut sink, &mut degradation)
            .unwrap_or_else(|e| exit_for_mine_error(e));
        if let Err(e) = print_itemsets(&sink.into_sorted()) {
            exit_for_write_error(&e);
        }
        stats
    } else if needs_collection {
        let mut sink = CollectSink::new();
        let stats = runner
            .mine(&db, min_support, &mut sink, &mut degradation)
            .unwrap_or_else(|e| exit_for_mine_error(e));
        let all = sink.into_sorted();
        if let Some(conf) = opts.rules {
            let rules = RuleMiner::new(&all, db.len() as u64).rules_by_confidence(conf);
            let stdout = std::io::stdout();
            let mut out = std::io::BufWriter::new(stdout.lock());
            for r in &rules {
                if let Err(e) = writeln!(
                    out,
                    "{:?} => {:?}  support {}  confidence {:.3}  lift {:.3}",
                    r.antecedent, r.consequent, r.support, r.confidence, r.lift
                ) {
                    exit_for_write_error(&e);
                }
            }
            if let Err(e) = out.flush() {
                exit_for_write_error(&e);
            }
            eprintln!("{} rules", rules.len());
        } else if opts.closed {
            if let Err(e) = print_itemsets(&closed_itemsets(&all)) {
                exit_for_write_error(&e);
            }
        } else if opts.maximal {
            if let Err(e) = print_itemsets(&maximal_itemsets(&all)) {
                exit_for_write_error(&e);
            }
        }
        stats
    } else {
        let stdout = std::io::stdout();
        let mut sink =
            PrintSink { out: std::io::BufWriter::new(stdout.lock()), count: 0, err: None };
        let stats = match runner.mine(&db, min_support, &mut sink, &mut degradation) {
            Ok(stats) => stats,
            Err(e) => {
                // A failed run — notably a `--deadline` interruption —
                // still flushes the complete lines emitted before the
                // stop, so a graceful exit 8 loses no buffered output.
                let _ = sink.out.flush();
                exit_for_mine_error(e)
            }
        };
        let flushed = sink.out.flush();
        if let Some(e) = sink.err {
            exit_for_write_error(&e);
        }
        if let Err(e) = flushed {
            exit_for_write_error(&e);
        }
        stats
    };
    let wall_nanos = run_started.elapsed().as_nanos() as u64;
    let samples = sampler.map(cfp_trace::MemSampler::stop).unwrap_or_default();
    if let Some(meter) = meter {
        meter.stop();
    }
    if let Some(exporter) = metrics {
        // Flushes one final snapshot, so even runs shorter than the
        // interval leave a complete export behind.
        let path = exporter.stop();
        eprintln!("metrics written to {} (and {}.jsonl)", path.display(), path.display());
    }
    // Freeze the timeline before any export reads it; the tracks are
    // shared by the Chrome export, the flame export, and the profile
    // report's events summary.
    let tracks = if tracing {
        cfp_trace::events::set_capture(false);
        cfp_trace::events::drain()
    } else {
        Vec::new()
    };
    if let Some(path) = &opts.trace_out {
        let json = cfp_trace::chrome::chrome_trace(&tracks, &samples);
        if let Err(e) = std::fs::write(path, json.to_pretty()) {
            eprintln!("cannot write trace {path}: {e}");
            exit(1);
        }
        eprintln!("trace written to {path} ({} tracks)", tracks.len());
    }
    if let Some(path) = &opts.flame_out {
        if let Err(e) = std::fs::write(path, cfp_trace::flame::folded_stacks(&tracks)) {
            eprintln!("cannot write flamegraph stacks {path}: {e}");
            exit(1);
        }
        eprintln!("flamegraph stacks written to {path}");
    }

    if let Some(path) = &opts.image {
        if opts.algorithm != "cfp" {
            eprintln!("--image requires the cfp algorithm");
            exit(EXIT_USAGE);
        }
        let image = MiningImage::build(&db, min_support);
        if let Err(e) = image.save(path) {
            eprintln!("cannot save image {path}: {e}");
            exit(1);
        }
        eprintln!("image saved to {path}");
    }
    if opts.stats {
        report_stats(&stats, stats.itemsets);
        if profiling {
            report_trace_stats();
        }
    }
    let mut memstat_summary: Option<cfp_trace::MemSummary> = None;
    if let Some(path) = &opts.mem_report {
        let pool = mem_pool.as_ref().expect("pool exists whenever --mem-report is given");
        // FP-tree baselines for the compression table, built from the
        // same counts the CFP structures use.
        let recoder = cfp_core::ItemRecoder::scan(&db, min_support);
        let fp = cfp_fptree::FpTree::from_db(&db, &recoder);
        let b = cfp_fptree::analysis::baselines(&fp);
        drop(fp);
        let baselines = cfp_core::FpBaselineBytes {
            nodes: b.nodes,
            in_memory_bytes: b.in_memory_bytes,
            paper_bytes: b.paper_bytes,
            nonordfp_bytes: b.nonordfp_bytes,
        };
        let run = cfp_core::MemStatRun {
            dataset: &opts.input,
            algorithm: &opts.algorithm,
            threads: opts.threads.max(1) as u64,
        };
        match cfp_core::collect_memstat(&db, min_support, &run, pool, Some(baselines)) {
            Ok(report) => {
                memstat_summary = Some(report.summary());
                if let Err(e) = std::fs::write(path, report.to_json().to_pretty()) {
                    eprintln!("cannot write memory report {path}: {e}");
                    exit(1);
                }
                eprintln!("memory report written to {path}");
            }
            Err(e) => {
                eprintln!("cfp-mine: memory report failed: {e}");
                exit(e.exit_code());
            }
        }
    }
    if let Some(d) = degradation.as_ref().filter(|d| d.recovered) {
        let winner = d.rungs.last().map(|r| r.rung).unwrap_or("?");
        eprintln!(
            "recovered via {winner} after {} rung(s){}",
            d.rungs.len(),
            if d.final_partitions > 0 {
                format!(" ({} partitions)", d.final_partitions)
            } else {
                String::new()
            }
        );
    }
    if let Some(path) = &opts.profile {
        let mut report = cfp_trace::RunReport::capture(
            opts.input.clone(),
            db.len() as u64,
            min_support,
            opts.algorithm.clone(),
            opts.threads.max(1) as u64,
            stats.itemsets,
            wall_nanos,
            samples,
        );
        if opts.algorithm == "cfp" && opts.threads > 1 {
            report = report.with_schedule(opts.schedule.name());
        }
        // A supervised run that needed its ladder records what happened;
        // healthy runs keep the section absent so the schema stays
        // backward-compatible.
        if let Some(d) = degradation.as_ref().filter(|d| !d.rungs.is_empty()) {
            report = report.with_degradation(to_trace_degradation(d));
        }
        report = report.with_events(cfp_trace::events::summarize(&tracks));
        // Fold the memory summary in when --mem-report also ran, so
        // profile consumers can diff memory without the full document.
        if let Some(m) = memstat_summary.clone() {
            report = report.with_memstat(m);
        }
        if let Err(e) = std::fs::write(path, report.to_json().to_pretty()) {
            eprintln!("cannot write profile {path}: {e}");
            exit(1);
        }
        eprintln!("profile written to {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_bytes_accepts_suffixes() {
        assert_eq!(parse_bytes("4096"), Ok(4096));
        assert_eq!(parse_bytes("4k"), Ok(4096));
        assert_eq!(parse_bytes("64M"), Ok(64 << 20));
        assert_eq!(parse_bytes("2g"), Ok(2 << 30));
        assert!(parse_bytes("").is_err());
        assert!(parse_bytes("x").is_err());
        assert!(parse_bytes("12q").is_err());
        assert!(parse_bytes("99999999999999999999g").is_err());
    }

    #[test]
    fn parse_args_happy_path() {
        let o = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--threads",
            "4",
            "--mem-budget",
            "1m",
            "--skip-bad-lines",
        ]))
        .unwrap();
        assert_eq!(o.input, "in.dat");
        assert!(matches!(o.support, SupportSpec::Absolute(2)));
        assert_eq!(o.threads, 4);
        assert_eq!(o.mem_budget, Some(1 << 20));
        assert!(o.skip_bad_lines);
    }

    #[test]
    fn parse_args_reports_problems_instead_of_exiting() {
        assert!(parse_args(&args(&[])).unwrap_err().contains("no input"));
        assert!(parse_args(&args(&["in.dat"])).unwrap_err().contains("--support"));
        assert!(parse_args(&args(&["in.dat", "--support"])).unwrap_err().contains("missing value"));
        assert!(parse_args(&args(&["in.dat", "--support", "x"]))
            .unwrap_err()
            .contains("bad support"));
        assert!(parse_args(&args(&["in.dat", "--support", "2", "--bogus"]))
            .unwrap_err()
            .contains("unknown argument"));
        assert!(parse_args(&args(&["in.dat", "--support", "2", "--mem-budget", "huge"]))
            .unwrap_err()
            .contains("bad byte count"));
    }

    #[test]
    fn parse_args_schedule() {
        let o = parse_args(&args(&["in.dat", "--support", "2"])).unwrap();
        assert_eq!(o.schedule, Schedule::Dynamic);
        let o = parse_args(&args(&["in.dat", "--support", "2", "--schedule", "static"])).unwrap();
        assert_eq!(o.schedule, Schedule::Static);
        let o = parse_args(&args(&["in.dat", "--support", "2", "--schedule=dynamic"])).unwrap();
        assert_eq!(o.schedule, Schedule::Dynamic);
        assert!(parse_args(&args(&["in.dat", "--support", "2", "--schedule", "fifo"]))
            .unwrap_err()
            .contains("unknown schedule"));
    }

    #[test]
    fn parse_args_spill_flags() {
        let o = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--recover=spill",
            "--spill-dir",
            "/tmp/scratch",
        ]))
        .unwrap();
        assert_eq!(o.recover, RecoveryPolicy::Spill);
        assert_eq!(o.spill_dir.as_deref(), Some("/tmp/scratch"));

        // --spill-dir is meaningless outside the spill policy.
        let err =
            parse_args(&args(&["in.dat", "--support", "2", "--spill-dir", "/tmp/s"])).unwrap_err();
        assert!(err.contains("--recover=spill"), "{err}");
        let err = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--recover=partition",
            "--spill-dir",
            "/tmp/s",
        ]))
        .unwrap_err();
        assert!(err.contains("--recover=spill"), "{err}");

        // The policy list in the parse error names spill.
        let err =
            parse_args(&args(&["in.dat", "--support", "2", "--recover", "disk"])).unwrap_err();
        assert!(err.contains("spill"), "{err}");

        // --recover=spill applies to the cfp algorithm only.
        let o = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--algorithm",
            "apriori",
            "--recover=spill",
        ]))
        .unwrap();
        assert!(runner_by_name(&o, None, None).is_err());
    }

    #[test]
    fn parse_args_checkpoint_flags() {
        let o = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--checkpoint-dir",
            "/tmp/ck",
            "--checkpoint-every",
            "7",
            "--resume",
            "--deadline",
            "1.5",
        ]))
        .unwrap();
        assert_eq!(o.checkpoint_dir.as_deref(), Some("/tmp/ck"));
        assert_eq!(o.checkpoint_every, 7);
        assert!(o.resume);
        assert_eq!(o.deadline, Some(Duration::from_secs_f64(1.5)));

        // Defaults: every 32 items, no resume, no deadline.
        let o =
            parse_args(&args(&["in.dat", "--support", "2", "--checkpoint-dir=/tmp/ck"])).unwrap();
        assert_eq!(o.checkpoint_every, 32);
        assert!(!o.resume);
        assert_eq!(o.deadline, None);

        // The checkpointed spill mode parses too.
        let o = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--checkpoint-dir=/tmp/ck",
            "--recover=spill",
            "--spill-dir=/tmp/sp",
        ]))
        .unwrap();
        assert_eq!(o.recover, RecoveryPolicy::Spill);
    }

    #[test]
    fn parse_args_checkpoint_validations() {
        let err = parse_args(&args(&["in.dat", "--support", "2", "--resume"])).unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");
        let err = parse_args(&args(&["in.dat", "--support", "2", "--checkpoint-every", "4"]))
            .unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");
        let err = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--checkpoint-dir=/tmp/ck",
            "--checkpoint-every",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        for bad in [
            &["--checkpoint-dir=/tmp/ck", "--count"][..],
            &["--checkpoint-dir=/tmp/ck", "--top", "5"][..],
            &["--checkpoint-dir=/tmp/ck", "--rules", "0.5"][..],
            &["--checkpoint-dir=/tmp/ck", "--schedule=static"][..],
            &["--checkpoint-dir=/tmp/ck", "--recover=partition"][..],
            &["--checkpoint-dir=/tmp/ck", "--mem-report", "m.json"][..],
            &["--checkpoint-dir=/tmp/ck", "--algorithm", "fp"][..],
            &["--deadline", "5", "--algorithm", "eclat"][..],
            &["--deadline", "0"][..],
            &["--deadline", "-3"][..],
        ] {
            let mut a = vec!["in.dat", "--support", "2"];
            a.extend_from_slice(bad);
            assert!(parse_args(&args(&a)).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_args_output_modes() {
        let o = parse_args(&args(&["in.dat", "--support", "2", "--output", "closed"])).unwrap();
        assert_eq!(o.output, OutputMode::Closed);
        let o = parse_args(&args(&["in.dat", "--support", "2", "--output=maximal"])).unwrap();
        assert_eq!(o.output, OutputMode::Maximal);
        let o = parse_args(&args(&["in.dat", "--support", "2", "--output=topk:12"])).unwrap();
        assert_eq!(o.output, OutputMode::TopK(12));
        let o = parse_args(&args(&["in.dat", "--support", "2"])).unwrap();
        assert_eq!(o.output, OutputMode::All);

        // Malformed modes are usage errors.
        for bad in ["topk:0", "topk:x", "topk:", "frequent", ""] {
            let err =
                parse_args(&args(&["in.dat", "--support", "2", "--output", bad])).unwrap_err();
            assert!(err.contains("output mode"), "{bad:?}: {err}");
        }

        // The legacy condensed flags alias to engine modes on cfp…
        let o = parse_args(&args(&["in.dat", "--support", "2", "--closed"])).unwrap();
        assert_eq!(o.output, OutputMode::Closed);
        assert!(!o.closed, "aliased flag must not also trigger the post-hoc filter");
        let o = parse_args(&args(&["in.dat", "--support", "2", "--maximal"])).unwrap();
        assert_eq!(o.output, OutputMode::Maximal);
        let o = parse_args(&args(&["in.dat", "--support", "2", "--top", "7"])).unwrap();
        assert_eq!(o.output, OutputMode::TopK(7));
        assert_eq!(o.top, None);
        // …but stay post-hoc on the baselines, where --output is rejected.
        let o = parse_args(&args(&["in.dat", "--support", "2", "--algorithm=lcm", "--closed"]))
            .unwrap();
        assert_eq!(o.output, OutputMode::All);
        assert!(o.closed);
        let err =
            parse_args(&args(&["in.dat", "--support", "2", "--algorithm=lcm", "--output=closed"]))
                .unwrap_err();
        assert!(err.contains("cfp"), "{err}");

        // --rules needs the full set; --output conflicts with the legacy
        // flags it replaces. --rules with a legacy flag keeps output=All
        // (the rules branch wins, as it always has).
        let err = parse_args(&args(&["in.dat", "--support", "2", "--output=closed", "--maximal"]))
            .unwrap_err();
        assert!(err.contains("cannot be combined"), "{err}");
        let err =
            parse_args(&args(&["in.dat", "--support", "2", "--output=topk:3", "--rules", "0.5"]))
                .unwrap_err();
        assert!(err.contains("--rules"), "{err}");
        let o =
            parse_args(&args(&["in.dat", "--support", "2", "--rules", "0.5", "--closed"])).unwrap();
        assert_eq!(o.output, OutputMode::All);

        // Checkpointing streams closed/maximal but only on the off rung,
        // and never top-k (no watermark over a heap).
        let o = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--checkpoint-dir=/tmp/ck",
            "--output=closed",
        ]))
        .unwrap();
        assert_eq!(o.output, OutputMode::Closed);
        let err = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--checkpoint-dir=/tmp/ck",
            "--output=maximal",
            "--recover=spill",
        ]))
        .unwrap_err();
        assert!(err.contains("--recover=off"), "{err}");
        let err = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--checkpoint-dir=/tmp/ck",
            "--output=topk:5",
        ]))
        .unwrap_err();
        assert!(err.contains("streaming"), "{err}");
    }

    #[test]
    fn parse_args_relative_support() {
        let o = parse_args(&args(&["x.dat", "--support", "2.5%"])).unwrap();
        match o.support {
            SupportSpec::Relative(f) => assert!((f - 0.025).abs() < 1e-12),
            SupportSpec::Absolute(_) => panic!("expected relative"),
        }
    }
}
