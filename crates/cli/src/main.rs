//! `cfp-mine` — frequent-itemset mining from the command line.
//!
//! A FIMI-repository-style interface over the whole workspace: point it at
//! a FIMI-format file, pick a support threshold (absolute count or
//! percentage), and choose an algorithm, an output mode, and optional
//! post-processing.
//!
//! ```text
//! cfp-mine <input.dat> --support <N | P%> [options]
//!
//!   --algorithm NAME   cfp (default), fp, apriori, eclat, lcm,
//!                      nonordfp, tiny, fparray
//!   --threads N        parallel CFP-growth with N workers
//!   --schedule S       parallel mine-phase scheduling: dynamic
//!                      (default; work-stealing claims from a shared
//!                      cost-sorted queue, deterministic output) or
//!                      static (fixed round-robin deal)
//!   --mem-budget B     cap the build-phase arena at B bytes (k/m/g
//!                      suffixes allowed; cfp algorithms only)
//!   --skip-bad-lines   drop malformed input lines instead of failing
//!   --count            print only the number of frequent itemsets
//!   --top K            print the K highest-support itemsets
//!   --closed           print only closed itemsets
//!   --maximal          print only maximal itemsets
//!   --rules CONF       print association rules with confidence ≥ CONF
//!   --image PATH       also save a reusable mining image (CFP only)
//!   --stats            print phase times and peak memory to stderr
//!   --profile PATH     enable tracing and write a cfp-profile/2 JSON
//!                      run report (phase spans, counters, memory
//!                      time series, event summary) to PATH
//!   --trace-out PATH   capture the event timeline and write Chrome
//!                      trace-event JSON (open in Perfetto or
//!                      chrome://tracing; one track per worker plus
//!                      memory counter tracks)
//!   --flame-out PATH   write folded flamegraph stacks of the
//!                      conditional-tree descent (flamegraph.pl /
//!                      speedscope input)
//!   --progress         live status heartbeat on stderr (phase, items
//!                      mined, steals, budget-pool peak)
//!   --mem-report PATH  write a cfp-memstat/1 JSON memory report
//!                      (per-component attribution, reconciliation
//!                      audit, per-structure analytics, compression
//!                      table vs FP-tree baselines; cfp only). The
//!                      mining run charges an attribution pool and a
//!                      post-run analytics pass measures the structures;
//!                      mining output is byte-identical with the flag on
//!   --recover POLICY   escalation ladder on failure: off (default),
//!                      retry (compact-and-retry), degrade (… then
//!                      sequential), partition (… then item-range
//!                      partitioned fallback mining), spill (… then
//!                      out-of-core: partition arrays go through
//!                      crash-safe disk files; cfp only)
//!   --spill-dir PATH   parent directory for the spill rung's scratch
//!                      files (default: the system temp directory; a
//!                      per-run subdirectory is created and removed on
//!                      every exit path; requires --recover=spill)
//!   --worker-timeout S watchdog: fail a parallel run when no worker
//!                      makes progress for S seconds
//! ```
//!
//! Flags also accept the `--flag=value` spelling. Itemsets print in FIMI
//! output format: space-separated items followed by the absolute support
//! in parentheses, e.g. `3 17 29 (1250)`.
//!
//! # Exit codes
//!
//! The process maps every failure to a stable code (see
//! `CfpError::exit_code`): 0 success (including a closed output pipe),
//! 1 I/O error, 2 usage error, 3 malformed input, 4 memory budget
//! exhausted, 5 worker panic, 6 worker timeout, 7 spill failure (a
//! spill-file write, read, or checksum validation failed permanently
//! during `--recover=spill`). `--recover=off` leaves all of these
//! exactly as they were; other policies only change the outcome when a
//! recovery rung actually completes the run.

use cfp_core::{
    CfpGrowthMiner, CollectSink, CountingSink, ItemsetSink, MineStats, Miner, MiningImage,
    ParallelCfpGrowthMiner, RecoveryPolicy, RecoveryReport, Schedule, Supervisor, TopKSink,
    TransactionDb,
};
use cfp_data::{CfpError, ParsePolicy};
use cfp_fault::EXIT_USAGE;
use cfp_rules::{closed_itemsets, maximal_itemsets, RuleMiner};
use std::io::{self, Write};
use std::process::exit;
use std::time::Duration;

#[derive(Debug)]
struct Options {
    input: String,
    support: SupportSpec,
    algorithm: String,
    threads: usize,
    schedule: Schedule,
    mem_budget: Option<u64>,
    skip_bad_lines: bool,
    count_only: bool,
    top: Option<usize>,
    closed: bool,
    maximal: bool,
    rules: Option<f64>,
    image: Option<String>,
    stats: bool,
    profile: Option<String>,
    trace_out: Option<String>,
    flame_out: Option<String>,
    progress: bool,
    mem_report: Option<String>,
    recover: RecoveryPolicy,
    spill_dir: Option<String>,
    worker_timeout: Option<Duration>,
}

#[derive(Debug)]
enum SupportSpec {
    Absolute(u64),
    Relative(f64),
}

fn print_usage() {
    eprintln!("usage: cfp-mine <input.dat> --support <N | P%> [options]");
    eprintln!("  --algorithm cfp|fp|apriori|eclat|lcm|nonordfp|tiny|fparray");
    eprintln!("  --threads N | --schedule static|dynamic | --mem-budget BYTES[k|m|g]");
    eprintln!("  --skip-bad-lines");
    eprintln!("  --count | --top K | --closed | --maximal");
    eprintln!("  --rules CONF | --image PATH | --stats | --profile PATH");
    eprintln!("  --trace-out PATH | --flame-out PATH | --progress | --mem-report PATH");
    eprintln!("  --recover off|retry|degrade|partition|spill | --spill-dir PATH");
    eprintln!("  --worker-timeout SECONDS");
}

/// Parses a byte count with an optional `k`/`m`/`g` suffix (powers of
/// 1024, case-insensitive), e.g. `64m` = 67108864.
fn parse_bytes(s: &str) -> Result<u64, String> {
    let (digits, shift) = match s.to_ascii_lowercase().as_str() {
        t if t.ends_with('k') => (&s[..s.len() - 1], 10),
        t if t.ends_with('m') => (&s[..s.len() - 1], 20),
        t if t.ends_with('g') => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: u64 = digits.parse().map_err(|_| format!("bad byte count {s:?}"))?;
    n.checked_shl(shift)
        .filter(|&v| v >> shift == n)
        .ok_or_else(|| format!("byte count {s:?} overflows"))
}

/// Parses the argument list (without the program name). Returns a
/// description of the first problem instead of exiting, so main owns the
/// process exit and tests can exercise every path in-process.
fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        support: SupportSpec::Absolute(0),
        algorithm: "cfp".into(),
        threads: 1,
        schedule: Schedule::default(),
        mem_budget: None,
        skip_bad_lines: false,
        count_only: false,
        top: None,
        closed: false,
        maximal: false,
        rules: None,
        image: None,
        stats: false,
        profile: None,
        trace_out: None,
        flame_out: None,
        progress: false,
        mem_report: None,
        recover: RecoveryPolicy::Off,
        spill_dir: None,
        worker_timeout: None,
    };
    // Accept `--flag=value` as well as `--flag value`.
    let args: Vec<String> = args
        .iter()
        .flat_map(|a| match a.strip_prefix("--").and_then(|r| r.split_once('=')) {
            Some((flag, val)) => vec![format!("--{flag}"), val.to_string()],
            None => vec![a.clone()],
        })
        .collect();
    let mut support_given = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--support" => {
                let v = value(arg)?;
                opts.support = if let Some(pct) = v.strip_suffix('%') {
                    let p: f64 = pct.parse().map_err(|_| format!("bad percentage {v:?}"))?;
                    SupportSpec::Relative(p / 100.0)
                } else {
                    SupportSpec::Absolute(v.parse().map_err(|_| format!("bad support {v:?}"))?)
                };
                support_given = true;
            }
            "--algorithm" => opts.algorithm = value(arg)?,
            "--threads" => {
                opts.threads = value(arg)?.parse().map_err(|_| "bad thread count".to_string())?;
            }
            "--schedule" => opts.schedule = value(arg)?.parse()?,
            "--mem-budget" => opts.mem_budget = Some(parse_bytes(&value(arg)?)?),
            "--skip-bad-lines" => opts.skip_bad_lines = true,
            "--count" => opts.count_only = true,
            "--top" => {
                opts.top = Some(value(arg)?.parse().map_err(|_| "bad top-k".to_string())?);
            }
            "--closed" => opts.closed = true,
            "--maximal" => opts.maximal = true,
            "--rules" => {
                opts.rules = Some(value(arg)?.parse().map_err(|_| "bad confidence".to_string())?);
            }
            "--image" => opts.image = Some(value(arg)?),
            "--stats" => opts.stats = true,
            "--profile" => opts.profile = Some(value(arg)?),
            "--trace-out" => opts.trace_out = Some(value(arg)?),
            "--flame-out" => opts.flame_out = Some(value(arg)?),
            "--progress" => opts.progress = true,
            "--mem-report" => opts.mem_report = Some(value(arg)?),
            "--recover" => opts.recover = value(arg)?.parse()?,
            "--spill-dir" => opts.spill_dir = Some(value(arg)?),
            "--worker-timeout" => {
                let secs: f64 =
                    value(arg)?.parse().map_err(|_| "bad worker timeout".to_string())?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("worker timeout must be a positive number of seconds".to_string());
                }
                opts.worker_timeout = Some(Duration::from_secs_f64(secs));
            }
            other if !other.starts_with('-') && opts.input.is_empty() => {
                opts.input = other.to_string();
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.input.is_empty() {
        return Err("no input file given".to_string());
    }
    if !support_given {
        return Err("no --support given".to_string());
    }
    // A budget below the arena's initial carve (the root slot, one
    // minimum-size chunk) can never admit even an empty tree: reject it
    // up front as a usage error instead of failing every attempt.
    if let Some(b) = opts.mem_budget {
        if b < cfp_memman::MIN_CHUNK as u64 {
            return Err(format!(
                "--mem-budget {b} is below the arena's minimum carve of {} bytes",
                cfp_memman::MIN_CHUNK
            ));
        }
    }
    if opts.spill_dir.is_some() && opts.recover != RecoveryPolicy::Spill {
        return Err("--spill-dir requires --recover=spill".to_string());
    }
    if opts.mem_report.is_some() && opts.algorithm != "cfp" {
        return Err(format!(
            "--mem-report only applies to the cfp algorithm, not {:?}",
            opts.algorithm
        ));
    }
    Ok(opts)
}

/// How the run executes: a plain miner, a sequential CFP miner charging
/// an attribution pool (`--mem-report`), or the recovery supervisor
/// wrapping one (`--recover` other than `off`, cfp algorithm only).
enum Runner {
    Plain(Box<dyn Miner>),
    Pooled(CfpGrowthMiner, cfp_memman::BudgetPool),
    Supervised(Supervisor),
}

impl Runner {
    /// Runs the mining phase; a supervised run also yields its
    /// [`RecoveryReport`] for the profile's degradation section.
    fn mine(
        &self,
        db: &TransactionDb,
        min_support: u64,
        sink: &mut dyn ItemsetSink,
        degradation: &mut Option<RecoveryReport>,
    ) -> Result<MineStats, CfpError> {
        match self {
            Runner::Plain(m) => m.try_mine(db, min_support, sink),
            Runner::Pooled(m, pool) => m.try_mine_with(
                db,
                min_support,
                sink,
                &cfp_core::MineOpts { pool: Some(pool.clone()), ..Default::default() },
            ),
            Runner::Supervised(s) => {
                let (r, report) = s.mine(db, min_support, sink);
                *degradation = Some(report);
                r
            }
        }
    }
}

/// Builds the attribution pool a `--mem-report` run charges. Admission
/// must be byte-identical to a run without the flag: sequential runs get
/// an unlimited pool (their `--mem-budget` stays a per-arena cap), while
/// parallel runs get exactly the pool `ParallelCfpGrowthMiner` would
/// have created from `--mem-budget` itself.
fn attribution_pool(opts: &Options) -> cfp_memman::BudgetPool {
    use cfp_memman::BudgetPool;
    match opts.mem_budget {
        Some(b) if opts.algorithm == "cfp" && opts.threads > 1 => BudgetPool::new(b),
        _ => BudgetPool::unlimited(),
    }
}

fn runner_by_name(opts: &Options, pool: Option<&cfp_memman::BudgetPool>) -> Result<Runner, String> {
    let budget_ignored = |name: &str| {
        if opts.mem_budget.is_some() {
            eprintln!(
                "warning: --mem-budget only applies to the cfp algorithms; ignored for {name}"
            );
        }
    };
    if opts.recover != RecoveryPolicy::Off {
        if opts.algorithm != "cfp" {
            return Err(format!(
                "--recover only applies to the cfp algorithm, not {:?}",
                opts.algorithm
            ));
        }
        return Ok(Runner::Supervised(Supervisor {
            threads: opts.threads,
            schedule: opts.schedule,
            single_path_opt: true,
            mem_budget: opts.mem_budget,
            policy: opts.recover,
            worker_timeout: opts.worker_timeout,
            spill_dir: opts.spill_dir.as_ref().map(std::path::PathBuf::from),
        }));
    }
    Ok(Runner::Plain(match opts.algorithm.as_str() {
        "cfp" if opts.threads > 1 => Box::new(ParallelCfpGrowthMiner {
            schedule: opts.schedule,
            mem_budget: opts.mem_budget,
            pool: pool.cloned(),
            worker_timeout: opts.worker_timeout,
            ..ParallelCfpGrowthMiner::new(opts.threads)
        }),
        "cfp" => {
            let miner = CfpGrowthMiner { single_path_opt: true, mem_budget: opts.mem_budget };
            match pool {
                Some(p) => return Ok(Runner::Pooled(miner, p.clone())),
                None => Box::new(miner),
            }
        }
        "fp" => {
            budget_ignored("fp");
            Box::new(cfp_fptree::FpGrowthMiner::new())
        }
        "apriori" => {
            budget_ignored("apriori");
            Box::new(cfp_baselines::AprioriMiner::new())
        }
        "eclat" => {
            budget_ignored("eclat");
            Box::new(cfp_baselines::EclatMiner::new())
        }
        "lcm" => {
            budget_ignored("lcm");
            Box::new(cfp_baselines::LcmStyleMiner::new())
        }
        "nonordfp" => {
            budget_ignored("nonordfp");
            Box::new(cfp_baselines::NonordFpMiner::new())
        }
        "tiny" => {
            budget_ignored("tiny");
            Box::new(cfp_baselines::TinyStyleMiner::new())
        }
        "fparray" => {
            budget_ignored("fparray");
            Box::new(cfp_baselines::FpArrayStyleMiner::new())
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    }))
}

/// Exits with the documented code for a failed output write. A broken
/// pipe is the downstream consumer (`head`, `grep -q`, a closed pager)
/// losing interest — that is success, reported quietly, matching the
/// behaviour of well-mannered Unix filters.
fn exit_for_write_error(e: &io::Error) -> ! {
    if e.kind() == io::ErrorKind::BrokenPipe {
        exit(0);
    }
    eprintln!("cfp-mine: cannot write output: {e}");
    exit(1);
}

/// Streams itemsets straight to a writer in FIMI output format.
///
/// Write failures are recorded, not panicked on; after the first failure
/// further output is discarded (mining continues so stats stay
/// meaningful) and main exits through [`exit_for_write_error`].
struct PrintSink<W: Write> {
    out: W,
    count: u64,
    err: Option<io::Error>,
}

impl<W: Write> ItemsetSink for PrintSink<W> {
    fn emit(&mut self, itemset: &[u32], support: u64) {
        self.count += 1;
        if self.err.is_some() {
            return;
        }
        let mut line = String::with_capacity(itemset.len() * 7 + 12);
        for (i, item) in itemset.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&item.to_string());
        }
        line.push_str(&format!(" ({support})\n"));
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.err = Some(e);
        }
    }
}

fn print_itemsets(itemsets: &[(Vec<u32>, u64)]) -> io::Result<()> {
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for (items, support) in itemsets {
        let mut line = String::new();
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&item.to_string());
        }
        line.push_str(&format!(" ({support})\n"));
        out.write_all(line.as_bytes())?;
    }
    out.flush()
}

fn report_stats(stats: &MineStats, n_itemsets: u64) {
    eprintln!(
        "itemsets {}  scan {:.3}s  build {:.3}s  convert {:.3}s  mine {:.3}s  peak {}",
        n_itemsets,
        stats.scan_time.as_secs_f64(),
        stats.build_time.as_secs_f64(),
        stats.convert_time.as_secs_f64(),
        stats.mine_time.as_secs_f64(),
        cfp_metrics::fmt_bytes(stats.peak_bytes),
    );
    if !stats.worker_peaks.is_empty() {
        let peaks: Vec<String> =
            stats.worker_peaks.iter().map(|&p| cfp_metrics::fmt_bytes(p)).collect();
        eprintln!("worker peaks  {}", peaks.join("  "));
    }
}

/// With tracing enabled (`--profile`), `--stats` additionally dumps the
/// counter registry so the headline numbers are inspectable without
/// opening the JSON report.
fn report_trace_stats() {
    use cfp_trace::counters as tc;
    let allocs = tc::MEMMAN_ALLOCS.get();
    let hits = tc::MEMMAN_QUEUE_HITS.get();
    let hit_pct = if allocs > 0 { 100.0 * hits as f64 / allocs as f64 } else { 0.0 };
    eprintln!(
        "arena  allocs {allocs}  frees {}  queue-hit {hit_pct:.1}%  grow {}  shrink {}  peak footprint {}",
        tc::MEMMAN_FREES.get(),
        tc::MEMMAN_GROWS.get(),
        tc::MEMMAN_SHRINKS.get(),
        cfp_metrics::fmt_bytes(tc::MEMMAN_PEAK_FOOTPRINT.get()),
    );
    eprintln!(
        "tree   standard {}  chain {}  embedded {}  splits {}  unembeds {}",
        tc::TREE_STANDARD_NODES.get(),
        tc::TREE_CHAIN_NODES.get(),
        tc::TREE_EMBEDDED_LEAVES.get(),
        tc::TREE_CHAIN_SPLITS.get(),
        tc::TREE_UNEMBEDS.get(),
    );
    eprintln!(
        "mine   conditional trees {}  single-path shortcuts {}  max depth {}  patterns {}",
        tc::CORE_CONDITIONAL_TREES.get(),
        tc::CORE_SINGLE_PATH_SHORTCUTS.get(),
        tc::CORE_MAX_DEPTH.get(),
        tc::CORE_PATTERNS.get(),
    );
}

/// Reports a pipeline failure and exits with its documented code. The
/// diagnostic names the failing phase (the `Display` of
/// `CfpError::MemoryExhausted` includes it).
fn exit_for_mine_error(e: CfpError) -> ! {
    eprintln!("cfp-mine: {e}");
    exit(e.exit_code());
}

fn main() {
    // Arm failpoints from CFP_FAULT when the `fault` feature is
    // compiled in; a guaranteed no-op otherwise.
    cfp_fault::configure_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("cfp-mine: {msg}");
            print_usage();
            exit(EXIT_USAGE);
        }
    };
    let profiling = opts.profile.is_some();
    let tracing = opts.trace_out.is_some() || opts.flame_out.is_some();
    // --mem-report needs the counter registry live for its distribution
    // summaries; counters are observational and never change output.
    if profiling || tracing || opts.progress || opts.mem_report.is_some() {
        cfp_trace::set_enabled(true);
    }
    if tracing {
        // Event capture is gated separately from the counters so plain
        // `--profile` runs do not pay the per-event ring-buffer cost.
        cfp_trace::events::set_capture(true);
        cfp_trace::events::name_thread("main");
    }
    let run_started = std::time::Instant::now();
    let sampler = (profiling || opts.trace_out.is_some())
        .then(|| cfp_trace::MemSampler::start(std::time::Duration::from_millis(10)));
    let meter = opts
        .progress
        .then(|| cfp_trace::ProgressMeter::start(std::time::Duration::from_millis(200)));

    let policy = if opts.skip_bad_lines { ParsePolicy::Skip } else { ParsePolicy::Strict };
    let db: TransactionDb = {
        let _s = cfp_trace::span(cfp_trace::Phase::Read);
        match cfp_data::fimi::read_file_with_policy(&opts.input, policy) {
            Ok((db, stats)) => {
                if stats.skipped_lines > 0 {
                    eprintln!(
                        "warning: skipped {} malformed line(s) ({} bad token(s)) in {}",
                        stats.skipped_lines, stats.bad_tokens, opts.input
                    );
                }
                db
            }
            Err(CfpError::Io(e)) => {
                eprintln!("cannot read {}: {e}", opts.input);
                exit(1);
            }
            Err(e) => {
                eprintln!("cfp-mine: {}: {e}", opts.input);
                exit(e.exit_code());
            }
        }
    };
    let min_support = match opts.support {
        SupportSpec::Absolute(n) => n.max(1),
        SupportSpec::Relative(f) => ((db.len() as f64 * f).ceil() as u64).max(1),
    };
    eprintln!(
        "{}: {} transactions, {} distinct items; minimum support {min_support}",
        opts.input,
        db.len(),
        db.distinct_items()
    );

    // The attribution pool exists only when --mem-report asked for it;
    // the mining run charges it so per-component peaks describe the
    // real run, and the post-run analytics pass audits against it.
    let mem_pool = opts.mem_report.as_ref().map(|_| attribution_pool(&opts));
    let runner = match runner_by_name(&opts, mem_pool.as_ref()) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("cfp-mine: {msg}");
            print_usage();
            exit(EXIT_USAGE);
        }
    };
    let needs_collection =
        opts.top.is_some() || opts.closed || opts.maximal || opts.rules.is_some();
    let mut degradation: Option<RecoveryReport> = None;

    let stats = if opts.count_only {
        let mut sink = CountingSink::new();
        let stats = runner
            .mine(&db, min_support, &mut sink, &mut degradation)
            .unwrap_or_else(|e| exit_for_mine_error(e));
        if let Err(e) = writeln!(std::io::stdout(), "{}", sink.count) {
            exit_for_write_error(&e);
        }
        stats
    } else if let Some(k) = opts.top {
        let mut sink = TopKSink::new(k);
        let stats = runner
            .mine(&db, min_support, &mut sink, &mut degradation)
            .unwrap_or_else(|e| exit_for_mine_error(e));
        if let Err(e) = print_itemsets(&sink.into_sorted()) {
            exit_for_write_error(&e);
        }
        stats
    } else if needs_collection {
        let mut sink = CollectSink::new();
        let stats = runner
            .mine(&db, min_support, &mut sink, &mut degradation)
            .unwrap_or_else(|e| exit_for_mine_error(e));
        let all = sink.into_sorted();
        if let Some(conf) = opts.rules {
            let rules = RuleMiner::new(&all, db.len() as u64).rules_by_confidence(conf);
            let stdout = std::io::stdout();
            let mut out = std::io::BufWriter::new(stdout.lock());
            for r in &rules {
                if let Err(e) = writeln!(
                    out,
                    "{:?} => {:?}  support {}  confidence {:.3}  lift {:.3}",
                    r.antecedent, r.consequent, r.support, r.confidence, r.lift
                ) {
                    exit_for_write_error(&e);
                }
            }
            if let Err(e) = out.flush() {
                exit_for_write_error(&e);
            }
            eprintln!("{} rules", rules.len());
        } else if opts.closed {
            if let Err(e) = print_itemsets(&closed_itemsets(&all)) {
                exit_for_write_error(&e);
            }
        } else if opts.maximal {
            if let Err(e) = print_itemsets(&maximal_itemsets(&all)) {
                exit_for_write_error(&e);
            }
        }
        stats
    } else {
        let stdout = std::io::stdout();
        let mut sink =
            PrintSink { out: std::io::BufWriter::new(stdout.lock()), count: 0, err: None };
        let stats = runner
            .mine(&db, min_support, &mut sink, &mut degradation)
            .unwrap_or_else(|e| exit_for_mine_error(e));
        let flushed = sink.out.flush();
        if let Some(e) = sink.err {
            exit_for_write_error(&e);
        }
        if let Err(e) = flushed {
            exit_for_write_error(&e);
        }
        stats
    };
    let wall_nanos = run_started.elapsed().as_nanos() as u64;
    let samples = sampler.map(cfp_trace::MemSampler::stop).unwrap_or_default();
    if let Some(meter) = meter {
        meter.stop();
    }
    // Freeze the timeline before any export reads it; the tracks are
    // shared by the Chrome export, the flame export, and the profile
    // report's events summary.
    let tracks = if tracing {
        cfp_trace::events::set_capture(false);
        cfp_trace::events::drain()
    } else {
        Vec::new()
    };
    if let Some(path) = &opts.trace_out {
        let json = cfp_trace::chrome::chrome_trace(&tracks, &samples);
        if let Err(e) = std::fs::write(path, json.to_pretty()) {
            eprintln!("cannot write trace {path}: {e}");
            exit(1);
        }
        eprintln!("trace written to {path} ({} tracks)", tracks.len());
    }
    if let Some(path) = &opts.flame_out {
        if let Err(e) = std::fs::write(path, cfp_trace::flame::folded_stacks(&tracks)) {
            eprintln!("cannot write flamegraph stacks {path}: {e}");
            exit(1);
        }
        eprintln!("flamegraph stacks written to {path}");
    }

    if let Some(path) = &opts.image {
        if opts.algorithm != "cfp" {
            eprintln!("--image requires the cfp algorithm");
            exit(EXIT_USAGE);
        }
        let image = MiningImage::build(&db, min_support);
        if let Err(e) = image.save(path) {
            eprintln!("cannot save image {path}: {e}");
            exit(1);
        }
        eprintln!("image saved to {path}");
    }
    if opts.stats {
        report_stats(&stats, stats.itemsets);
        if profiling {
            report_trace_stats();
        }
    }
    let mut memstat_summary: Option<cfp_trace::MemSummary> = None;
    if let Some(path) = &opts.mem_report {
        let pool = mem_pool.as_ref().expect("pool exists whenever --mem-report is given");
        // FP-tree baselines for the compression table, built from the
        // same counts the CFP structures use.
        let recoder = cfp_core::ItemRecoder::scan(&db, min_support);
        let fp = cfp_fptree::FpTree::from_db(&db, &recoder);
        let b = cfp_fptree::analysis::baselines(&fp);
        drop(fp);
        let baselines = cfp_core::FpBaselineBytes {
            nodes: b.nodes,
            in_memory_bytes: b.in_memory_bytes,
            paper_bytes: b.paper_bytes,
            nonordfp_bytes: b.nonordfp_bytes,
        };
        let run = cfp_core::MemStatRun {
            dataset: &opts.input,
            algorithm: &opts.algorithm,
            threads: opts.threads.max(1) as u64,
        };
        match cfp_core::collect_memstat(&db, min_support, &run, pool, Some(baselines)) {
            Ok(report) => {
                memstat_summary = Some(report.summary());
                if let Err(e) = std::fs::write(path, report.to_json().to_pretty()) {
                    eprintln!("cannot write memory report {path}: {e}");
                    exit(1);
                }
                eprintln!("memory report written to {path}");
            }
            Err(e) => {
                eprintln!("cfp-mine: memory report failed: {e}");
                exit(e.exit_code());
            }
        }
    }
    if let Some(d) = degradation.as_ref().filter(|d| d.recovered) {
        let winner = d.rungs.last().map(|r| r.rung).unwrap_or("?");
        eprintln!(
            "recovered via {winner} after {} rung(s){}",
            d.rungs.len(),
            if d.final_partitions > 0 {
                format!(" ({} partitions)", d.final_partitions)
            } else {
                String::new()
            }
        );
    }
    if let Some(path) = &opts.profile {
        let mut report = cfp_trace::RunReport::capture(
            opts.input.clone(),
            db.len() as u64,
            min_support,
            opts.algorithm.clone(),
            opts.threads.max(1) as u64,
            stats.itemsets,
            wall_nanos,
            samples,
        );
        if opts.algorithm == "cfp" && opts.threads > 1 {
            report = report.with_schedule(opts.schedule.name());
        }
        // A supervised run that needed its ladder records what happened;
        // healthy runs keep the section absent so the schema stays
        // backward-compatible.
        if let Some(d) = degradation.as_ref().filter(|d| !d.rungs.is_empty()) {
            report = report.with_degradation(cfp_trace::DegradationReport {
                policy: d.policy.clone(),
                rungs: d
                    .rungs
                    .iter()
                    .map(|r| cfp_trace::RungOutcome {
                        rung: r.rung.to_string(),
                        succeeded: r.succeeded,
                        reclaimed_bytes: r.reclaimed_bytes,
                        partitions: r.partitions,
                        error: r.error.clone(),
                    })
                    .collect(),
                recovered: d.recovered,
                final_partitions: d.final_partitions,
            });
        }
        report = report.with_events(cfp_trace::events::summarize(&tracks));
        // Fold the memory summary in when --mem-report also ran, so
        // profile consumers can diff memory without the full document.
        if let Some(m) = memstat_summary.clone() {
            report = report.with_memstat(m);
        }
        if let Err(e) = std::fs::write(path, report.to_json().to_pretty()) {
            eprintln!("cannot write profile {path}: {e}");
            exit(1);
        }
        eprintln!("profile written to {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_bytes_accepts_suffixes() {
        assert_eq!(parse_bytes("4096"), Ok(4096));
        assert_eq!(parse_bytes("4k"), Ok(4096));
        assert_eq!(parse_bytes("64M"), Ok(64 << 20));
        assert_eq!(parse_bytes("2g"), Ok(2 << 30));
        assert!(parse_bytes("").is_err());
        assert!(parse_bytes("x").is_err());
        assert!(parse_bytes("12q").is_err());
        assert!(parse_bytes("99999999999999999999g").is_err());
    }

    #[test]
    fn parse_args_happy_path() {
        let o = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--threads",
            "4",
            "--mem-budget",
            "1m",
            "--skip-bad-lines",
        ]))
        .unwrap();
        assert_eq!(o.input, "in.dat");
        assert!(matches!(o.support, SupportSpec::Absolute(2)));
        assert_eq!(o.threads, 4);
        assert_eq!(o.mem_budget, Some(1 << 20));
        assert!(o.skip_bad_lines);
    }

    #[test]
    fn parse_args_reports_problems_instead_of_exiting() {
        assert!(parse_args(&args(&[])).unwrap_err().contains("no input"));
        assert!(parse_args(&args(&["in.dat"])).unwrap_err().contains("--support"));
        assert!(parse_args(&args(&["in.dat", "--support"])).unwrap_err().contains("missing value"));
        assert!(parse_args(&args(&["in.dat", "--support", "x"]))
            .unwrap_err()
            .contains("bad support"));
        assert!(parse_args(&args(&["in.dat", "--support", "2", "--bogus"]))
            .unwrap_err()
            .contains("unknown argument"));
        assert!(parse_args(&args(&["in.dat", "--support", "2", "--mem-budget", "huge"]))
            .unwrap_err()
            .contains("bad byte count"));
    }

    #[test]
    fn parse_args_schedule() {
        let o = parse_args(&args(&["in.dat", "--support", "2"])).unwrap();
        assert_eq!(o.schedule, Schedule::Dynamic);
        let o = parse_args(&args(&["in.dat", "--support", "2", "--schedule", "static"])).unwrap();
        assert_eq!(o.schedule, Schedule::Static);
        let o = parse_args(&args(&["in.dat", "--support", "2", "--schedule=dynamic"])).unwrap();
        assert_eq!(o.schedule, Schedule::Dynamic);
        assert!(parse_args(&args(&["in.dat", "--support", "2", "--schedule", "fifo"]))
            .unwrap_err()
            .contains("unknown schedule"));
    }

    #[test]
    fn parse_args_spill_flags() {
        let o = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--recover=spill",
            "--spill-dir",
            "/tmp/scratch",
        ]))
        .unwrap();
        assert_eq!(o.recover, RecoveryPolicy::Spill);
        assert_eq!(o.spill_dir.as_deref(), Some("/tmp/scratch"));

        // --spill-dir is meaningless outside the spill policy.
        let err =
            parse_args(&args(&["in.dat", "--support", "2", "--spill-dir", "/tmp/s"])).unwrap_err();
        assert!(err.contains("--recover=spill"), "{err}");
        let err = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--recover=partition",
            "--spill-dir",
            "/tmp/s",
        ]))
        .unwrap_err();
        assert!(err.contains("--recover=spill"), "{err}");

        // The policy list in the parse error names spill.
        let err =
            parse_args(&args(&["in.dat", "--support", "2", "--recover", "disk"])).unwrap_err();
        assert!(err.contains("spill"), "{err}");

        // --recover=spill applies to the cfp algorithm only.
        let o = parse_args(&args(&[
            "in.dat",
            "--support",
            "2",
            "--algorithm",
            "apriori",
            "--recover=spill",
        ]))
        .unwrap();
        assert!(runner_by_name(&o, None).is_err());
    }

    #[test]
    fn parse_args_relative_support() {
        let o = parse_args(&args(&["x.dat", "--support", "2.5%"])).unwrap();
        match o.support {
            SupportSpec::Relative(f) => assert!((f - 0.025).abs() < 1e-12),
            SupportSpec::Absolute(_) => panic!("expected relative"),
        }
    }
}
