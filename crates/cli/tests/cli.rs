//! End-to-end tests of the `cfp-mine` binary.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cfp-mine")
}

fn write_sample() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sample.dat");
    std::fs::write(&path, "1 2 5\n2 4\n2 3\n1 2 4\n1 3\n2 3\n1 3\n1 2 3 5\n1 2 3\n").unwrap();
    path
}

#[test]
fn mines_and_prints_fimi_output() {
    let path = write_sample();
    let out = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2"])
        .output()
        .expect("run cfp-mine");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The textbook example has 19 frequent itemsets at support 2.
    assert_eq!(stdout.lines().count(), 19, "{stdout}");
    assert!(stdout.lines().any(|l| l == "2 (7)"), "{stdout}");
    assert!(stdout.lines().any(|l| l == "1 2 5 (2)"), "{stdout}");
}

#[test]
fn count_mode_and_percentage_support() {
    let path = write_sample();
    let out = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "25%", "--count"])
        .output()
        .unwrap();
    assert!(out.status.success());
    // 25% of 9 rounds up to support 3.
    let count: u64 = String::from_utf8(out.stdout).unwrap().trim().parse().unwrap();
    assert!(count > 0);
}

#[test]
fn algorithms_agree() {
    let path = write_sample();
    let mut counts = Vec::new();
    for alg in ["cfp", "fp", "apriori", "eclat", "lcm", "nonordfp", "tiny", "fparray"] {
        let out = Command::new(bin())
            .args([path.to_str().unwrap(), "--support", "2", "--algorithm", alg, "--count"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{alg}: {}", String::from_utf8_lossy(&out.stderr));
        counts.push(String::from_utf8(out.stdout).unwrap().trim().to_string());
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn top_k_orders_by_support() {
    let path = write_sample();
    let out = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2", "--top", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let supports: Vec<u64> = stdout
        .lines()
        .map(|l| {
            l.rsplit_once('(')
                .and_then(|(_, s)| s.trim_end_matches(')').parse().ok())
                .unwrap()
        })
        .collect();
    assert_eq!(supports.len(), 3);
    assert!(supports.windows(2).all(|w| w[0] >= w[1]), "{supports:?}");
}

#[test]
fn rules_and_condensed_modes_run() {
    let path = write_sample();
    for extra in [&["--rules", "0.6"][..], &["--closed"][..], &["--maximal"][..]] {
        let mut args = vec![path.to_str().unwrap(), "--support", "2"];
        args.extend_from_slice(extra);
        let out = Command::new(bin()).args(&args).output().unwrap();
        assert!(out.status.success(), "{extra:?}");
        assert!(!out.stdout.is_empty(), "{extra:?} produced no output");
    }
}

#[test]
fn image_round_trip_via_cli() {
    let path = write_sample();
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    let image = dir.join("sample.cfpi");
    let out = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "2",
            "--count",
            "--image",
            image.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(image.exists());
    std::fs::remove_file(&image).ok();
}

#[test]
fn missing_input_fails_cleanly() {
    let out = Command::new(bin())
        .args(["/nonexistent.dat", "--support", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
