//! End-to-end tests of the `cfp-mine` binary.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cfp-mine")
}

fn write_sample() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sample.dat");
    std::fs::write(&path, "1 2 5\n2 4\n2 3\n1 2 4\n1 3\n2 3\n1 3\n1 2 3 5\n1 2 3\n").unwrap();
    path
}

#[test]
fn mines_and_prints_fimi_output() {
    let path = write_sample();
    let out = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2"])
        .output()
        .expect("run cfp-mine");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The textbook example has 13 frequent itemsets at support 2:
    // 5 singletons, 6 pairs, and the triples {1,2,3} and {1,2,5}.
    assert_eq!(stdout.lines().count(), 13, "{stdout}");
    assert!(stdout.lines().any(|l| l == "2 (7)"), "{stdout}");
    assert!(stdout.lines().any(|l| l == "1 2 5 (2)"), "{stdout}");
}

#[test]
fn count_mode_and_percentage_support() {
    let path = write_sample();
    let out = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "25%", "--count"])
        .output()
        .unwrap();
    assert!(out.status.success());
    // 25% of 9 rounds up to support 3.
    let count: u64 = String::from_utf8(out.stdout).unwrap().trim().parse().unwrap();
    assert!(count > 0);
}

#[test]
fn algorithms_agree() {
    let path = write_sample();
    let mut counts = Vec::new();
    for alg in ["cfp", "fp", "apriori", "eclat", "lcm", "nonordfp", "tiny", "fparray"] {
        let out = Command::new(bin())
            .args([path.to_str().unwrap(), "--support", "2", "--algorithm", alg, "--count"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{alg}: {}", String::from_utf8_lossy(&out.stderr));
        counts.push(String::from_utf8(out.stdout).unwrap().trim().to_string());
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

/// The dynamic schedule's determinism contract, end to end: a parallel
/// run must print byte-for-byte what the sequential run prints, with no
/// sorting anywhere. The static schedule only promises the same multiset
/// of lines.
#[test]
fn dynamic_schedule_output_is_byte_identical_to_sequential() {
    let path = write_sample();
    let sequential = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2", "--threads", "1"])
        .output()
        .unwrap();
    assert!(sequential.status.success());
    for threads in ["2", "4"] {
        let parallel = Command::new(bin())
            .args([
                path.to_str().unwrap(),
                "--support",
                "2",
                "--threads",
                threads,
                "--schedule",
                "dynamic",
            ])
            .output()
            .unwrap();
        assert!(parallel.status.success(), "{}", String::from_utf8_lossy(&parallel.stderr));
        assert_eq!(parallel.stdout, sequential.stdout, "--threads {threads} diverged");
    }
    // Static still yields the same itemsets, just in worker-race order.
    let stat = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2", "--threads", "4", "--schedule=static"])
        .output()
        .unwrap();
    assert!(stat.status.success(), "{}", String::from_utf8_lossy(&stat.stderr));
    let sorted = |bytes: &[u8]| {
        let mut lines: Vec<String> =
            String::from_utf8_lossy(bytes).lines().map(str::to_string).collect();
        lines.sort();
        lines
    };
    assert_eq!(sorted(&stat.stdout), sorted(&sequential.stdout));
}

#[test]
fn bad_schedule_exits_2_with_usage_text() {
    let out = Command::new(bin())
        .args(["sample.dat", "--support", "2", "--schedule", "fifo"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown schedule"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn top_k_orders_by_support() {
    let path = write_sample();
    let out = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2", "--top", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let supports: Vec<u64> = stdout
        .lines()
        .map(|l| {
            l.rsplit_once('(').and_then(|(_, s)| s.trim_end_matches(')').parse().ok()).unwrap()
        })
        .collect();
    assert_eq!(supports.len(), 3);
    assert!(supports.windows(2).all(|w| w[0] >= w[1]), "{supports:?}");
}

#[test]
fn rules_and_condensed_modes_run() {
    let path = write_sample();
    for extra in [&["--rules", "0.6"][..], &["--closed"][..], &["--maximal"][..]] {
        let mut args = vec![path.to_str().unwrap(), "--support", "2"];
        args.extend_from_slice(extra);
        let out = Command::new(bin()).args(&args).output().unwrap();
        assert!(out.status.success(), "{extra:?}");
        assert!(!out.stdout.is_empty(), "{extra:?} produced no output");
    }
}

/// Malformed `--output` values are usage errors: exit 2, a diagnostic
/// naming the output mode, and the usage text.
#[test]
fn bad_output_mode_exits_2_with_usage_text() {
    for bad in ["topk:0", "topk:x", "topk:", "frequent"] {
        let out = Command::new(bin())
            .args(["sample.dat", "--support", "2", "--output", bad])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{bad}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("output mode"), "{bad}: {stderr}");
        assert!(stderr.contains("usage:"), "{bad}: {stderr}");
    }
}

/// The engine's condensed modes agree with the post-hoc baseline path
/// end to end, the legacy flags alias onto the engine (byte-identical
/// commands), and each mode is byte-identical across the dynamic
/// schedule's thread counts and set-identical under the static
/// schedule. Top-k output is byte-identical everywhere (it drains in
/// one deterministic sorted order).
#[test]
fn output_modes_are_deterministic_across_schedules_and_threads() {
    let path = write_skewed();
    let p = path.to_str().unwrap();
    let sorted = |bytes: &[u8]| {
        let mut lines: Vec<String> =
            String::from_utf8_lossy(bytes).lines().map(str::to_string).collect();
        lines.sort();
        lines
    };
    let run = |extra: &[&str]| {
        let mut args = vec![p, "--support", "20"];
        args.extend_from_slice(extra);
        let out = Command::new(bin()).args(&args).output().unwrap();
        assert!(out.status.success(), "{extra:?}: {}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };

    let full = run(&[]);
    for (mode, legacy) in [
        ("closed", &["--closed"][..]),
        ("maximal", &["--maximal"][..]),
        ("topk:25", &["--top", "25"][..]),
    ] {
        let output = format!("--output={mode}");
        let seq = run(&[&output]);
        assert_ne!(seq, full, "{mode} must actually condense the skewed dataset");
        assert_eq!(run(legacy), seq, "legacy {legacy:?} must alias --output={mode}");
        // The post-hoc oracle on a baseline algorithm yields the same set.
        let oracle = if mode == "topk:25" {
            run(&["--algorithm=lcm", "--top", "25"])
        } else {
            run(&["--algorithm=lcm", &format!("--{mode}")])
        };
        assert_eq!(sorted(&seq), sorted(&oracle), "{mode} diverges from the post-hoc oracle");

        for threads in ["2", "4"] {
            let par = run(&[&output, "--threads", threads, "--schedule=dynamic"]);
            assert_eq!(par, seq, "{mode} dynamic x{threads} is not byte-identical");
        }
        let stat = run(&[&output, "--threads", "4", "--schedule=static"]);
        if mode == "topk:25" {
            assert_eq!(stat, seq, "top-k static must drain in the same order");
        } else {
            assert_eq!(sorted(&stat), sorted(&seq), "{mode} static x4 set diverged");
        }
    }

    // topk:N returns exactly N lines when the full set is larger.
    let top = run(&["--output=topk:25"]);
    assert_eq!(String::from_utf8_lossy(&top).lines().count(), 25);
}

/// Condensed output survives the recovery ladder: with a budget that
/// kills the monolithic build, `--recover=spill` must still produce
/// exactly the unconstrained condensed set.
#[test]
fn condensed_output_under_spill_recovery_matches_unconstrained() {
    let path = write_sample();
    let db = cfp_core::TransactionDb::from_rows(&[
        vec![1, 2, 5],
        vec![2, 4],
        vec![2, 3],
        vec![1, 2, 4],
        vec![1, 3],
        vec![2, 3],
        vec![1, 3],
        vec![1, 2, 3, 5],
        vec![1, 2, 3],
    ]);
    let budget = (cfp_core::build_tree(&db, 2).1.arena_footprint() - 10).to_string();
    let sorted = |bytes: &[u8]| {
        let mut lines: Vec<String> =
            String::from_utf8_lossy(bytes).lines().map(str::to_string).collect();
        lines.sort();
        lines
    };
    for mode in ["closed", "maximal", "topk:4"] {
        let output = format!("--output={mode}");
        let plain = Command::new(bin())
            .args([path.to_str().unwrap(), "--support", "2", &output])
            .output()
            .unwrap();
        assert!(plain.status.success(), "{mode}: {}", String::from_utf8_lossy(&plain.stderr));
        let recovered = Command::new(bin())
            .args([
                path.to_str().unwrap(),
                "--support",
                "2",
                &output,
                "--mem-budget",
                &budget,
                "--recover=spill",
            ])
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&recovered.stderr);
        assert_eq!(recovered.status.code(), Some(0), "{mode}: {stderr}");
        assert!(stderr.contains("recovered via"), "{mode}: {stderr}");
        assert_eq!(
            sorted(&recovered.stdout),
            sorted(&plain.stdout),
            "{mode}: recovery changed the condensed set"
        );
    }
}

#[test]
fn image_round_trip_via_cli() {
    let path = write_sample();
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    let image = dir.join("sample.cfpi");
    let out = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "2",
            "--count",
            "--image",
            image.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(image.exists());
    std::fs::remove_file(&image).ok();
}

/// Arming the live-telemetry surfaces must not change a single output
/// byte: `--metrics-out` + `--blackbox` together, sequentially and on 4
/// threads, against bare runs. A clean run must also leave no blackbox
/// dump behind, while the metrics files must exist and carry their
/// schemas.
#[test]
fn metrics_and_blackbox_leave_output_byte_identical() {
    let path = write_sample();
    let dir = std::env::temp_dir().join(format!("cfp_cli_telemetry_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("metrics.prom");
    let blackbox = dir.join("bb");
    for threads in ["1", "4"] {
        let bare = Command::new(bin())
            .args([path.to_str().unwrap(), "--support", "2", "--threads", threads])
            .output()
            .unwrap();
        assert!(bare.status.success(), "{}", String::from_utf8_lossy(&bare.stderr));
        let armed = Command::new(bin())
            .args([
                path.to_str().unwrap(),
                "--support",
                "2",
                "--threads",
                threads,
                "--metrics-out",
                metrics.to_str().unwrap(),
                "--metrics-every",
                "50ms",
                "--blackbox",
                blackbox.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(armed.status.success(), "{}", String::from_utf8_lossy(&armed.stderr));
        assert_eq!(armed.stdout, bare.stdout, "--threads {threads} output diverged when armed");
    }
    assert!(!blackbox.join("blackbox.json").exists(), "clean run must not leave a blackbox dump");
    let prom = std::fs::read_to_string(&metrics).unwrap();
    assert!(prom.contains("cfp_run_info"), "{prom}");
    let jsonl = std::fs::read_to_string(dir.join("metrics.prom.jsonl")).unwrap();
    let last = jsonl.lines().last().expect("at least one JSONL record");
    assert!(last.contains("\"schema\":\"cfp-metrics/1\""), "{last}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Golden test for the machine-readable run report: `--profile` must emit
/// a valid `cfp-profile/2` document whose structure downstream tooling can
/// rely on. Parsed with the same zero-dependency parser shipped in
/// `cfp-trace`, so writer and reader are exercised together.
#[test]
fn profile_report_is_valid_and_complete() {
    use cfp_trace::{json, Json};

    let path = write_sample();
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    let report_path = dir.join("profile.json");
    let out = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "2",
            "--count",
            "--profile",
            report_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&report_path).unwrap();
    let doc = json::parse(&text).expect("profile must be valid JSON");

    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("cfp-profile/2"));

    let run = doc.get("run").expect("run object");
    assert_eq!(run.get("transactions").and_then(Json::as_u64), Some(9));
    assert_eq!(run.get("support").and_then(Json::as_u64), Some(2));
    assert_eq!(run.get("algorithm").and_then(Json::as_str), Some("cfp"));
    assert_eq!(run.get("itemsets").and_then(Json::as_u64), Some(13));
    let wall = run.get("wall_nanos").and_then(Json::as_u64).unwrap();
    assert!(wall > 0);

    // All pipeline phases present, in order. The five classic phases are
    // each entered exactly once on a healthy run; the recover and spill
    // phases exist in the schema but stay unentered. Their summed wall time
    // fits inside the end-to-end wall time.
    let phases = doc.get("phases").and_then(Json::as_arr).expect("phases");
    let names: Vec<&str> = phases.iter().filter_map(|p| p.get("name")?.as_str()).collect();
    assert_eq!(names, ["read", "count", "build", "convert", "mine", "recover", "spill"]);
    let mut phase_sum = 0;
    for p in phases {
        let name = p.get("name").and_then(Json::as_str).unwrap();
        let expected = if matches!(name, "recover" | "spill") { 0 } else { 1 };
        assert_eq!(p.get("count").and_then(Json::as_u64), Some(expected), "{p:?}");
        let nanos = p.get("nanos").and_then(Json::as_u64).unwrap();
        assert_eq!(nanos > 0, expected > 0, "{p:?}");
        phase_sum += nanos;
    }
    assert!(phase_sum <= wall, "phases ({phase_sum}) exceed wall time ({wall})");
    // A healthy run must not carry a degradation section.
    assert!(doc.get("degradation").is_none(), "healthy run grew a degradation section");

    // The counters that must be non-zero for any CFP run on this dataset.
    let counters = doc.get("counters").expect("counters object");
    for name in [
        "memman.allocs",
        "memman.bump_allocs",
        "tree.standard_nodes",
        "array.conversions",
        "core.conditional_trees",
        "core.patterns_emitted",
    ] {
        let v = counters.get(name).and_then(Json::as_u64).unwrap_or_else(|| {
            panic!("counter {name} missing");
        });
        assert!(v > 0, "counter {name} is zero");
    }
    assert_eq!(counters.get("core.patterns_emitted").and_then(Json::as_u64), Some(13));

    // Memory section: peak dominates final, and the time series has the
    // guaranteed start and stop samples.
    let memory = doc.get("memory").expect("memory object");
    let peak = memory.get("peak_bytes").and_then(Json::as_u64).unwrap();
    let final_bytes = memory.get("final_bytes").and_then(Json::as_u64).unwrap();
    assert!(peak >= final_bytes);
    assert!(peak > 0, "MemGauge mirror never recorded");
    let samples = memory.get("samples").and_then(Json::as_arr).unwrap();
    assert!(samples.len() >= 2, "need at least start+stop samples");
    for s in samples {
        for field in ["at_ms", "mem_current", "mem_peak", "arena_used", "arena_footprint"] {
            assert!(s.get(field).and_then(Json::as_u64).is_some(), "{field} missing");
        }
    }

    // /2 addition: the events summary block. Without `--trace-out` the
    // timeline is not captured, so it reports an empty capture rather
    // than being absent.
    let events = doc.get("events").expect("cfp-profile/2 carries an events block");
    assert_eq!(events.get("tracks").and_then(Json::as_u64), Some(0));
    assert_eq!(events.get("recorded").and_then(Json::as_u64), Some(0));
    assert_eq!(events.get("dropped_events").and_then(Json::as_u64), Some(0));

    std::fs::remove_file(&report_path).ok();
}

/// A deterministic skewed dataset (geometric-ish item frequencies): the
/// head items appear in almost every row, the tail rarely. The cost
/// imbalance across first-level items is what makes the dynamic scheduler
/// steal, so the timeline tests below can demand steal events.
fn write_skewed() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("skewed.dat");
    let mut state: u64 = 0x243F_6A88_85A3_08D3;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let mut text = String::new();
    for _ in 0..2000 {
        let mut row = Vec::new();
        for i in 0..48u32 {
            if next() < 0.9 / (i as f64 + 1.0) {
                row.push(i.to_string());
            }
        }
        if !row.is_empty() {
            text.push_str(&row.join(" "));
            text.push('\n');
        }
    }
    std::fs::write(&path, text).unwrap();
    path
}

/// The tentpole e2e: `--trace-out` must produce Chrome trace-event JSON
/// that the in-repo parser accepts, with one named track per worker
/// (each carrying at least one event), steal instants on a skewed
/// dataset, recursion slices, and counter tracks from the memory
/// sampler.
#[test]
fn trace_out_is_a_valid_chrome_trace_with_per_worker_tracks() {
    use cfp_trace::{json, Json};

    let path = write_skewed();
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    let trace_path = dir.join("timeline.json");
    let out = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "20",
            "--threads",
            "4",
            "--count",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let doc = json::parse(&text).expect("trace must be valid JSON");
    let events = doc.as_arr().expect("array-of-events form");

    // One thread_name metadata record per track; every worker is named.
    let mut tid_by_name = std::collections::HashMap::new();
    for e in events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("M")) {
        let name = e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str).unwrap();
        let tid = e.get("tid").and_then(Json::as_u64).unwrap();
        tid_by_name.insert(name.to_string(), tid);
    }
    for worker in ["worker-0", "worker-1", "worker-2", "worker-3"] {
        let tid = *tid_by_name.get(worker).unwrap_or_else(|| panic!("missing track {worker}"));
        let on_track = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) != Some("M")
                    && e.get("tid").and_then(Json::as_u64) == Some(tid)
            })
            .count();
        assert!(on_track >= 1, "track {worker} carries no events");
    }

    let name_count = |name: &str| {
        events.iter().filter(|e| e.get("name").and_then(Json::as_str) == Some(name)).count()
    };
    assert!(name_count("steal") > 0, "skewed data must produce steal instants");
    assert!(
        events.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("X")
            && e.get("cat").and_then(Json::as_str) == Some("mine")),
        "recursion slices missing"
    );
    // Counter tracks mirrored from the memory sampler series.
    assert!(
        events.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("C")
            && e.get("name").and_then(Json::as_str) == Some("mem.peak_bytes")),
        "counter tracks missing"
    );
    std::fs::remove_file(&trace_path).ok();
}

/// Recovery rung transitions land on the timeline: a budget too small
/// for the monolithic tree under `--recover=partition` emits `rung`
/// instants for each attempted rung.
#[test]
fn recovery_rungs_appear_on_the_event_timeline() {
    use cfp_trace::{json, Json};

    let path = write_sample();
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    let trace_path = dir.join("recovery_timeline.json");
    let db = cfp_core::TransactionDb::from_rows(&[
        vec![1, 2, 5],
        vec![2, 4],
        vec![2, 3],
        vec![1, 2, 4],
        vec![1, 3],
        vec![2, 3],
        vec![1, 3],
        vec![1, 2, 3, 5],
        vec![1, 2, 3],
    ]);
    let budget = (cfp_core::build_tree(&db, 2).1.arena_footprint() - 10).to_string();
    let out = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "2",
            "--count",
            "--mem-budget",
            &budget,
            "--recover=partition",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let doc = json::parse(&text).expect("trace must be valid JSON");
    let rungs: Vec<&str> = doc
        .as_arr()
        .unwrap()
        .iter()
        .filter(|e| e.get("cat").and_then(Json::as_str) == Some("recover"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(rungs, ["rung retry", "rung partition"], "threads=1 skips the degrade rung");
    std::fs::remove_file(&trace_path).ok();
}

/// `--flame-out` writes folded stacks: `mine;i<a>;i<b> <self-nanos>`
/// lines, sorted, with at least one nested path on a dataset this dense.
#[test]
fn flame_out_folded_stacks_are_well_formed() {
    let path = write_skewed();
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    let flame_path = dir.join("stacks.folded");
    let out = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "20",
            "--threads",
            "2",
            "--count",
            "--flame-out",
            flame_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&flame_path).unwrap();
    assert!(!text.is_empty(), "flame output is empty");
    for line in text.lines() {
        let (stack, nanos) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line {line:?}"));
        assert!(stack.starts_with("mine"), "{line:?}");
        nanos.parse::<u64>().unwrap_or_else(|_| panic!("bad self-time in {line:?}"));
    }
    assert!(text.lines().any(|l| l.contains(';')), "no nested stacks in:\n{text}");
    std::fs::remove_file(&flame_path).ok();
}

/// The observability bargain: turning everything on (timeline capture,
/// flame export, progress meter, profiling) must not change the mining
/// output by a single byte.
#[test]
fn mining_output_is_byte_identical_with_tracing_on() {
    let path = write_skewed();
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    let plain = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "20", "--threads", "4"])
        .output()
        .unwrap();
    assert!(plain.status.success());
    let traced = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "20",
            "--threads",
            "4",
            "--trace-out",
            dir.join("ident_trace.json").to_str().unwrap(),
            "--flame-out",
            dir.join("ident_stacks.folded").to_str().unwrap(),
            "--profile",
            dir.join("ident_profile.json").to_str().unwrap(),
            "--progress",
        ])
        .output()
        .unwrap();
    assert!(traced.status.success(), "{}", String::from_utf8_lossy(&traced.stderr));
    assert_eq!(traced.stdout, plain.stdout, "tracing changed the mining output");
    for f in ["ident_trace.json", "ident_stacks.folded", "ident_profile.json"] {
        std::fs::remove_file(dir.join(f)).ok();
    }
}

#[test]
fn missing_input_fails_cleanly() {
    let out = Command::new(bin()).args(["/nonexistent.dat", "--support", "2"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn bad_usage_exits_2_with_usage_text() {
    for args in [
        &[][..],
        &["--support", "2"][..], // no input
        &["sample.dat"][..],     // no support
        &["sample.dat", "--support", "2", "--bogus"][..],
        &["sample.dat", "--support", "2", "--mem-budget", "lots"][..],
    ] {
        let out = Command::new(bin()).args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{args:?}: {stderr}");
        assert!(out.stdout.is_empty(), "{args:?} wrote to stdout");
    }
    // An unknown algorithm is only detected after the input is read.
    let path = write_sample();
    let out = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2", "--algorithm", "quantum"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown algorithm"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

/// A downstream consumer closing the pipe early (`cfp-mine ... | head`)
/// is not an error: the process must exit 0 without a panic message.
#[test]
fn broken_pipe_exits_zero_and_quiet() {
    use std::io::Read;
    use std::process::Stdio;

    // One 16-item transaction at support 1 yields 2^16 - 1 = 65535
    // itemsets — several megabytes of output, far beyond the 64 KiB pipe
    // buffer, so the miner is guaranteed to hit EPIPE after we hang up.
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wide.dat");
    let row: Vec<String> = (1..=16).map(|i| i.to_string()).collect();
    std::fs::write(&path, format!("{}\n", row.join(" "))).unwrap();

    let mut child = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // Read a token amount, then hang up while the miner is still writing.
    let mut stdout = child.stdout.take().unwrap();
    let mut first = [0u8; 64];
    stdout.read_exact(&mut first).unwrap();
    drop(stdout);
    let out = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    assert!(!stderr.contains("panic"), "{stderr}");
}

#[test]
fn tiny_mem_budget_exits_4_naming_the_build_phase() {
    let path = write_sample();
    for threads in ["1", "4"] {
        let out = Command::new(bin())
            .args([
                path.to_str().unwrap(),
                "--support",
                "2",
                "--mem-budget",
                "16",
                "--threads",
                threads,
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(4), "{threads} threads");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("memory exhausted"), "{stderr}");
        assert!(stderr.contains("build"), "diagnostic must name the phase: {stderr}");
    }
}

#[test]
fn generous_mem_budget_mines_normally() {
    let path = write_sample();
    let out = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2", "--mem-budget", "1g", "--count"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "13");
}

#[test]
fn mem_budget_below_arena_floor_exits_2() {
    let path = write_sample();
    let out = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2", "--mem-budget", "4"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("below the arena's minimum carve"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

/// `--recover=off` must be indistinguishable from not asking for recovery
/// at all: same exit code, byte-for-byte identical stderr. Scripts keying
/// off the PR 2 failure contract keep working.
#[test]
fn recover_off_reproduces_the_plain_failure_byte_for_byte() {
    let path = write_sample();
    let plain = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2", "--mem-budget", "16"])
        .output()
        .unwrap();
    let off = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2", "--mem-budget", "16", "--recover=off"])
        .output()
        .unwrap();
    assert_eq!(plain.status.code(), Some(4));
    assert_eq!(off.status.code(), Some(4));
    assert_eq!(plain.stderr, off.stderr, "stderr must match byte for byte");
    assert_eq!(plain.stdout, off.stdout);
}

/// The tentpole e2e: a budget too small for the monolithic tree, mined to
/// completion under `--recover=partition`, must produce exactly the output
/// of an unconstrained run (order-normalized) and record the degradation
/// in the profile report.
#[test]
fn partitioned_recovery_matches_unconstrained_output() {
    use cfp_trace::{json, Json};

    let path = write_sample();
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    let report_path = dir.join("degraded.json");

    // Learn the monolithic tree's charge from the same rows the file
    // holds, then budget just below it: build must fail, partitions fit.
    let db = cfp_core::TransactionDb::from_rows(&[
        vec![1, 2, 5],
        vec![2, 4],
        vec![2, 3],
        vec![1, 2, 4],
        vec![1, 3],
        vec![2, 3],
        vec![1, 3],
        vec![1, 2, 3, 5],
        vec![1, 2, 3],
    ]);
    let budget = (cfp_core::build_tree(&db, 2).1.arena_footprint() - 10).to_string();

    let baseline =
        Command::new(bin()).args([path.to_str().unwrap(), "--support", "2"]).output().unwrap();
    assert!(baseline.status.success());

    let degraded = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "2",
            "--mem-budget",
            &budget,
            "--recover=partition",
            "--profile",
            report_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&degraded.stderr);
    assert_eq!(degraded.status.code(), Some(0), "{stderr}");
    assert!(stderr.contains("recovered via partition"), "{stderr}");

    let sorted = |bytes: &[u8]| {
        let mut lines: Vec<String> =
            String::from_utf8_lossy(bytes).lines().map(str::to_string).collect();
        lines.sort();
        lines
    };
    assert_eq!(sorted(&degraded.stdout), sorted(&baseline.stdout));

    // The profile must carry the degradation section: which rungs ran,
    // that the run recovered, and how many partitions the fallback used.
    let text = std::fs::read_to_string(&report_path).unwrap();
    let doc = json::parse(&text).expect("profile must be valid JSON");
    let deg = doc.get("degradation").expect("degradation section");
    assert_eq!(deg.get("policy").and_then(Json::as_str), Some("partition"));
    assert_eq!(deg.get("recovered"), Some(&Json::Bool(true)));
    let partitions = deg.get("final_partitions").and_then(Json::as_u64).unwrap();
    assert!(partitions >= 2, "expected a real split, got {partitions}");
    let rungs = deg.get("rungs").and_then(Json::as_arr).expect("rungs array");
    let names: Vec<&str> = rungs.iter().filter_map(|r| r.get("rung")?.as_str()).collect();
    assert_eq!(names, ["retry", "partition"], "threads=1 skips the degrade rung");
    let last = rungs.last().unwrap();
    assert_eq!(last.get("succeeded"), Some(&Json::Bool(true)));

    std::fs::remove_file(&report_path).ok();
}

fn write_damaged_sample() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("damaged.dat");
    std::fs::write(&path, "1 2\n1 4294967296 2\n1 2\n").unwrap();
    path
}

#[test]
fn malformed_input_exits_3_citing_the_line() {
    let path = write_damaged_sample();
    let out =
        Command::new(bin()).args([path.to_str().unwrap(), "--support", "1"]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
    assert!(stderr.contains("4294967296"), "{stderr}");
}

#[test]
fn skip_bad_lines_mines_the_rest_and_warns() {
    let path = write_damaged_sample();
    let out = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2", "--skip-bad-lines", "--count"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("skipped 1 malformed line"), "{stderr}");
    // The two surviving transactions are both {1, 2}: itemsets 1, 2, 1 2.
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
}

/// `--mem-report` is observational: the mining output must be
/// byte-identical with the flag on, sequentially and in parallel.
#[test]
fn mining_output_is_byte_identical_with_mem_report_on() {
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    for (path, threads, report) in
        [(write_sample(), "1", "memstat_seq.json"), (write_skewed(), "4", "memstat_par.json")]
    {
        let support = if threads == "1" { "2" } else { "20" };
        let plain = Command::new(bin())
            .args([path.to_str().unwrap(), "--support", support, "--threads", threads])
            .output()
            .unwrap();
        assert!(plain.status.success());
        let reported = Command::new(bin())
            .args([
                path.to_str().unwrap(),
                "--support",
                support,
                "--threads",
                threads,
                "--mem-report",
                dir.join(report).to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(reported.status.success(), "{}", String::from_utf8_lossy(&reported.stderr));
        assert_eq!(
            reported.stdout, plain.stdout,
            "--mem-report changed output ({threads} threads)"
        );
        std::fs::remove_file(dir.join(report)).ok();
    }
}

/// The memstat document itself: valid JSON, a reconciled audit, the
/// paper-shaped compression claim, an exact savings ladder, and the
/// mine-phase distributions all present.
#[test]
fn mem_report_is_valid_and_audit_reconciles() {
    use cfp_trace::{json, Json};

    let path = write_sample();
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    let report_path = dir.join("memstat_full.json");
    let profile_path = dir.join("memstat_profile.json");
    let out = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "2",
            "--count",
            "--mem-report",
            report_path.to_str().unwrap(),
            "--profile",
            profile_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&report_path).unwrap();
    let doc = json::parse(&text).expect("memstat must be valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("cfp-memstat/1"));

    // Audit: the per-component identity holds exactly and the arena
    // capacity sits within the documented slack bound.
    let audit = doc.get("audit").expect("audit section");
    assert_eq!(audit.get("reconciled"), Some(&Json::Bool(true)), "{audit:?}");
    assert_eq!(audit.get("within_slack"), Some(&Json::Bool(true)), "{audit:?}");
    assert_eq!(
        audit.get("components_total").and_then(Json::as_u64),
        audit.get("accounted").and_then(Json::as_u64),
    );
    // RSS is informational but present on Linux.
    #[cfg(target_os = "linux")]
    assert!(audit.get("rss_bytes").and_then(Json::as_u64).unwrap_or(0) > 0);

    // Attribution: the mining run charged the build-tree and
    // cond-arrays components; nothing is live after the run.
    let attribution = doc.get("attribution").expect("attribution section");
    let components = attribution.get("components").and_then(Json::as_arr).unwrap();
    let peak_of = |name: &str| {
        components
            .iter()
            .find(|c| c.get("component").and_then(Json::as_str) == Some(name))
            .and_then(|c| c.get("peak"))
            .and_then(Json::as_u64)
            .unwrap()
    };
    assert!(peak_of("build-tree") > 0);
    assert!(peak_of("cond-arrays") > 0);

    // Compression: the CFP-tree beats the FP-tree built from the same
    // counts — the paper's claim, measured.
    let compression = doc.get("compression").and_then(Json::as_arr).unwrap();
    let bytes_of = |name: &str| {
        compression
            .iter()
            .find(|r| r.get("representation").and_then(Json::as_str) == Some(name))
            .and_then(|r| r.get("bytes"))
            .and_then(Json::as_u64)
            .unwrap()
    };
    assert!(bytes_of("cfp-tree") < bytes_of("fp-tree"), "{compression:?}");

    // Savings ladder: itemized and exact.
    let savings = doc.get("savings").expect("savings section");
    assert_eq!(savings.get("identity-residual").and_then(Json::as_f64), Some(0.0), "{savings:?}");
    assert!(savings.get("ptr40").and_then(Json::as_f64).unwrap() > 0.0);

    // Distributions recorded during the traced mine phase.
    let dist = doc.get("distributions").expect("distributions section");
    let count = dist.get("cond_tree_bytes").and_then(|d| d.get("count")).and_then(Json::as_u64);
    assert!(count.unwrap() > 0, "{dist:?}");

    // And the profile folded the summary in.
    let profile = json::parse(&std::fs::read_to_string(&profile_path).unwrap()).unwrap();
    let memstat = profile.get("memstat").expect("profile carries the memstat summary");
    assert_eq!(memstat.get("reconciled"), Some(&Json::Bool(true)));
    assert!(memstat.get("pool_peak").and_then(Json::as_u64).unwrap() > 0);

    std::fs::remove_file(&report_path).ok();
    std::fs::remove_file(&profile_path).ok();
}

/// A per-test scratch area for checkpoint state, cleaned before use so
/// stale manifests from a failed earlier run cannot leak in.
fn ckpt_scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cfp_cli_ckpt_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Checkpointing is free when nothing interrupts: the output matches a
/// plain run byte for byte, the manifest is cleared on completion, and
/// no temp files are left behind.
#[test]
fn checkpointed_run_matches_plain_output_and_clears_its_manifest() {
    let path = write_skewed();
    let scratch = ckpt_scratch("clean");
    let ck = scratch.join("ck");
    let plain = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "20", "--threads", "4"])
        .output()
        .unwrap();
    assert!(plain.status.success());
    let checked = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "20",
            "--threads",
            "4",
            "--checkpoint-dir",
            ck.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(checked.status.success(), "{}", String::from_utf8_lossy(&checked.stderr));
    assert_eq!(checked.stdout, plain.stdout, "checkpointing changed the mining output");
    assert!(!ck.join("ckpt.json").exists(), "completed run must clear its manifest");
    for entry in std::fs::read_dir(&ck).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        assert!(!name.ends_with(".tmp"), "stray temp file {name}");
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

/// The deadline interrupt–resume loop: repeatedly run with a small
/// wall-clock budget, appending each segment's stdout to one file, until
/// a segment completes. The assembled file must be byte-identical to an
/// uninterrupted run — the tentpole's exactness contract, end to end.
#[test]
fn deadline_interrupt_resume_loop_reproduces_the_uninterrupted_stream() {
    use std::process::Stdio;

    let path = write_skewed();
    let scratch = ckpt_scratch("deadline");
    let ck = scratch.join("ck");
    let assembled = scratch.join("assembled.out");

    let full = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "20", "--checkpoint-dir", ck.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(full.status.success(), "{}", String::from_utf8_lossy(&full.stderr));

    let mut deadline = 0.01f64;
    let mut interrupted = 0u32;
    for round in 0.. {
        assert!(round < 40, "resume loop did not converge");
        let out_file =
            std::fs::OpenOptions::new().create(true).append(true).open(&assembled).unwrap();
        let out = Command::new(bin())
            .args([
                path.to_str().unwrap(),
                "--support",
                "20",
                "--checkpoint-dir",
                ck.to_str().unwrap(),
                "--checkpoint-every",
                "1",
                "--resume",
                "--deadline",
                &format!("{deadline}"),
            ])
            .stdout(Stdio::from(out_file))
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        match out.status.code() {
            Some(0) => break,
            Some(8) => {
                interrupted += 1;
                // A graceful exit 8 leaves the output exactly at the
                // committed watermark: file length == manifest
                // output_bytes (cumulative across segments).
                if ck.join("ckpt.json").exists() {
                    use cfp_trace::{json, Json};
                    let doc = json::parse(&std::fs::read_to_string(ck.join("ckpt.json")).unwrap())
                        .unwrap();
                    assert_eq!(doc.get("format").and_then(Json::as_str), Some("cfp-ckpt/1"));
                    let watermark = doc.get("output_bytes").and_then(Json::as_u64).unwrap();
                    let len = std::fs::metadata(&assembled).unwrap().len();
                    assert_eq!(len, watermark, "graceful stop must flush to the watermark");
                }
                // Grow the budget so the loop always converges, while
                // the early rounds interrupt mid-stream.
                deadline *= 1.6;
            }
            code => panic!("unexpected exit {code:?}: {stderr}"),
        }
    }
    let joined = std::fs::read(&assembled).unwrap();
    assert_eq!(joined, full.stdout, "assembled segments diverge from the uninterrupted run");
    assert!(!ck.join("ckpt.json").exists(), "completed resume must clear the manifest");
    // The loop is only meaningful if at least one round actually stopped
    // early; with the starting budget of 10ms that is effectively
    // guaranteed on any machine.
    assert!(interrupted > 0, "no segment was ever interrupted — deadline too generous");
    let _ = std::fs::remove_dir_all(&scratch);
}

/// The interrupt–resume loop in closed mode: a checkpointed
/// `--output=closed` run stopped and resumed across wall-clock budget
/// segments must assemble byte for byte into the uninterrupted closed
/// stream. The resumed segments re-derive the closure reconcile state
/// for the skipped prefix silently, so this exercises the quiet-replay
/// machinery end to end (parallel dynamic schedule included).
#[test]
fn closed_mode_interrupt_resume_reproduces_the_uninterrupted_stream() {
    use std::process::Stdio;

    let path = write_skewed();
    let scratch = ckpt_scratch("closed_deadline");
    let ck = scratch.join("ck");
    let assembled = scratch.join("assembled.out");

    let full = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "20",
            "--output=closed",
            "--threads",
            "4",
            "--checkpoint-dir",
            ck.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(full.status.success(), "{}", String::from_utf8_lossy(&full.stderr));

    let mut deadline = 0.01f64;
    let mut interrupted = 0u32;
    for round in 0.. {
        assert!(round < 40, "resume loop did not converge");
        let out_file =
            std::fs::OpenOptions::new().create(true).append(true).open(&assembled).unwrap();
        let out = Command::new(bin())
            .args([
                path.to_str().unwrap(),
                "--support",
                "20",
                "--output=closed",
                "--threads",
                "4",
                "--checkpoint-dir",
                ck.to_str().unwrap(),
                "--checkpoint-every",
                "1",
                "--resume",
                "--deadline",
                &format!("{deadline}"),
            ])
            .stdout(Stdio::from(out_file))
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        match out.status.code() {
            Some(0) => break,
            Some(8) => {
                interrupted += 1;
                deadline *= 1.6;
            }
            code => panic!("unexpected exit {code:?}: {stderr}"),
        }
    }
    let joined = std::fs::read(&assembled).unwrap();
    assert_eq!(
        joined, full.stdout,
        "assembled closed segments diverge from the uninterrupted closed run"
    );
    assert!(!ck.join("ckpt.json").exists(), "completed resume must clear the manifest");
    assert!(interrupted > 0, "no segment was ever interrupted — deadline too generous");
    let _ = std::fs::remove_dir_all(&scratch);
}

/// The manifest fingerprints its output mode: resuming a closed-mode
/// checkpoint without `--output=closed` is a structured exit 9 naming
/// the mismatch, and with the matching mode it proceeds.
#[test]
fn resume_under_a_different_output_mode_exits_9() {
    let path = write_sample();
    let scratch = ckpt_scratch("output_mismatch");
    let ck = scratch.join("ck");
    std::fs::create_dir_all(&ck).unwrap();
    let db = cfp_core::TransactionDb::from_rows(&[
        vec![1, 2, 5],
        vec![2, 4],
        vec![2, 3],
        vec![1, 2, 4],
        vec![1, 3],
        vec![2, 3],
        vec![1, 3],
        vec![1, 2, 3, 5],
        vec![1, 2, 3],
    ]);
    let recoder = cfp_core::ItemRecoder::scan(&db, 2);
    cfp_core::ckpt::save(
        &ck,
        &cfp_core::Manifest {
            input: path.to_str().unwrap().to_string(),
            min_support: 2,
            counts: cfp_core::ckpt::counts_fingerprint(&recoder),
            num_items: recoder.num_items() as u64,
            output: "closed".into(),
            progress: cfp_core::CkptProgress::Mono { items_done: 1 },
            output_bytes: 0,
            itemsets: 0,
        },
    )
    .unwrap();
    let resume_with = |extra: &[&str]| {
        let mut args = vec![
            path.to_str().unwrap(),
            "--support",
            "2",
            "--checkpoint-dir",
            ck.to_str().unwrap(),
            "--resume",
        ];
        args.extend_from_slice(extra);
        Command::new(bin()).args(&args).output().unwrap()
    };
    let out = resume_with(&[]);
    assert_eq!(out.status.code(), Some(9));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("output mismatch"), "{stderr}");

    let out = resume_with(&["--output=closed"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_dir_all(&scratch);
}

/// SIGTERM lands mid-mine: the process exits with code 8, the committed
/// manifest is checksum-valid (it round-trips through the strict
/// loader), the flushed output sits exactly at its watermark, and no
/// temp files survive.
#[test]
fn sigterm_mid_mine_exits_8_with_a_committed_valid_manifest() {
    use std::process::Stdio;

    // A dataset heavy enough that the run is reliably still mining when
    // the signal arrives ~150 ms in (mining takes several seconds).
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sigterm_heavy.dat");
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let mut text = String::new();
    for _ in 0..6000 {
        let mut row = Vec::new();
        for i in 0..72u32 {
            if next() < 0.9 / (i as f64 / 4.0 + 1.0) {
                row.push(i.to_string());
            }
        }
        if !row.is_empty() {
            text.push_str(&row.join(" "));
            text.push('\n');
        }
    }
    std::fs::write(&path, text).unwrap();

    let scratch = ckpt_scratch("sigterm");
    let ck = scratch.join("ck");
    let seg1 = scratch.join("seg1.out");
    let child = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "4",
            "--checkpoint-dir",
            ck.to_str().unwrap(),
            "--checkpoint-every",
            "1",
        ])
        .stdout(Stdio::from(std::fs::File::create(&seg1).unwrap()))
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(150));
    let term = Command::new("kill").args(["-TERM", &child.id().to_string()]).status().unwrap();
    assert!(term.success(), "kill -TERM failed");
    let out = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(8), "{stderr}");
    assert!(stderr.contains("resumable watermark"), "{stderr}");

    // The manifest must be present, checksum-valid, and point exactly at
    // the flushed output length.
    let manifest = cfp_core::ckpt::load(&ck)
        .expect("manifest must be valid")
        .expect("SIGTERM mid-mine must leave a committed manifest");
    assert_eq!(manifest.output_bytes, std::fs::metadata(&seg1).unwrap().len());
    assert!(manifest.progress.done() > 0, "watermark must show progress");
    for entry in std::fs::read_dir(&ck).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        assert!(!name.ends_with(".tmp"), "stray temp file {name}");
    }

    // Resume (in parallel, exercising cross-thread-count resume) and
    // verify the concatenation against an uninterrupted run.
    let seg2 = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "4",
            "--checkpoint-dir",
            ck.to_str().unwrap(),
            "--resume",
            "--threads",
            "4",
        ])
        .output()
        .unwrap();
    assert!(seg2.status.success(), "{}", String::from_utf8_lossy(&seg2.stderr));
    let full =
        Command::new(bin()).args([path.to_str().unwrap(), "--support", "4"]).output().unwrap();
    assert!(full.status.success());
    let mut joined = std::fs::read(&seg1).unwrap();
    joined.extend_from_slice(&seg2.stdout);
    assert_eq!(joined, full.stdout, "kill + resume diverged from the uninterrupted run");
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Resuming against a manifest from a different run is rejected with
/// exit 9 and a diagnostic naming the mismatch.
#[test]
fn resume_with_mismatched_config_exits_9() {
    let path = write_sample();
    let scratch = ckpt_scratch("mismatch");
    let ck = scratch.join("ck");
    std::fs::create_dir_all(&ck).unwrap();
    cfp_core::ckpt::save(
        &ck,
        &cfp_core::Manifest {
            input: path.to_str().unwrap().to_string(),
            min_support: 2,
            counts: "fnv1a:0000000000000000".into(),
            num_items: 5,
            output: "all".into(),
            progress: cfp_core::CkptProgress::Mono { items_done: 2 },
            output_bytes: 0,
            itemsets: 0,
        },
    )
    .unwrap();
    let out = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "2",
            "--checkpoint-dir",
            ck.to_str().unwrap(),
            "--resume",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(9));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fingerprint mismatch"), "{stderr}");
    let _ = std::fs::remove_dir_all(&scratch);
}

/// A torn (truncated) or bit-flipped manifest is a structured exit 9 —
/// never a panic, never silently trusted.
#[test]
fn torn_or_corrupted_manifest_exits_9() {
    let path = write_sample();
    let scratch = ckpt_scratch("torn");
    let ck = scratch.join("ck");
    std::fs::create_dir_all(&ck).unwrap();
    let manifest = cfp_core::Manifest {
        input: path.to_str().unwrap().to_string(),
        min_support: 2,
        counts: "fnv1a:1111111111111111".into(),
        num_items: 5,
        output: "all".into(),
        progress: cfp_core::CkptProgress::Mono { items_done: 1 },
        output_bytes: 10,
        itemsets: 1,
    };
    cfp_core::ckpt::save(&ck, &manifest).unwrap();
    let manifest_path = ck.join("ckpt.json");
    let full = std::fs::read(&manifest_path).unwrap();

    let mut torn = full.clone();
    torn.truncate(full.len() / 2);
    let mut flipped = full.clone();
    let mid = full.len() / 2;
    flipped[mid] ^= 0xFF;
    for damaged in [torn, flipped] {
        std::fs::write(&manifest_path, &damaged).unwrap();
        let out = Command::new(bin())
            .args([
                path.to_str().unwrap(),
                "--support",
                "2",
                "--checkpoint-dir",
                ck.to_str().unwrap(),
                "--resume",
            ])
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(9), "{stderr}");
        assert!(!stderr.contains("panic"), "{stderr}");
        assert!(stderr.contains("checkpoint"), "{stderr}");
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

/// The state-directory lockfile: a live owner blocks with exit 10, a
/// stale lock from a dead process is reclaimed transparently.
#[test]
fn locked_checkpoint_dir_exits_10_and_stale_locks_are_reclaimed() {
    let path = write_sample();
    let scratch = ckpt_scratch("lock");
    let ck = scratch.join("ck");
    std::fs::create_dir_all(&ck).unwrap();

    // PID 1 is always alive: the directory is genuinely owned.
    std::fs::write(ck.join("cfp.lock"), "1\n").unwrap();
    let out = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2", "--checkpoint-dir", ck.to_str().unwrap()])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(10), "{stderr}");
    assert!(stderr.contains("locked"), "{stderr}");
    assert!(out.stdout.is_empty(), "a locked run must not mine");

    // A lock naming a dead PID is stale: reclaimed, run succeeds.
    std::fs::write(ck.join("cfp.lock"), "3999999\n").unwrap();
    let out = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2", "--checkpoint-dir", ck.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_dir_all(&scratch);
}

/// The `core.ckpt.write` failpoint: a permanently failing manifest
/// commit aborts the run with the structured checkpoint error (exit 9)
/// instead of mining on with silently absent crash safety. Skipped
/// when the binary was built without the `fault` feature.
#[test]
fn failing_checkpoint_commit_exits_9_under_the_failpoint() {
    let path = write_skewed();
    let scratch = ckpt_scratch("failpoint");
    let ck = scratch.join("ck");
    let out = Command::new(bin())
        .args([
            path.to_str().unwrap(),
            "--support",
            "20",
            "--checkpoint-dir",
            ck.to_str().unwrap(),
            "--checkpoint-every",
            "1",
        ])
        .env("CFP_FAULT", "core.ckpt.write=always")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    if !cfg!(feature = "fault") {
        // Binary built without failpoints: CFP_FAULT is silently
        // ignored and the run must simply complete.
        assert!(out.status.success(), "{stderr}");
        let _ = std::fs::remove_dir_all(&scratch);
        return;
    }
    assert_eq!(out.status.code(), Some(9), "{stderr}");
    assert!(stderr.contains("core.ckpt.write"), "{stderr}");
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn mem_report_requires_the_cfp_algorithm() {
    let path = write_sample();
    let out = Command::new(bin())
        .args([path.to_str().unwrap(), "--support", "2", "--algorithm", "fp", "--mem-report", "x"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--mem-report"), "{stderr}");
}
