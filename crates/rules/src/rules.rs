//! Association-rule generation from a frequent-itemset collection.

use cfp_data::Item;
use std::collections::HashMap;

/// One association rule `antecedent ⇒ consequent`.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Left-hand side, sorted ascending, non-empty.
    pub antecedent: Vec<Item>,
    /// Right-hand side, sorted ascending, non-empty, disjoint from the
    /// antecedent.
    pub consequent: Vec<Item>,
    /// Support of `antecedent ∪ consequent` (absolute count).
    pub support: u64,
    /// `support / support(antecedent)`.
    pub confidence: f64,
    /// `confidence / (support(consequent) / num_transactions)`.
    pub lift: f64,
}

/// Generates association rules from frequent itemsets.
pub struct RuleMiner {
    /// Support lookup for every frequent itemset.
    supports: HashMap<Vec<Item>, u64>,
    num_transactions: u64,
}

impl RuleMiner {
    /// Builds the rule miner from a complete mining result (as returned by
    /// `CollectSink::into_sorted`) and the database size.
    ///
    /// The collection must be *downward closed* (contain every subset of
    /// every member), which any correct frequent-itemset result is.
    pub fn new(itemsets: &[(Vec<Item>, u64)], num_transactions: u64) -> Self {
        let supports = itemsets.iter().cloned().collect();
        RuleMiner { supports, num_transactions }
    }

    /// Support of an itemset (must be sorted ascending), if frequent.
    pub fn support(&self, itemset: &[Item]) -> Option<u64> {
        self.supports.get(itemset).copied()
    }

    /// Generates all rules meeting `min_confidence` (0.0..=1.0), from
    /// every itemset of cardinality ≥ 2.
    ///
    /// Consequents are grown level-wise per itemset; a consequent that
    /// fails the confidence bound prunes all of its supersets, because
    /// shrinking the antecedent can only shrink confidence.
    pub fn rules(&self, min_confidence: f64) -> Vec<Rule> {
        let mut out = Vec::new();
        for (itemset, &support) in &self.supports {
            if itemset.len() < 2 {
                continue;
            }
            // Level 1 consequents: single items.
            let mut consequents: Vec<Vec<Item>> = itemset.iter().map(|&i| vec![i]).collect();
            while !consequents.is_empty() {
                let mut kept: Vec<Vec<Item>> = Vec::new();
                for consequent in consequents {
                    if consequent.len() == itemset.len() {
                        continue; // antecedent would be empty
                    }
                    let antecedent: Vec<Item> =
                        itemset.iter().copied().filter(|i| !consequent.contains(i)).collect();
                    let ant_sup = self.supports[&antecedent];
                    let confidence = support as f64 / ant_sup as f64;
                    if confidence >= min_confidence {
                        let cons_sup = self.supports[&consequent];
                        let lift = if self.num_transactions == 0 {
                            0.0
                        } else {
                            confidence / (cons_sup as f64 / self.num_transactions as f64)
                        };
                        out.push(Rule {
                            antecedent,
                            consequent: consequent.clone(),
                            support,
                            confidence,
                            lift,
                        });
                        kept.push(consequent);
                    }
                }
                consequents = grow_consequents(&kept, itemset);
            }
        }
        // Deterministic order: by itemset, then by consequent.
        out.sort_by(|a, b| (&a.antecedent, &a.consequent).cmp(&(&b.antecedent, &b.consequent)));
        out
    }

    /// The rules sorted by descending confidence (ties by support).
    pub fn rules_by_confidence(&self, min_confidence: f64) -> Vec<Rule> {
        let mut rules = self.rules(min_confidence);
        rules.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then(b.support.cmp(&a.support))
                .then(a.antecedent.cmp(&b.antecedent))
                .then(a.consequent.cmp(&b.consequent))
        });
        rules
    }
}

/// Joins confident consequents of size k sharing a (k-1)-prefix into
/// size-(k+1) candidates, Apriori-style.
fn grow_consequents(kept: &[Vec<Item>], itemset: &[Item]) -> Vec<Vec<Item>> {
    let mut sorted: Vec<&Vec<Item>> = kept.iter().collect();
    sorted.sort();
    let mut next = Vec::new();
    for (i, a) in sorted.iter().enumerate() {
        for b in &sorted[i + 1..] {
            if a[..a.len() - 1] == b[..b.len() - 1] {
                let mut cand = (*a).clone();
                cand.push(*b.last().expect("nonempty"));
                if cand.len() < itemset.len() {
                    next.push(cand);
                }
            }
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_core::{CfpGrowthMiner, CollectSink, Miner, TransactionDb};

    fn mined() -> (Vec<(Vec<Item>, u64)>, u64) {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 3],
            vec![1, 2],
            vec![1, 2],
            vec![1, 3],
            vec![2, 3],
        ]);
        let mut sink = CollectSink::new();
        CfpGrowthMiner::new().mine(&db, 1, &mut sink);
        (sink.into_sorted(), db.len() as u64)
    }

    #[test]
    fn confidence_and_lift_are_exact() {
        let (itemsets, n) = mined();
        let miner = RuleMiner::new(&itemsets, n);
        let rules = miner.rules(0.0);
        // 1 => 2: sup({1,2}) = 3, sup({1}) = 4 -> conf 0.75.
        let r = rules
            .iter()
            .find(|r| r.antecedent == vec![1] && r.consequent == vec![2])
            .expect("rule 1 => 2");
        assert_eq!(r.support, 3);
        assert!((r.confidence - 0.75).abs() < 1e-12);
        // lift = 0.75 / (sup({2})/5 = 4/5) = 0.9375.
        assert!((r.lift - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn min_confidence_prunes() {
        let (itemsets, n) = mined();
        let miner = RuleMiner::new(&itemsets, n);
        let all = miner.rules(0.0);
        let strict = miner.rules(0.75);
        assert!(strict.len() < all.len());
        assert!(strict.iter().all(|r| r.confidence >= 0.75));
        // Every strict rule is present among the unpruned ones.
        for r in &strict {
            assert!(all
                .iter()
                .any(|x| x.antecedent == r.antecedent && x.consequent == r.consequent));
        }
    }

    #[test]
    fn rule_sides_are_disjoint_and_cover_the_itemset() {
        let (itemsets, n) = mined();
        let miner = RuleMiner::new(&itemsets, n);
        for r in miner.rules(0.0) {
            assert!(!r.antecedent.is_empty() && !r.consequent.is_empty());
            let mut union: Vec<Item> = r.antecedent.iter().chain(&r.consequent).copied().collect();
            union.sort_unstable();
            assert!(union.windows(2).all(|w| w[0] < w[1]), "overlap in {r:?}");
            assert_eq!(Some(r.support), miner.support(&union));
        }
    }

    #[test]
    fn multi_item_consequents_are_generated() {
        // {1,2,3} appears twice; {1} appears twice -> 1 => {2,3} has
        // confidence 1.0 and must be found via consequent growth.
        let db = TransactionDb::from_rows(&[vec![1, 2, 3], vec![1, 2, 3], vec![2, 3]]);
        let mut sink = CollectSink::new();
        CfpGrowthMiner::new().mine(&db, 1, &mut sink);
        let miner = RuleMiner::new(&sink.into_sorted(), db.len() as u64);
        let rules = miner.rules(0.95);
        assert!(rules.iter().any(|r| r.antecedent == vec![1] && r.consequent == vec![2, 3]));
    }

    #[test]
    fn confidence_pruning_is_lossless() {
        // Pruned generation at threshold t must equal brute filtering of
        // the unpruned rule set at t.
        let (itemsets, n) = mined();
        let miner = RuleMiner::new(&itemsets, n);
        for t in [0.3, 0.6, 0.8, 1.0] {
            let pruned = miner.rules(t);
            let filtered: Vec<Rule> =
                miner.rules(0.0).into_iter().filter(|r| r.confidence >= t).collect();
            assert_eq!(pruned.len(), filtered.len(), "threshold {t}");
        }
    }

    #[test]
    fn by_confidence_sorts_descending() {
        let (itemsets, n) = mined();
        let rules = RuleMiner::new(&itemsets, n).rules_by_confidence(0.0);
        assert!(rules.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn empty_input_yields_no_rules() {
        let miner = RuleMiner::new(&[], 0);
        assert!(miner.rules(0.0).is_empty());
    }
}
