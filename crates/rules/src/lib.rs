//! Post-processing of frequent itemsets: association rules and the
//! closed / maximal condensed representations.
//!
//! Frequent-itemset mining is rarely the end product. The paper's
//! introduction motivates it through recommendation ("customers who
//! bought this item also bought …"), which is association-rule mining:
//! from every frequent itemset `X` and partition `X = A ∪ C`, the rule
//! `A ⇒ C` holds with
//!
//! - **support** `sup(X)` — how often the whole itemset occurs,
//! - **confidence** `sup(X) / sup(A)` — how often the consequent follows
//!   the antecedent, and
//! - **lift** `conf / (sup(C) / |D|)` — how much more often than chance.
//!
//! [`RuleMiner`] implements the classic Agrawal–Srikant rule generation:
//! for each frequent itemset, consequents are grown level-wise, pruned by
//! the anti-monotonicity of confidence (if `A ⇒ C` lacks confidence, so
//! does every rule that moves more items from `A` into `C`).
//!
//! [`closed_itemsets`] and [`maximal_itemsets`] reduce a mining result to
//! the standard condensed representations: an itemset is *closed* when no
//! proper superset has the same support, *maximal* when no proper superset
//! is frequent at all.

#![warn(missing_docs)]

pub mod condensed;
pub mod rules;

pub use condensed::{closed_itemsets, maximal_itemsets};
pub use rules::{Rule, RuleMiner};
