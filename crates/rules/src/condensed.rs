//! Closed and maximal itemset post-processing.
//!
//! The full frequent-itemset result is often huge and redundant. Two
//! standard condensed representations:
//!
//! - **closed** itemsets (no proper superset with equal support) preserve
//!   all support information — every frequent itemset's support equals
//!   that of its smallest closed superset (what LCM mines natively);
//! - **maximal** itemsets (no frequent proper superset) preserve only the
//!   frequent/infrequent border.

use cfp_data::Item;
use std::collections::HashMap;

fn is_subset(small: &[Item], big: &[Item]) -> bool {
    // Both sorted ascending.
    let mut it = big.iter();
    small.iter().all(|s| it.any(|b| b == s))
}

/// Filters a complete mining result down to the closed itemsets.
///
/// Input itemsets must be sorted ascending internally (the canonical form
/// every sink in this workspace produces).
pub fn closed_itemsets(itemsets: &[(Vec<Item>, u64)]) -> Vec<(Vec<Item>, u64)> {
    // Group by support: a closure witness must have identical support.
    let mut by_support: HashMap<u64, Vec<&Vec<Item>>> = HashMap::new();
    for (items, support) in itemsets {
        by_support.entry(*support).or_default().push(items);
    }
    itemsets
        .iter()
        .filter(|(items, support)| {
            !by_support[support]
                .iter()
                .any(|other| other.len() > items.len() && is_subset(items, other))
        })
        .cloned()
        .collect()
}

/// Filters a complete mining result down to the maximal itemsets.
pub fn maximal_itemsets(itemsets: &[(Vec<Item>, u64)]) -> Vec<(Vec<Item>, u64)> {
    itemsets
        .iter()
        .filter(|(items, _)| {
            !itemsets.iter().any(|(other, _)| other.len() > items.len() && is_subset(items, other))
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_core::{CfpGrowthMiner, CollectSink, Miner, TransactionDb};

    fn mine_all(db: &TransactionDb, minsup: u64) -> Vec<(Vec<Item>, u64)> {
        let mut sink = CollectSink::new();
        CfpGrowthMiner::new().mine(db, minsup, &mut sink);
        sink.into_sorted()
    }

    #[test]
    fn subset_check() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[0], &[]));
    }

    #[test]
    fn closed_keeps_support_information() {
        // db where {1} always occurs with {2}: {1} is not closed.
        let db = TransactionDb::from_rows(&[vec![1, 2], vec![1, 2, 3], vec![2, 3]]);
        let all = mine_all(&db, 1);
        let closed = closed_itemsets(&all);
        assert!(!closed.iter().any(|(i, _)| i == &vec![1]), "{{1}} closes to {{1,2}}");
        assert!(closed.iter().any(|(i, s)| i == &vec![1, 2] && *s == 2));
        // Support of any pruned itemset is recoverable from a closed
        // superset with equal support.
        for (items, support) in &all {
            assert!(
                closed.iter().any(|(c, s)| s == support && is_subset(items, c)),
                "lost support of {items:?}"
            );
        }
    }

    #[test]
    fn maximal_is_subset_of_closed() {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 3],
            vec![1, 2],
            vec![2, 3],
            vec![1, 3],
            vec![4, 5],
        ]);
        let all = mine_all(&db, 1);
        let closed = closed_itemsets(&all);
        let maximal = maximal_itemsets(&all);
        assert!(maximal.len() <= closed.len());
        assert!(closed.len() <= all.len());
        for m in &maximal {
            assert!(closed.contains(m), "maximal {m:?} must be closed");
        }
        // Maximal sets here: {1,2,3} and {4,5}.
        let names: Vec<&Vec<Item>> = maximal.iter().map(|(i, _)| i).collect();
        assert!(names.contains(&&vec![1, 2, 3]));
        assert!(names.contains(&&vec![4, 5]));
        assert_eq!(maximal.len(), 2);
    }

    #[test]
    fn every_frequent_itemset_is_a_subset_of_a_maximal_one() {
        let db = TransactionDb::from_rows(&[vec![0, 1, 2], vec![0, 1], vec![3]]);
        let all = mine_all(&db, 1);
        let maximal = maximal_itemsets(&all);
        for (items, _) in &all {
            assert!(maximal.iter().any(|(m, _)| is_subset(items, m)));
        }
    }

    #[test]
    fn unique_supports_make_everything_closed() {
        // Every superset has strictly smaller support => all closed.
        let db = TransactionDb::from_rows(&[vec![1], vec![2], vec![1], vec![1, 2]]);
        let all = mine_all(&db, 1);
        let closed = closed_itemsets(&all);
        assert_eq!(closed.len(), all.len());
    }

    #[test]
    fn empty_input() {
        assert!(closed_itemsets(&[]).is_empty());
        assert!(maximal_itemsets(&[]).is_empty());
    }
}
