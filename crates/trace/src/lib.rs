//! Zero-dependency tracing and profiling for the CFP-growth workspace.
//!
//! The paper's evaluation hinges on *where* time and memory go: the four
//! mining phases (scan, build, convert, mine), the allocator's free-queue
//! behaviour (Appendix A), and the node-type mix of the compressed tree
//! (§3.3). This crate makes those observable without pulling in the
//! `tracing` ecosystem — the workspace must build fully offline — and
//! without perturbing the numbers it measures:
//!
//! - [`counters`]: a static registry of atomic [`Counter`]s,
//!   [`MaxGauge`]s, and [`Histogram`]s. All metrics are defined centrally
//!   here; producer crates (`cfp-memman`, `cfp-tree`, `cfp-array`,
//!   `cfp-core`) bump them directly.
//! - [`span`]: phase spans ([`Phase`], [`span()`]) accumulating wall time
//!   per mining phase into atomics, plus aggregate recursion events for
//!   the conditional-tree descent (depth histogram, pattern-base sizes,
//!   single-path short-circuits).
//! - [`sampler`]: a background [`MemSampler`] thread snapshotting the
//!   memory gauges at a configurable interval into a time series.
//! - [`events`]: the event timeline — lock-free per-thread ring buffers
//!   of typed, timestamped events (phase transitions, task claims/steals,
//!   recursion enter/exit, arena activity, recovery rungs, buffer swaps).
//! - [`chrome`]: Chrome trace-event JSON export of the timeline (loads
//!   in Perfetto / `chrome://tracing`).
//! - [`flame`]: folded-stack flamegraph lines of the conditional-tree
//!   descent (`flamegraph.pl` / speedscope input).
//! - [`progress`]: a live status heartbeat on stderr.
//! - [`json`]: a hand-rolled JSON value type, writer, and parser.
//! - [`report`]: the versioned machine-readable run report
//!   (`"cfp-profile/2"`; `/1` documents remain readable) emitted by
//!   `cfp-mine --profile`.
//! - [`memstat`]: the versioned space-domain report (`"cfp-memstat/1"`)
//!   emitted by `cfp-mine --mem-report` — per-component attribution,
//!   reconciliation audit, structure analytics, and the compression
//!   table.
//! - [`hist`]: log-linear (HDR-style) fixed-memory latency histograms
//!   with lock-free atomic buckets, mergeable across workers.
//! - [`metrics`]: live export of the registry — Prometheus text
//!   exposition plus a `"cfp-metrics/1"` JSONL stream, rewritten
//!   atomically every `--metrics-every` interval.
//! - [`blackbox`]: the flight recorder — checksummed `"cfp-blackbox/1"`
//!   post-mortems dumped on error exits, rendered by
//!   `cfp-repro postmortem`.
//!
//! # Cost when disabled
//!
//! Instrumentation is double-gated. The cargo feature `trace` (default on)
//! compiles the sites in or out; with it off, [`enabled()`] is a constant
//! `false` and dead-code elimination removes every site. With the feature
//! on, sites still do nothing until [`set_enabled`]`(true)` — the only
//! cost on a hot path is a single relaxed atomic load.
//!
//! ```
//! use cfp_trace::{enabled, set_enabled, span, Phase};
//!
//! set_enabled(true);
//! {
//!     let _guard = span(Phase::Build);
//!     // ... work attributed to the build phase ...
//! }
//! let snap = cfp_trace::span::phase_snapshot();
//! assert!(snap.iter().any(|p| p.name == "build" && p.count == 1));
//! set_enabled(false);
//! cfp_trace::reset();
//! ```

#![warn(missing_docs)]

pub mod blackbox;
pub mod chrome;
pub mod counters;
pub mod events;
pub mod flame;
pub mod hist;
pub mod json;
pub mod memstat;
pub mod metrics;
pub mod progress;
pub mod report;
pub mod sampler;
pub mod span;

pub use blackbox::BlackboxReport;
pub use counters::{Counter, Histogram, MaxGauge};
pub use events::{Event, EventKind, EventsSummary, Rung, TrackDump};
pub use hist::{HistSnapshot, HistSummary, LatencyHisto};
pub use json::Json;
pub use memstat::{MemStatReport, MemSummary};
pub use metrics::{MetricsExporter, MetricsSnapshot};
pub use progress::ProgressMeter;
pub use report::{DegradationReport, RunReport, RungOutcome};
pub use sampler::{MemSampler, Sample};
pub use span::{span, Phase, SpanGuard};

#[cfg(feature = "trace")]
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "trace")]
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is live. One relaxed load; constant `false`
/// (and thus free) when the `trace` feature is compiled out.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "trace")]
    {
        ENABLED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Turns instrumentation on or off at runtime. No-op without the `trace`
/// feature.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "trace")]
    ENABLED.store(on, Ordering::Relaxed);
    #[cfg(not(feature = "trace"))]
    let _ = on;
}

/// Resets every counter, histogram, gauge, phase span, and event ring to
/// zero.
///
/// Tests use this to start from a clean slate; note that the registry is
/// process-global, so tests touching it must serialise themselves (see
/// `counters::tests`).
pub fn reset() {
    counters::reset_all();
    hist::reset_all();
    span::reset();
    events::reset();
}
