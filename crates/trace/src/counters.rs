//! The global metric registry: atomic counters, gauges, and histograms.
//!
//! Every metric in the workspace is *defined* here, in one place, and
//! bumped from the producer crates. That inverts the usual "each crate
//! registers its own metrics" design on purpose: with no inventory/ctor
//! machinery available offline, a central static list is the only way to
//! enumerate all metrics for a snapshot without heap registration at
//! startup.
//!
//! All operations use relaxed atomics — metrics are monotonic event
//! counts and tolerate reordering; we never synchronise *through* them.
//! Producers must check [`crate::enabled()`] before bumping, so the
//! disabled cost is one relaxed load.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new zeroed counter (const, for statics).
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// The registry name, e.g. `"memman.allocs"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Back to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An up/down gauge measured in arbitrary units (bytes, mostly).
///
/// Unlike [`Counter`] it supports `sub`, so it can mirror live state such
/// as an arena's used bytes. `sub` saturates at zero rather than wrapping:
/// producers whose lifetime straddles an `enabled()` flip would otherwise
/// underflow on teardown.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// A new zeroed gauge (const, for statics).
    pub const fn new(name: &'static str) -> Self {
        Gauge { name, value: AtomicU64::new(0) }
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Raises the gauge by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the gauge by `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        // fetch_update loops only under contention; gauges are bumped from
        // few threads and read rarely.
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Back to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A gauge that remembers the maximum value ever recorded.
#[derive(Debug)]
pub struct MaxGauge {
    name: &'static str,
    value: AtomicU64,
}

impl MaxGauge {
    /// A new zeroed max-gauge (const, for statics).
    pub const fn new(name: &'static str) -> Self {
        MaxGauge { name, value: AtomicU64::new(0) }
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records `v`, keeping the running maximum.
    #[inline]
    pub fn record(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The maximum recorded so far.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Back to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram of `u64` counts.
///
/// Out-of-range observations land in the last bucket, so totals are
/// preserved (the report marks the last bucket as `+inf`-ish).
#[derive(Debug)]
pub struct Histogram<const N: usize> {
    name: &'static str,
    buckets: [AtomicU64; N],
}

impl<const N: usize> Histogram<N> {
    /// A new zeroed histogram (const, for statics).
    pub const fn new(name: &'static str) -> Self {
        Histogram { name, buckets: [const { AtomicU64::new(0) }; N] }
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation in `bucket` (clamped to the last bucket).
    #[inline]
    pub fn record(&self, bucket: usize) {
        self.buckets[bucket.min(N - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation of `value` in its log2 bucket
    /// (`0 → bucket 0`, `1 → 1`, `2..=3 → 2`, `4..=7 → 3`, ...).
    #[inline]
    pub fn record_log2(&self, value: u64) {
        let bucket = if value == 0 { 0 } else { 64 - value.leading_zeros() as usize };
        self.record(bucket);
    }

    /// Bucket counts as a plain vector.
    pub fn snapshot(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Back to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// The registry. Grouped by producer crate; names are `<group>.<metric>`.
// ---------------------------------------------------------------------------

/// `cfp-memman`: total `Arena::alloc` calls.
pub static MEMMAN_ALLOCS: Counter = Counter::new("memman.allocs");
/// `cfp-memman`: total `Arena::free` calls.
pub static MEMMAN_FREES: Counter = Counter::new("memman.frees");
/// `cfp-memman`: allocations served by recycling a free-queue chunk.
pub static MEMMAN_QUEUE_HITS: Counter = Counter::new("memman.queue_hits");
/// `cfp-memman`: allocations served by carving at the bump pointer.
pub static MEMMAN_BUMP_ALLOCS: Counter = Counter::new("memman.bump_allocs");
/// `cfp-memman`: reallocations to a larger chunk class.
pub static MEMMAN_GROWS: Counter = Counter::new("memman.reallocs_grow");
/// `cfp-memman`: reallocations to a smaller chunk class.
pub static MEMMAN_SHRINKS: Counter = Counter::new("memman.reallocs_shrink");
/// `cfp-memman`: live (rounded) bytes across all arenas, mirrored.
pub static MEMMAN_USED_BYTES: Gauge = Gauge::new("memman.used_bytes");
/// `cfp-memman`: carved bytes (bump high-water) across all arenas.
pub static MEMMAN_FOOTPRINT_BYTES: Gauge = Gauge::new("memman.footprint_bytes");
/// `cfp-memman`: peak of [`MEMMAN_FOOTPRINT_BYTES`] over the run.
pub static MEMMAN_PEAK_FOOTPRINT: MaxGauge = MaxGauge::new("memman.peak_footprint_bytes");
/// `cfp-memman`: `Arena::compact` calls across all arenas.
pub static MEMMAN_COMPACTIONS: Counter = Counter::new("memman.compactions");
/// `cfp-memman`: bytes returned to the footprint by compaction.
pub static MEMMAN_COMPACT_RECLAIMED: Counter = Counter::new("memman.compact_reclaimed_bytes");
/// `cfp-memman`: arenas recycled via `Arena::reset` instead of reallocated.
pub static MEMMAN_RESETS: Counter = Counter::new("memman.arena_resets");
/// `cfp-memman`: high-water mark of reserved bytes in the shared budget
/// pool (0 when mining runs without a budget).
pub static MEMMAN_POOL_PEAK: MaxGauge = MaxGauge::new("memman.pool_peak_bytes");

/// `cfp-metrics`: current tracked bytes, mirrored from `MemGauge`.
pub static MEM_CURRENT_BYTES: Gauge = Gauge::new("mem.current_bytes");
/// `cfp-metrics`: peak tracked bytes, mirrored from `MemGauge`.
pub static MEM_PEAK_BYTES: MaxGauge = MaxGauge::new("mem.peak_bytes");

/// `cfp-tree`: standard (masked) nodes encoded.
pub static TREE_STANDARD_NODES: Counter = Counter::new("tree.standard_nodes");
/// `cfp-tree`: chain nodes encoded.
pub static TREE_CHAIN_NODES: Counter = Counter::new("tree.chain_nodes");
/// `cfp-tree`: leaves embedded into their parent's pointer slot.
pub static TREE_EMBEDDED_LEAVES: Counter = Counter::new("tree.embedded_leaves");
/// `cfp-tree`: chain nodes split into standard nodes on insert.
pub static TREE_CHAIN_SPLITS: Counter = Counter::new("tree.chain_splits");
/// `cfp-tree`: embedded leaves promoted to real nodes.
pub static TREE_UNEMBEDS: Counter = Counter::new("tree.unembeds");
/// `cfp-tree`: distribution of compression-mask bytes written.
pub static TREE_MASK_BYTES: Histogram<256> = Histogram::new("tree.mask_bytes");

/// `cfp-array`: tree→array conversions performed.
pub static ARRAY_CONVERSIONS: Counter = Counter::new("array.conversions");
/// `cfp-array`: tree nodes visited during conversion.
pub static ARRAY_NODES_CONVERTED: Counter = Counter::new("array.nodes_converted");
/// `cfp-array`: bytes of CFP-array output written.
pub static ARRAY_BYTES_WRITTEN: Counter = Counter::new("array.bytes_written");
/// `cfp-array`: wall nanoseconds spent converting.
pub static ARRAY_CONVERT_NANOS: Counter = Counter::new("array.convert_nanos");

/// `cfp-core`: conditional trees built during the mine phase.
pub static CORE_CONDITIONAL_TREES: Counter = Counter::new("core.conditional_trees");
/// `cfp-core`: recursions short-circuited by the single-path optimisation.
pub static CORE_SINGLE_PATH_SHORTCUTS: Counter = Counter::new("core.single_path_shortcuts");
/// `cfp-core`: frequent itemsets emitted.
pub static CORE_PATTERNS: Counter = Counter::new("core.patterns_emitted");
/// `cfp-core`: worker threads used by the parallel miner (0 = sequential).
pub static CORE_WORKERS: MaxGauge = MaxGauge::new("core.workers");
/// `cfp-core`: deepest conditional-tree recursion reached.
pub static CORE_MAX_DEPTH: MaxGauge = MaxGauge::new("core.max_depth");
/// `cfp-core`: recursion events per depth (clamped at 63).
pub static CORE_DEPTH: Histogram<64> = Histogram::new("core.recursion_depth");
/// `cfp-core`: log2 histogram of conditional pattern-base sizes.
pub static CORE_PATTERN_BASE_LOG2: Histogram<33> = Histogram::new("core.pattern_base_log2");
/// `cfp-core`: log2 histogram of conditional-tree arena bytes at the
/// moment each conditional tree finishes building (per-task peaks).
pub static CORE_COND_TREE_BYTES: Histogram<64> = Histogram::new("core.cond_tree_bytes");
/// `cfp-core`: worker panics contained by the parallel miner.
pub static CORE_WORKER_PANICS: Counter = Counter::new("core.worker_panics");
/// `cfp-core`: heartbeat ticks from parallel workers (one per first-level
/// item mined), read by the watchdog to tell progress from a hang.
pub static CORE_WORKER_HEARTBEATS: Counter = Counter::new("core.worker_heartbeats");
/// `cfp-core`: workers the watchdog declared stalled.
pub static CORE_WORKER_STALLS: Counter = Counter::new("core.worker_stalls");
/// `cfp-core`: item tasks claimed from the dynamic mine-phase scheduler.
pub static CORE_TASKS_CLAIMED: Counter = Counter::new("core.tasks_claimed");
/// `cfp-core`: claimed tasks beyond a worker's fair static share — work the
/// dynamic scheduler moved off an overloaded peer.
pub static CORE_TASKS_STOLEN: Counter = Counter::new("core.tasks_stolen");
/// `cfp-core`: recovery-ladder rungs attempted by the supervisor.
pub static CORE_RECOVERY_RUNGS: Counter = Counter::new("core.recovery_rungs");
/// `cfp-core`: partitions the database was split into for fallback mining.
pub static CORE_PARTITIONS: MaxGauge = MaxGauge::new("core.partitions");
/// `cfp-core`: first-level items fully mined (conditional subtree done).
pub static CORE_ITEMS_MINED: Counter = Counter::new("core.items_mined");
/// `cfp-core`: first-level items the mine phase started with; with
/// [`CORE_ITEMS_MINED`] this gives the progress meter its denominator.
pub static CORE_FIRST_LEVEL_ITEMS: MaxGauge = MaxGauge::new("core.first_level_items");

/// `cfp-data`: malformed lines discarded under `ParsePolicy::Skip`.
pub static DATA_SKIPPED_LINES: Counter = Counter::new("data.skipped_lines");
/// `cfp-data`: malformed tokens across all skipped lines.
pub static DATA_BAD_TOKENS: Counter = Counter::new("data.bad_tokens");

/// `cfp-data`: spill files durably committed (fsync + rename completed).
pub static DATA_SPILL_FILES: Counter = Counter::new("data.spill_files");
/// `cfp-data`: bytes written into committed spill files.
pub static DATA_SPILL_BYTES_WRITTEN: Counter = Counter::new("data.spill_bytes_written");
/// `cfp-data`: bytes read back from spill files for mining.
pub static DATA_SPILL_BYTES_READ: Counter = Counter::new("data.spill_bytes_read");
/// `cfp-data`: transient spill I/O errors absorbed by retry-with-backoff.
pub static DATA_SPILL_RETRIES: Counter = Counter::new("data.spill_retries");
/// `cfp-core`: spill partitions written to disk so far (the `n` of the
/// progress heartbeat's `spill k/n`; grows when a too-big partition is
/// halved and respilled).
pub static CORE_SPILL_PARTITIONS: MaxGauge = MaxGauge::new("core.spill_partitions");
/// `cfp-core`: checkpoint manifests durably committed.
pub static CORE_CKPT_COMMITS: Counter = Counter::new("core.ckpt_commits");
/// `cfp-core`: bytes written into committed checkpoint manifests.
pub static CORE_CKPT_BYTES: Counter = Counter::new("core.ckpt_bytes");
/// `cfp-core`: candidates suppressed by the in-recursion closure check
/// (subsumption hits and support-preserving extensions).
pub static CORE_CLOSED_PRUNED: Counter = Counter::new("core.closed_pruned");
/// `cfp-core`: candidates/subtrees suppressed by the maximality check
/// (subset hits against the emitted-maximal index and lookahead prunes).
pub static CORE_MAXIMAL_PRUNED: Counter = Counter::new("core.maximal_pruned");
/// `cfp-core`: subtrees pruned because their support fell below the
/// rising top-k admission bound.
pub static CORE_TOPK_PRUNED: Counter = Counter::new("core.topk_pruned");
/// `cfp-core`: spill-rung partitions mined to completion so far (the
/// `k` of the progress heartbeat's `spill k/n`).
pub static CORE_SPILL_PARTS_DONE: Counter = Counter::new("core.spill_parts_done");
/// `cfp-cli`: first-level watermark a checkpointed run resumed from
/// (0 when the run started fresh).
pub static CORE_RESUME_WATERMARK: MaxGauge = MaxGauge::new("core.resume_watermark");

/// All plain counters, for snapshots.
static COUNTERS: &[&Counter] = &[
    &MEMMAN_ALLOCS,
    &MEMMAN_FREES,
    &MEMMAN_QUEUE_HITS,
    &MEMMAN_BUMP_ALLOCS,
    &MEMMAN_GROWS,
    &MEMMAN_SHRINKS,
    &MEMMAN_COMPACTIONS,
    &MEMMAN_COMPACT_RECLAIMED,
    &MEMMAN_RESETS,
    &TREE_STANDARD_NODES,
    &TREE_CHAIN_NODES,
    &TREE_EMBEDDED_LEAVES,
    &TREE_CHAIN_SPLITS,
    &TREE_UNEMBEDS,
    &ARRAY_CONVERSIONS,
    &ARRAY_NODES_CONVERTED,
    &ARRAY_BYTES_WRITTEN,
    &ARRAY_CONVERT_NANOS,
    &CORE_CONDITIONAL_TREES,
    &CORE_SINGLE_PATH_SHORTCUTS,
    &CORE_PATTERNS,
    &CORE_WORKER_PANICS,
    &CORE_WORKER_HEARTBEATS,
    &CORE_WORKER_STALLS,
    &CORE_TASKS_CLAIMED,
    &CORE_TASKS_STOLEN,
    &CORE_RECOVERY_RUNGS,
    &CORE_ITEMS_MINED,
    &CORE_CLOSED_PRUNED,
    &CORE_MAXIMAL_PRUNED,
    &CORE_TOPK_PRUNED,
    &DATA_SKIPPED_LINES,
    &DATA_BAD_TOKENS,
    &DATA_SPILL_FILES,
    &DATA_SPILL_BYTES_WRITTEN,
    &DATA_SPILL_BYTES_READ,
    &DATA_SPILL_RETRIES,
    &CORE_CKPT_COMMITS,
    &CORE_CKPT_BYTES,
    &CORE_SPILL_PARTS_DONE,
];

/// All gauges, for snapshots.
static GAUGES: &[&Gauge] = &[&MEMMAN_USED_BYTES, &MEMMAN_FOOTPRINT_BYTES, &MEM_CURRENT_BYTES];

/// All max-gauges, for snapshots.
static MAX_GAUGES: &[&MaxGauge] = &[
    &MEMMAN_PEAK_FOOTPRINT,
    &MEMMAN_POOL_PEAK,
    &MEM_PEAK_BYTES,
    &CORE_WORKERS,
    &CORE_MAX_DEPTH,
    &CORE_PARTITIONS,
    &CORE_SPILL_PARTITIONS,
    &CORE_FIRST_LEVEL_ITEMS,
    &CORE_RESUME_WATERMARK,
];

/// Name/value pairs for every counter, gauge, and max-gauge, sorted by
/// name so snapshots (and the reports built from them) are byte-stable
/// regardless of how the registry statics are grouped.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    let mut out = Vec::with_capacity(COUNTERS.len() + GAUGES.len() + MAX_GAUGES.len());
    out.extend(COUNTERS.iter().map(|c| (c.name(), c.get())));
    out.extend(GAUGES.iter().map(|g| (g.name(), g.get())));
    out.extend(MAX_GAUGES.iter().map(|g| (g.name(), g.get())));
    out.sort_unstable_by_key(|&(name, _)| name);
    out
}

/// Name/buckets pairs for every histogram, sorted by name.
pub fn histogram_snapshot() -> Vec<(&'static str, Vec<u64>)> {
    let mut out = vec![
        (TREE_MASK_BYTES.name(), TREE_MASK_BYTES.snapshot()),
        (CORE_DEPTH.name(), CORE_DEPTH.snapshot()),
        (CORE_PATTERN_BASE_LOG2.name(), CORE_PATTERN_BASE_LOG2.snapshot()),
        (CORE_COND_TREE_BYTES.name(), CORE_COND_TREE_BYTES.snapshot()),
    ];
    out.sort_unstable_by_key(|&(name, _)| name);
    out
}

/// Zeroes every registered metric.
pub fn reset_all() {
    for c in COUNTERS {
        c.reset();
    }
    for g in GAUGES {
        g.reset();
    }
    for g in MAX_GAUGES {
        g.reset();
    }
    TREE_MASK_BYTES.reset();
    CORE_DEPTH.reset();
    CORE_PATTERN_BASE_LOG2.reset();
    CORE_COND_TREE_BYTES.reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The registry is process-global; tests that mutate it take this
    /// lock so `cargo test`'s parallel runner cannot interleave them.
    static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counter_add_and_reset() {
        let _g = lock();
        let c = Counter::new("test.counter");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_saturates_at_zero() {
        let g = Gauge::new("test.gauge");
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub must saturate, not wrap");
    }

    #[test]
    fn max_gauge_keeps_maximum() {
        let g = MaxGauge::new("test.max");
        g.record(5);
        g.record(3);
        g.record(9);
        g.record(7);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_clamps_and_totals() {
        let h: Histogram<4> = Histogram::new("test.hist");
        h.record(0);
        h.record(3);
        h.record(99); // clamps into the last bucket
        assert_eq!(h.snapshot(), vec![1, 0, 0, 2]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn histogram_log2_buckets() {
        let h: Histogram<8> = Histogram::new("test.log2");
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1 << 40] {
            h.record_log2(v);
        }
        // 0→b0, 1→b1, {2,3}→b2, {4,7}→b3, 8→b4, 2^40→clamped b7
        assert_eq!(h.snapshot(), vec![1, 1, 2, 2, 1, 0, 0, 1]);
    }

    #[test]
    fn snapshot_contains_all_registered_names() {
        let _g = lock();
        let snap = snapshot();
        let names: Vec<_> = snap.iter().map(|(n, _)| *n).collect();
        for expected in ["memman.allocs", "tree.standard_nodes", "core.max_depth"] {
            assert!(names.contains(&expected), "{expected} missing from {names:?}");
        }
        // Names are unique.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn snapshots_are_sorted_by_name() {
        let _g = lock();
        let names: Vec<_> = snapshot().iter().map(|&(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "counter snapshot must iterate in name order");
        let hist_names: Vec<_> = histogram_snapshot().iter().map(|(n, _)| *n).collect();
        let mut hist_sorted = hist_names.clone();
        hist_sorted.sort_unstable();
        assert_eq!(hist_names, hist_sorted);
    }

    #[test]
    fn reset_all_zeroes_the_registry() {
        let _g = lock();
        MEMMAN_ALLOCS.add(3);
        CORE_MAX_DEPTH.record(12);
        TREE_MASK_BYTES.record(0xAB);
        reset_all();
        assert!(snapshot().iter().all(|&(_, v)| v == 0));
        assert_eq!(TREE_MASK_BYTES.total(), 0);
    }
}
