//! The event timeline: lock-free per-thread ring buffers of typed events.
//!
//! Aggregate counters (see [`crate::counters`]) answer *how much*; they
//! cannot answer *when*. A straggler worker holding the mine phase, a
//! burst of steals at the cheap tail of the task queue, or a recovery
//! rung firing mid-run all look identical in end-of-run totals. This
//! module records the underlying events with timestamps so the exporters
//! ([`crate::chrome`], [`crate::flame`]) can reconstruct the timeline.
//!
//! # Design
//!
//! Each thread owns one fixed-capacity [`Ring`] registered in a global
//! list the first time the thread records. Recording is wait-free and
//! lock-free: the owning thread is the only writer, so a slot store plus
//! one release store of the write counter publishes an event — no CAS, no
//! lock, no allocation. When the ring is full the oldest event is
//! overwritten (drop-oldest); the write counter keeps the true total, so
//! `written - capacity` events are known dropped and reported as such
//! rather than silently missing.
//!
//! Readers ([`drain`]) run after the writing threads have quiesced (the
//! pipeline joins its workers before exporting), acquire-load the write
//! counter, and decode the surviving window. Timestamps come from one
//! process-wide monotonic [`Instant`] epoch so events from different
//! threads order correctly on a shared timeline.
//!
//! # Gating
//!
//! Event capture is gated separately from the metric registry: profiling
//! a run (`--profile`) should not pay for event recording unless a
//! timeline export was requested. Producers therefore check
//! [`capturing()`] — constant `false` without the `trace` feature, one
//! relaxed load with it — before calling [`record`].

use crate::span::Phase;
use std::cell::OnceCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events a thread can record on its timeline track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A [`crate::span`] phase span opened on this thread.
    PhaseBegin(Phase),
    /// The matching span closed.
    PhaseEnd(Phase),
    /// A mine-phase worker claimed a task from the dynamic scheduler.
    TaskClaim {
        /// First-level item (recoded id) of the claimed task.
        item: u32,
        /// Estimated task cost (encoded subarray bytes).
        cost: u64,
        /// Whether the claim exceeded the worker's fair static share —
        /// work the dynamic scheduler moved off an overloaded peer.
        stolen: bool,
    },
    /// A conditional-tree recursion started (pattern base counted, tree
    /// about to be built and mined).
    RecEnter {
        /// Item being conditioned on (global id, as emitted in output).
        item: u32,
        /// Recursion depth = length of the current suffix.
        depth: u16,
        /// Paths in the conditional pattern base.
        pattern_base: u64,
    },
    /// The recursion for `item` returned (subtree fully mined).
    RecExit {
        /// Item of the matching [`EventKind::RecEnter`].
        item: u32,
    },
    /// An arena allocation hit memory pressure (budget or bump-space
    /// exhaustion) and is about to attempt compaction.
    ArenaPressure {
        /// Bytes the failing allocation requested.
        requested: u64,
    },
    /// An arena compaction finished.
    ArenaCompact {
        /// Bytes returned to the footprint.
        reclaimed: u64,
    },
    /// An arena was recycled via `reset` instead of reallocated.
    ArenaReset,
    /// The recovery supervisor started a ladder rung.
    RecoveryRung(Rung),
    /// The double-buffered reader handed a filled buffer to the parser.
    BufferSwap {
        /// Transactions in the swapped buffer.
        rows: u32,
    },
    /// The spill rung moved one serialized structure across the disk
    /// boundary (one event per completed file write or read-back).
    SpillIo {
        /// Bytes written to (or read from) the spill file.
        bytes: u64,
        /// `true` for a write, `false` for a read-back.
        write: bool,
    },
}

/// Rungs of the supervisor's recovery ladder, in escalation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// Compact-and-retry at full parallelism.
    Retry,
    /// Sequential downshift.
    Degrade,
    /// Partitioned fallback mining.
    Partition,
    /// Out-of-core partitioned fallback: projections spilled to disk.
    Spill,
}

impl Rung {
    /// Stable lower-case name, matching the degradation report.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Retry => "retry",
            Rung::Degrade => "degrade",
            Rung::Partition => "partition",
            Rung::Spill => "spill",
        }
    }

    fn index(self) -> u32 {
        match self {
            Rung::Retry => 0,
            Rung::Degrade => 1,
            Rung::Partition => 2,
            Rung::Spill => 3,
        }
    }

    fn from_index(i: u32) -> Option<Rung> {
        [Rung::Retry, Rung::Degrade, Rung::Partition, Rung::Spill].get(i as usize).copied()
    }
}

impl EventKind {
    /// Stable snake_case name used in the report's `events.by_kind` map.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PhaseBegin(_) => "phase_begin",
            EventKind::PhaseEnd(_) => "phase_end",
            EventKind::TaskClaim { .. } => "task_claim",
            EventKind::RecEnter { .. } => "rec_enter",
            EventKind::RecExit { .. } => "rec_exit",
            EventKind::ArenaPressure { .. } => "arena_pressure",
            EventKind::ArenaCompact { .. } => "arena_compact",
            EventKind::ArenaReset => "arena_reset",
            EventKind::RecoveryRung(_) => "recovery_rung",
            EventKind::BufferSwap { .. } => "buffer_swap",
            EventKind::SpillIo { .. } => "spill_io",
        }
    }
}

/// One decoded event with its timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the capture epoch (shared by all threads).
    pub t_nanos: u64,
    /// What happened.
    pub kind: EventKind,
}

// ---------------------------------------------------------------------------
// Encoding. Each event packs into two u64 words (the third slot word is
// the timestamp): word1 = tag | a << 8 | b << 40, word2 = c. The packing
// keeps a slot at three atomics so recording is three relaxed stores.
// ---------------------------------------------------------------------------

const TAG_PHASE_BEGIN: u64 = 1;
const TAG_PHASE_END: u64 = 2;
const TAG_TASK_CLAIM: u64 = 3;
const TAG_REC_ENTER: u64 = 4;
const TAG_REC_EXIT: u64 = 5;
const TAG_ARENA_PRESSURE: u64 = 6;
const TAG_ARENA_COMPACT: u64 = 7;
const TAG_ARENA_RESET: u64 = 8;
const TAG_RECOVERY_RUNG: u64 = 9;
const TAG_BUFFER_SWAP: u64 = 10;
const TAG_SPILL_IO: u64 = 11;

fn pack(tag: u64, a: u32, b: u16) -> u64 {
    tag | (a as u64) << 8 | (b as u64) << 40
}

fn encode(kind: EventKind) -> (u64, u64) {
    match kind {
        EventKind::PhaseBegin(p) => (pack(TAG_PHASE_BEGIN, p.index() as u32, 0), 0),
        EventKind::PhaseEnd(p) => (pack(TAG_PHASE_END, p.index() as u32, 0), 0),
        EventKind::TaskClaim { item, cost, stolen } => {
            (pack(TAG_TASK_CLAIM, item, stolen as u16), cost)
        }
        EventKind::RecEnter { item, depth, pattern_base } => {
            (pack(TAG_REC_ENTER, item, depth), pattern_base)
        }
        EventKind::RecExit { item } => (pack(TAG_REC_EXIT, item, 0), 0),
        EventKind::ArenaPressure { requested } => (TAG_ARENA_PRESSURE, requested),
        EventKind::ArenaCompact { reclaimed } => (TAG_ARENA_COMPACT, reclaimed),
        EventKind::ArenaReset => (TAG_ARENA_RESET, 0),
        EventKind::RecoveryRung(r) => (pack(TAG_RECOVERY_RUNG, r.index(), 0), 0),
        EventKind::BufferSwap { rows } => (pack(TAG_BUFFER_SWAP, rows, 0), 0),
        EventKind::SpillIo { bytes, write } => (pack(TAG_SPILL_IO, 0, write as u16), bytes),
    }
}

fn decode(word1: u64, word2: u64) -> Option<EventKind> {
    let a = (word1 >> 8) as u32;
    let b = (word1 >> 40) as u16;
    match word1 & 0xFF {
        TAG_PHASE_BEGIN => Phase::from_index(a as usize).map(EventKind::PhaseBegin),
        TAG_PHASE_END => Phase::from_index(a as usize).map(EventKind::PhaseEnd),
        TAG_TASK_CLAIM => Some(EventKind::TaskClaim { item: a, cost: word2, stolen: b != 0 }),
        TAG_REC_ENTER => Some(EventKind::RecEnter { item: a, depth: b, pattern_base: word2 }),
        TAG_REC_EXIT => Some(EventKind::RecExit { item: a }),
        TAG_ARENA_PRESSURE => Some(EventKind::ArenaPressure { requested: word2 }),
        TAG_ARENA_COMPACT => Some(EventKind::ArenaCompact { reclaimed: word2 }),
        TAG_ARENA_RESET => Some(EventKind::ArenaReset),
        TAG_RECOVERY_RUNG => Rung::from_index(a).map(EventKind::RecoveryRung),
        TAG_BUFFER_SWAP => Some(EventKind::BufferSwap { rows: a }),
        TAG_SPILL_IO => Some(EventKind::SpillIo { bytes: word2, write: b != 0 }),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// The per-thread ring.
// ---------------------------------------------------------------------------

/// Default events kept per thread. At three words per slot this is 768 KiB
/// per worker — enough for the full recursion timeline of the bundled
/// dataset profiles, bounded regardless of run length.
const DEFAULT_CAPACITY: usize = 1 << 15;

type Slot = [AtomicU64; 3];

/// One thread's fixed-capacity event buffer. Single writer (the owning
/// thread), drop-oldest on overflow.
struct Ring {
    name: String,
    slots: Box<[Slot]>,
    /// Total events ever written; `written - capacity` (when positive)
    /// have been overwritten and are reported as dropped. Stored with
    /// release ordering so a post-join reader sees fully written slots.
    written: AtomicU64,
}

impl Ring {
    fn new(name: String, capacity: usize) -> Ring {
        let slots = (0..capacity.max(1)).map(|_| [const { AtomicU64::new(0) }; 3]).collect();
        Ring { name, slots, written: AtomicU64::new(0) }
    }

    /// Records one event. Only the owning thread calls this.
    fn push(&self, t_nanos: u64, kind: EventKind) {
        let i = self.written.load(Ordering::Relaxed);
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        let (word1, word2) = encode(kind);
        slot[0].store(t_nanos, Ordering::Relaxed);
        slot[1].store(word1, Ordering::Relaxed);
        slot[2].store(word2, Ordering::Relaxed);
        self.written.store(i + 1, Ordering::Release);
    }

    /// Decodes the surviving window, oldest first. Safe to call from any
    /// thread; exact once the owning thread has quiesced (torn slots are
    /// possible only under concurrent writes, and decode failures are
    /// skipped rather than trusted).
    fn dump(&self) -> (Vec<Event>, u64, u64) {
        let written = self.written.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let dropped = written.saturating_sub(cap);
        let mut events = Vec::with_capacity((written - dropped) as usize);
        for i in dropped..written {
            let slot = &self.slots[(i % cap) as usize];
            let t_nanos = slot[0].load(Ordering::Relaxed);
            let word1 = slot[1].load(Ordering::Relaxed);
            let word2 = slot[2].load(Ordering::Relaxed);
            if let Some(kind) = decode(word1, word2) {
                events.push(Event { t_nanos, kind });
            }
        }
        (events, written, dropped)
    }
}

/// Everything [`drain`] returns about one thread's timeline.
#[derive(Clone, Debug)]
pub struct TrackDump {
    /// Thread name at registration (`"worker-3"`, `"cfp-data-reader"`,
    /// `"main"`, ...).
    pub name: String,
    /// Stable small id for exporters (1-based registration order).
    pub tid: u32,
    /// Surviving events, oldest first, timestamps from the shared epoch.
    pub events: Vec<Event>,
    /// Total events recorded on this track, including dropped ones.
    pub recorded: u64,
    /// Events overwritten by drop-oldest overflow.
    pub dropped: u64,
}

/// The `events` summary block of the `cfp-profile/2` report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventsSummary {
    /// Threads that recorded at least one event.
    pub tracks: u64,
    /// Total events recorded across all tracks (including dropped).
    pub recorded: u64,
    /// Events lost to ring-buffer overflow across all tracks.
    pub dropped_events: u64,
    /// Surviving event counts per [`EventKind::name`], sorted by name.
    pub by_kind: Vec<(&'static str, u64)>,
}

// ---------------------------------------------------------------------------
// Global capture state and the thread registry.
// ---------------------------------------------------------------------------

static CAPTURE: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static LOCAL: OnceCell<Arc<Ring>> = const { OnceCell::new() };
}

/// Whether event capture is live. Like [`crate::enabled`] this is one
/// relaxed load, and constant `false` (sites fold away) when the `trace`
/// feature is compiled out. Capture is gated separately so `--profile`
/// alone does not pay for event recording.
#[inline(always)]
pub fn capturing() -> bool {
    #[cfg(feature = "trace")]
    {
        CAPTURE.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Turns event capture on or off. Enabling pins the shared monotonic
/// epoch on first use. No effect without the `trace` feature (capture
/// then stays off).
pub fn set_capture(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    CAPTURE.store(on, Ordering::Relaxed);
}

/// Sets the per-thread ring capacity (events) for rings created *after*
/// the call. Existing rings keep their size.
pub fn set_capacity(events: usize) {
    CAPACITY.store(events.max(1), Ordering::Relaxed);
}

fn now_nanos() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn register(name: String) -> Arc<Ring> {
    let ring = Arc::new(Ring::new(name, CAPACITY.load(Ordering::Relaxed)));
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).push(Arc::clone(&ring));
    ring
}

/// Names the current thread's timeline track. Must be called before the
/// thread's first [`record`] to take effect (the ring is created — and
/// named — exactly once per thread); later calls are ignored. Threads
/// that never call this are named after [`std::thread::Thread::name`],
/// falling back to `"thread-<tid>"`.
pub fn name_thread(name: &str) {
    LOCAL.with(|cell| {
        cell.get_or_init(|| register(name.to_string()));
    });
}

/// Records one event on the calling thread's track. Callers must check
/// [`capturing()`] first — this is on the mine-phase hot path.
pub fn record(kind: EventKind) {
    let t_nanos = now_nanos();
    LOCAL.with(|cell| {
        let ring = cell.get_or_init(|| {
            let fallback = {
                let registered = REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).len();
                format!("thread-{}", registered + 1)
            };
            let name = std::thread::current().name().map(str::to_string).unwrap_or(fallback);
            register(name)
        });
        ring.push(t_nanos, kind);
    });
}

/// Snapshots every registered track (threads need not be alive, but the
/// result is only exact for threads that have quiesced). Tracks appear in
/// registration order; tracks that never recorded are omitted.
pub fn drain() -> Vec<TrackDump> {
    let rings: Vec<Arc<Ring>> =
        REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).iter().map(Arc::clone).collect();
    rings
        .iter()
        .enumerate()
        .filter_map(|(i, ring)| {
            let (events, recorded, dropped) = ring.dump();
            if recorded == 0 {
                return None;
            }
            Some(TrackDump {
                name: ring.name.clone(),
                tid: i as u32 + 1,
                events,
                recorded,
                dropped,
            })
        })
        .collect()
}

/// Aggregates [`drain`] into the report's `events` block.
pub fn summary() -> EventsSummary {
    summarize(&drain())
}

/// Aggregates already-drained tracks (so callers exporting a timeline do
/// not drain twice).
pub fn summarize(tracks: &[TrackDump]) -> EventsSummary {
    let mut by_kind: Vec<(&'static str, u64)> = Vec::new();
    for track in tracks {
        for event in &track.events {
            let name = event.kind.name();
            match by_kind.iter_mut().find(|(n, _)| *n == name) {
                Some((_, count)) => *count += 1,
                None => by_kind.push((name, 1)),
            }
        }
    }
    by_kind.sort_unstable_by_key(|&(name, _)| name);
    EventsSummary {
        tracks: tracks.len() as u64,
        recorded: tracks.iter().map(|t| t.recorded).sum(),
        dropped_events: tracks.iter().map(|t| t.dropped).sum(),
        by_kind,
    }
}

/// Rewinds every registered ring to empty (the rings themselves persist —
/// thread-locals still point at them). Part of [`crate::reset`].
pub fn reset() {
    for ring in REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        ring.written.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips_through_the_slot_encoding() {
        let kinds = [
            EventKind::PhaseBegin(Phase::Mine),
            EventKind::PhaseEnd(Phase::Recover),
            EventKind::TaskClaim { item: 12345, cost: u64::MAX / 3, stolen: true },
            EventKind::TaskClaim { item: 0, cost: 0, stolen: false },
            EventKind::RecEnter { item: u32::MAX >> 8, depth: 999, pattern_base: 1 << 40 },
            EventKind::RecExit { item: 7 },
            EventKind::ArenaPressure { requested: 4096 },
            EventKind::ArenaCompact { reclaimed: 1 << 33 },
            EventKind::ArenaReset,
            EventKind::RecoveryRung(Rung::Partition),
            EventKind::RecoveryRung(Rung::Spill),
            EventKind::BufferSwap { rows: 8192 },
            EventKind::SpillIo { bytes: 1 << 39, write: true },
            EventKind::SpillIo { bytes: 512, write: false },
        ];
        for kind in kinds {
            let (w1, w2) = encode(kind);
            assert_eq!(decode(w1, w2), Some(kind), "{kind:?}");
        }
        assert_eq!(decode(0, 0), None, "zeroed slots must not decode");
        assert_eq!(decode(0xFF, 0), None, "unknown tags must not decode");
    }

    #[test]
    fn ring_keeps_events_in_order_below_capacity() {
        let ring = Ring::new("t".into(), 8);
        for i in 0..5 {
            ring.push(i * 10, EventKind::BufferSwap { rows: i as u32 });
        }
        let (events, recorded, dropped) = ring.dump();
        assert_eq!(recorded, 5);
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.t_nanos, i as u64 * 10);
            assert_eq!(e.kind, EventKind::BufferSwap { rows: i as u32 });
        }
    }

    #[test]
    fn ring_wraps_dropping_oldest_and_counts_drops() {
        let ring = Ring::new("t".into(), 4);
        for i in 0..11u64 {
            ring.push(i, EventKind::BufferSwap { rows: i as u32 });
        }
        let (events, recorded, dropped) = ring.dump();
        assert_eq!(recorded, 11);
        assert_eq!(dropped, 7, "capacity 4 of 11 events keeps the newest 4");
        let rows: Vec<u32> = events
            .iter()
            .map(|e| match e.kind {
                EventKind::BufferSwap { rows } => rows,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(rows, vec![7, 8, 9, 10], "oldest events are overwritten first");
        assert!(events.windows(2).all(|w| w[0].t_nanos <= w[1].t_nanos));
    }

    #[test]
    fn ring_wrap_exactly_at_capacity_drops_nothing() {
        let ring = Ring::new("t".into(), 4);
        for i in 0..4u64 {
            ring.push(i, EventKind::ArenaReset);
        }
        let (events, recorded, dropped) = ring.dump();
        assert_eq!((events.len(), recorded, dropped), (4, 4, 0));
    }

    #[test]
    #[cfg_attr(not(feature = "trace"), ignore = "capture is compiled out")]
    fn capture_round_trip_records_on_a_named_track() {
        // Use a dedicated thread: the thread-local ring is created once
        // per thread, so reusing the test-runner thread would race with
        // other tests' tracks.
        set_capture(true);
        std::thread::Builder::new()
            .name("events-test-worker".into())
            .spawn(|| {
                if capturing() {
                    record(EventKind::RecoveryRung(Rung::Retry));
                    record(EventKind::RecEnter { item: 3, depth: 1, pattern_base: 9 });
                    record(EventKind::RecExit { item: 3 });
                }
            })
            .unwrap()
            .join()
            .unwrap();
        set_capture(false);
        let tracks = drain();
        let track = tracks
            .iter()
            .find(|t| t.name == "events-test-worker")
            .expect("thread registered a track");
        assert!(track.tid >= 1);
        assert_eq!(track.dropped, 0);
        assert_eq!(track.events.len(), 3);
        assert_eq!(track.events[0].kind, EventKind::RecoveryRung(Rung::Retry));
        assert!(track.events.windows(2).all(|w| w[0].t_nanos <= w[1].t_nanos));
        let summary = summarize(&tracks);
        assert!(summary.tracks >= 1);
        assert!(summary.recorded >= 3);
        let names: Vec<_> = summary.by_kind.iter().map(|&(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "by_kind is sorted by name");
    }

    #[test]
    fn name_thread_wins_over_the_os_thread_name() {
        set_capture(true);
        std::thread::Builder::new()
            .name("events-os-name".into())
            .spawn(|| {
                name_thread("events-logical-name");
                record(EventKind::ArenaReset);
            })
            .unwrap()
            .join()
            .unwrap();
        set_capture(false);
        let tracks = drain();
        assert!(tracks.iter().any(|t| t.name == "events-logical-name"));
        assert!(!tracks.iter().any(|t| t.name == "events-os-name"));
    }
}
