//! Phase spans and aggregate recursion events.
//!
//! The paper reports time per mining phase (Figure 7 splits scan from
//! build+convert); [`Phase`] names those phases and [`span()`] returns an
//! RAII guard that adds the guard's lifetime to the phase's accumulated
//! wall time. Spans are *accumulating*: entering the same phase twice
//! (e.g. per-worker mine spans) sums the durations and counts the entries.
//!
//! The conditional-tree descent of the mine phase would produce millions
//! of events if logged individually; instead [`conditional_tree`] and
//! [`single_path`] fold each event into the aggregate registry metrics
//! (depth histogram, max depth, pattern-base size histogram, short-circuit
//! counter) in a few relaxed atomic ops.

use crate::counters::{
    CORE_CONDITIONAL_TREES, CORE_DEPTH, CORE_MAX_DEPTH, CORE_PATTERN_BASE_LOG2,
    CORE_SINGLE_PATH_SHORTCUTS,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The mining phases of the CFP-growth pipeline (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Reading transactions from disk (or the generator).
    Read,
    /// First scan: per-item support counting and recoding.
    Count,
    /// Building the compressed CFP-tree.
    Build,
    /// Converting the CFP-tree to the CFP-array.
    Convert,
    /// Mining the CFP-array (conditional-tree recursion).
    Mine,
    /// Recovery-ladder work after a failed attempt (compaction retry,
    /// sequential downshift, partitioned fallback). Zero on healthy runs.
    Recover,
    /// Out-of-core spill I/O: writing partition projections to disk and
    /// loading them back for mining. Zero unless the spill rung runs.
    Spill,
}

/// Number of phases; keep in sync with [`Phase::ALL`].
const NUM_PHASES: usize = 7;

impl Phase {
    /// All phases in pipeline order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Read,
        Phase::Count,
        Phase::Build,
        Phase::Convert,
        Phase::Mine,
        Phase::Recover,
        Phase::Spill,
    ];

    /// Stable lower-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Read => "read",
            Phase::Count => "count",
            Phase::Build => "build",
            Phase::Convert => "convert",
            Phase::Mine => "mine",
            Phase::Recover => "recover",
            Phase::Spill => "spill",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Phase::Read => 0,
            Phase::Count => 1,
            Phase::Build => 2,
            Phase::Convert => 3,
            Phase::Mine => 4,
            Phase::Recover => 5,
            Phase::Spill => 6,
        }
    }

    pub(crate) fn from_index(i: usize) -> Option<Phase> {
        Phase::ALL.get(i).copied()
    }
}

static PHASE_NANOS: [AtomicU64; NUM_PHASES] = [const { AtomicU64::new(0) }; NUM_PHASES];
static PHASE_COUNTS: [AtomicU64; NUM_PHASES] = [const { AtomicU64::new(0) }; NUM_PHASES];

/// Most recently *entered* phase, as `index + 1` (0 = none yet). Spans
/// nest and overlap across workers, so this is a display hint for the
/// live progress meter, not an accounting structure; it is deliberately
/// not cleared when a span ends.
static CURRENT_PHASE: AtomicU64 = AtomicU64::new(0);

/// Starts a span attributed to `phase`. The span ends (and its duration
/// is recorded) when the returned guard drops. When tracing is disabled
/// the guard is inert and the call costs one relaxed load. With event
/// capture on, the guard additionally records `PhaseBegin`/`PhaseEnd`
/// on the calling thread's timeline track.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { started: None };
    }
    CURRENT_PHASE.store(phase.index() as u64 + 1, Ordering::Relaxed);
    if crate::events::capturing() {
        crate::events::record(crate::events::EventKind::PhaseBegin(phase));
    }
    SpanGuard { started: Some((phase, Instant::now())) }
}

/// The phase most recently entered by any thread, if spans have run.
pub fn current_phase() -> Option<Phase> {
    match CURRENT_PHASE.load(Ordering::Relaxed) {
        0 => None,
        i => Phase::from_index(i as usize - 1),
    }
}

/// RAII guard returned by [`span`]; records on drop.
#[derive(Debug)]
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard {
    started: Option<(Phase, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((phase, start)) = self.started {
            let nanos = start.elapsed().as_nanos() as u64;
            PHASE_NANOS[phase.index()].fetch_add(nanos, Ordering::Relaxed);
            PHASE_COUNTS[phase.index()].fetch_add(1, Ordering::Relaxed);
            if crate::events::capturing() {
                crate::events::record(crate::events::EventKind::PhaseEnd(phase));
            }
        }
    }
}

/// Accumulated timing of one phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Stable phase name (`"read"`, `"count"`, ...).
    pub name: &'static str,
    /// Total wall nanoseconds spent in the phase across all spans.
    pub nanos: u64,
    /// Number of spans recorded (workers entering the phase, retries, ...).
    pub count: u64,
}

/// All phases in pipeline order with their accumulated times.
pub fn phase_snapshot() -> Vec<PhaseSpan> {
    Phase::ALL
        .iter()
        .map(|&p| PhaseSpan {
            name: p.name(),
            nanos: PHASE_NANOS[p.index()].load(Ordering::Relaxed),
            count: PHASE_COUNTS[p.index()].load(Ordering::Relaxed),
        })
        .collect()
}

/// Zeroes all phase accumulators and the current-phase hint.
pub fn reset() {
    for i in 0..NUM_PHASES {
        PHASE_NANOS[i].store(0, Ordering::Relaxed);
        PHASE_COUNTS[i].store(0, Ordering::Relaxed);
    }
    CURRENT_PHASE.store(0, Ordering::Relaxed);
}

/// Records one conditional-tree recursion at `depth` (length of the
/// current suffix) over a pattern base of `pattern_base_size` paths.
///
/// Callers must check [`crate::enabled()`] first — this is the per-item
/// hot path of the mine phase.
#[inline]
pub fn conditional_tree(depth: usize, pattern_base_size: usize) {
    CORE_CONDITIONAL_TREES.inc();
    CORE_DEPTH.record(depth);
    CORE_MAX_DEPTH.record(depth as u64);
    CORE_PATTERN_BASE_LOG2.record_log2(pattern_base_size as u64);
}

/// Records one recursion answered by the single-path short-circuit
/// (§3.2: a chain suffix enumerates its subsets directly).
#[inline]
pub fn single_path() {
    CORE_SINGLE_PATH_SHORTCUTS.inc();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    static SPAN_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        SPAN_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        crate::set_enabled(false);
        reset();
        {
            let _s = span(Phase::Build);
        }
        assert!(phase_snapshot().iter().all(|p| p.nanos == 0 && p.count == 0));
    }

    #[test]
    fn enabled_spans_accumulate() {
        let _g = lock();
        crate::set_enabled(true);
        reset();
        {
            let _s = span(Phase::Mine);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _s = span(Phase::Mine);
        }
        let mine = phase_snapshot().into_iter().find(|p| p.name == "mine").unwrap();
        assert_eq!(mine.count, 2);
        assert!(mine.nanos >= 2_000_000, "slept 2ms but recorded {}ns", mine.nanos);
        crate::set_enabled(false);
        reset();
    }

    #[test]
    fn snapshot_is_in_pipeline_order() {
        let names: Vec<_> = phase_snapshot().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["read", "count", "build", "convert", "mine", "recover", "spill"]);
    }
}
