//! The flight recorder: checksummed `cfp-blackbox/1` post-mortem
//! reports dumped when a run dies.
//!
//! The richest diagnostic state of a failing run — the per-thread event
//! ring buffers, the counter registry, the latency histograms — normally
//! evaporates with the process. When `--blackbox <dir>` is armed, the
//! CLI captures a [`BlackboxReport`] on any error exit (stable exit
//! codes 3–10), on a main-thread panic, or after a recovery-rung
//! escalation fails, and writes it atomically to `<dir>/blackbox.json`.
//!
//! The document is self-describing and tamper-evident:
//!
//! ```json
//! { "schema": "cfp-blackbox/1",
//!   "checksum": "fnv1a64:<16 hex digits over the compact body>",
//!   "body": { "error": ..., "exit_code": ..., "context": {...},
//!             "phases": [...], "counters": {...}, "hists": {...},
//!             "memory": {...}, "memstat": {...}?, "degradation": {...}?,
//!             "tracks": [ { "name", "tid", "recorded", "dropped",
//!                           "events": [{ "t_nanos", "kind", "detail" }] } ] } }
//! ```
//!
//! [`load`] verifies the checksum by re-serializing the body compactly,
//! and [`render`] pretty-prints a report for `cfp-repro postmortem`.

use std::fs;
use std::path::{Path, PathBuf};

use crate::counters;
use crate::events::{self, Event, EventKind, TrackDump};
use crate::hist::{self, HistSummary};
use crate::json::Json;
use crate::memstat::MemSummary;
use crate::report::DegradationReport;
use crate::span::{self, PhaseSpan};

/// Schema identifier of the post-mortem document.
pub const SCHEMA: &str = "cfp-blackbox/1";

/// Events kept per track: the newest `LAST_EVENTS_PER_TRACK` survive
/// into the report (the rings already drop oldest-first, this just
/// bounds the document size for huge ring capacities).
pub const LAST_EVENTS_PER_TRACK: usize = 256;

/// 64-bit FNV-1a over a byte slice — same function the checkpoint
/// manifest uses; `cfp-trace` sits below `cfp-core` in the crate graph,
/// so the 6 lines are duplicated rather than imported.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything the flight recorder captures about a dying run.
pub struct BlackboxReport {
    /// The error chain as the user would have seen it on stderr.
    pub error: String,
    /// Stable exit code the process is about to die with.
    pub exit_code: i64,
    /// Run identity: dataset, algorithm, threads, support, ...
    pub context: Vec<(String, String)>,
    /// Accumulated phase spans at capture time.
    pub phases: Vec<PhaseSpan>,
    /// Full counter/gauge registry.
    pub counters: Vec<(&'static str, u64)>,
    /// Non-empty latency histogram summaries.
    pub hists: Vec<HistSummary>,
    /// Per-thread ring-buffer dumps, truncated to the newest
    /// [`LAST_EVENTS_PER_TRACK`] events each.
    pub tracks: Vec<TrackDump>,
    /// Space-domain summary, when the run had a metered pool.
    pub memstat: Option<MemSummary>,
    /// Recovery-ladder activity, when the supervisor ran.
    pub degradation: Option<DegradationReport>,
}

impl BlackboxReport {
    /// Drain the live instrumentation state into a report. Stops event
    /// capture first so the drained rings are quiescent.
    pub fn capture(
        error: impl Into<String>,
        exit_code: i64,
        context: Vec<(String, String)>,
        memstat: Option<MemSummary>,
        degradation: Option<DegradationReport>,
    ) -> Self {
        events::set_capture(false);
        let mut tracks = events::drain();
        for t in &mut tracks {
            if t.events.len() > LAST_EVENTS_PER_TRACK {
                let skip = t.events.len() - LAST_EVENTS_PER_TRACK;
                t.events.drain(..skip);
            }
        }
        BlackboxReport {
            error: error.into(),
            exit_code,
            context,
            phases: span::phase_snapshot(),
            counters: counters::snapshot(),
            hists: hist::summaries(),
            tracks,
            memstat,
            degradation,
        }
    }

    fn body_json(&self) -> Json {
        let context = self.context.iter().map(|(k, v)| (k.clone(), Json::str(v.clone()))).collect();
        let phases = self
            .phases
            .iter()
            .filter(|p| p.count > 0)
            .map(|p| {
                Json::Obj(vec![
                    ("name".into(), Json::str(p.name)),
                    ("nanos".into(), Json::u64(p.nanos)),
                    ("count".into(), Json::u64(p.count)),
                ])
            })
            .collect();
        let counters =
            self.counters.iter().map(|&(name, v)| (name.to_string(), Json::u64(v))).collect();
        let hists = self
            .hists
            .iter()
            .map(|h| {
                (
                    h.name.to_string(),
                    Json::Obj(vec![
                        ("count".into(), Json::u64(h.count)),
                        ("sum".into(), Json::u64(h.sum)),
                        ("max".into(), Json::u64(h.max)),
                        ("p50".into(), Json::u64(h.p50)),
                        ("p90".into(), Json::u64(h.p90)),
                        ("p99".into(), Json::u64(h.p99)),
                        ("p999".into(), Json::u64(h.p999)),
                    ]),
                )
            })
            .collect();
        let lookup = |name: &str| {
            self.counters.iter().find(|&&(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
        };
        let memory = Json::Obj(vec![
            ("footprint_bytes".into(), Json::u64(lookup("memman.footprint_bytes"))),
            ("peak_bytes".into(), Json::u64(lookup("memman.peak_footprint_bytes"))),
            ("pool_peak_bytes".into(), Json::u64(lookup("memman.pool_peak_bytes"))),
        ]);
        let tracks = self.tracks.iter().map(track_json).collect();

        let mut body = vec![
            ("error".into(), Json::str(self.error.clone())),
            ("exit_code".into(), Json::Num(self.exit_code as f64)),
            ("context".into(), Json::Obj(context)),
            ("phases".into(), Json::Arr(phases)),
            ("counters".into(), Json::Obj(counters)),
            ("hists".into(), Json::Obj(hists)),
            ("memory".into(), memory),
        ];
        if let Some(m) = &self.memstat {
            body.push(("memstat".into(), m.to_json()));
        }
        if let Some(d) = &self.degradation {
            body.push(("degradation".into(), degradation_json(d)));
        }
        body.push(("tracks".into(), Json::Arr(tracks)));
        Json::Obj(body)
    }

    /// The full checksummed document.
    pub fn to_json(&self) -> Json {
        let body = self.body_json();
        let sum = fnv1a64(body.to_compact().as_bytes());
        Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("checksum".into(), Json::str(format!("fnv1a64:{sum:016x}"))),
            ("body".into(), body),
        ])
    }

    /// Atomically write the report to `dir/blackbox.json`, creating
    /// `dir` if needed. Returns the report path.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join("blackbox.json");
        let text = format!("{}\n", self.to_json().to_pretty());
        crate::metrics::write_atomic_small(&path, text.as_bytes())?;
        Ok(path)
    }
}

fn track_json(t: &TrackDump) -> Json {
    let events = t
        .events
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("t_nanos".into(), Json::u64(e.t_nanos)),
                ("kind".into(), Json::str(e.kind.name())),
                ("detail".into(), Json::str(event_detail(e))),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("name".into(), Json::str(t.name.clone())),
        ("tid".into(), Json::u64(t.tid as u64)),
        ("recorded".into(), Json::u64(t.recorded)),
        ("dropped".into(), Json::u64(t.dropped)),
        ("events".into(), Json::Arr(events)),
    ])
}

fn degradation_json(d: &DegradationReport) -> Json {
    let rungs = d
        .rungs
        .iter()
        .map(|r| {
            let mut o = vec![
                ("rung".into(), Json::str(r.rung.clone())),
                ("succeeded".into(), Json::Bool(r.succeeded)),
                ("reclaimed_bytes".into(), Json::u64(r.reclaimed_bytes)),
                ("partitions".into(), Json::u64(r.partitions)),
            ];
            if let Some(e) = &r.error {
                o.push(("error".into(), Json::str(e.clone())));
            }
            Json::Obj(o)
        })
        .collect();
    Json::Obj(vec![
        ("policy".into(), Json::str(d.policy.clone())),
        ("recovered".into(), Json::Bool(d.recovered)),
        ("final_partitions".into(), Json::u64(d.final_partitions)),
        ("rungs".into(), Json::Arr(rungs)),
    ])
}

/// Human-readable one-liner for an event, used in the report and the
/// postmortem rendering.
fn event_detail(e: &Event) -> String {
    match e.kind {
        EventKind::PhaseBegin(p) => format!("enter {}", p.name()),
        EventKind::PhaseEnd(p) => format!("exit {}", p.name()),
        EventKind::TaskClaim { item, cost, stolen } => {
            format!("item {item} cost {cost}{}", if stolen { " (stolen)" } else { "" })
        }
        EventKind::RecEnter { item, depth, pattern_base } => {
            format!("item {item} depth {depth} base {pattern_base}")
        }
        EventKind::RecExit { item } => format!("item {item}"),
        EventKind::ArenaPressure { requested } => format!("requested {requested} B"),
        EventKind::ArenaCompact { reclaimed } => format!("reclaimed {reclaimed} B"),
        EventKind::ArenaReset => String::new(),
        EventKind::RecoveryRung(r) => r.name().to_string(),
        EventKind::BufferSwap { rows } => format!("{rows} rows"),
        EventKind::SpillIo { bytes, write } => {
            format!("{} {bytes} B", if write { "write" } else { "read" })
        }
    }
}

/// Verify a parsed document's schema and checksum; returns the `body`
/// on success.
pub fn verify(doc: &Json) -> Result<&Json, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unsupported schema {s:?} (expected {SCHEMA:?})")),
        None => return Err("missing schema field".into()),
    }
    let declared = doc.get("checksum").and_then(Json::as_str).ok_or("missing checksum field")?;
    let body = doc.get("body").ok_or("missing body field")?;
    let actual = format!("fnv1a64:{:016x}", fnv1a64(body.to_compact().as_bytes()));
    if declared != actual {
        return Err(format!(
            "checksum mismatch: document says {declared}, body hashes to {actual}"
        ));
    }
    Ok(body)
}

/// Read, parse, and verify a blackbox report file; returns the body.
pub fn load(path: &Path) -> Result<Json, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = crate::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let body = verify(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(body.clone())
}

fn fmt_ms(nanos: u64) -> String {
    format!("{:.3}ms", nanos as f64 / 1e6)
}

/// Pretty-print a verified report body for `cfp-repro postmortem`.
pub fn render(body: &Json) -> String {
    let mut out = String::new();
    let error = body.get("error").and_then(Json::as_str).unwrap_or("?");
    let code = body.get("exit_code").and_then(Json::as_u64).unwrap_or(0);
    out.push_str(&format!("{SCHEMA} post-mortem\n"));
    out.push_str(&format!("error     : {error}\n"));
    out.push_str(&format!("exit code : {code}\n"));

    if let Some(Json::Obj(ctx)) = body.get("context") {
        for (k, v) in ctx {
            let v = v.as_str().map(String::from).unwrap_or_else(|| v.to_compact());
            out.push_str(&format!("context   : {k} = {v}\n"));
        }
    }

    if let Some(Json::Arr(phases)) = body.get("phases") {
        if !phases.is_empty() {
            out.push_str("\nphases:\n");
            for p in phases {
                let name = p.get("name").and_then(Json::as_str).unwrap_or("?");
                let nanos = p.get("nanos").and_then(Json::as_u64).unwrap_or(0);
                let count = p.get("count").and_then(Json::as_u64).unwrap_or(0);
                out.push_str(&format!("  {name:<10} {:>12}  x{count}\n", fmt_ms(nanos)));
            }
        }
    }

    if let Some(Json::Obj(hists)) = body.get("hists") {
        if !hists.is_empty() {
            out.push_str("\nlatency histograms (nanos):\n");
            for (name, h) in hists {
                let g = |k: &str| h.get(k).and_then(Json::as_u64).unwrap_or(0);
                out.push_str(&format!(
                    "  {name:<26} n={:<8} p50={:<10} p99={:<10} p99.9={:<10} max={}\n",
                    g("count"),
                    g("p50"),
                    g("p99"),
                    g("p999"),
                    g("max"),
                ));
            }
        }
    }

    if let Some(mem) = body.get("memory") {
        let g = |k: &str| mem.get(k).and_then(Json::as_u64).unwrap_or(0);
        out.push_str(&format!(
            "\nmemory: footprint {} B, peak {} B, pool peak {} B\n",
            g("footprint_bytes"),
            g("peak_bytes"),
            g("pool_peak_bytes"),
        ));
    }

    if let Some(d) = body.get("degradation") {
        let policy = d.get("policy").and_then(Json::as_str).unwrap_or("?");
        let recovered = matches!(d.get("recovered"), Some(Json::Bool(true)));
        out.push_str(&format!("\ndegradation: policy {policy}, recovered: {recovered}\n"));
        if let Some(Json::Arr(rungs)) = d.get("rungs") {
            for r in rungs {
                let name = r.get("rung").and_then(Json::as_str).unwrap_or("?");
                let ok = matches!(r.get("succeeded"), Some(Json::Bool(true)));
                let err = r.get("error").and_then(Json::as_str).unwrap_or("");
                out.push_str(&format!(
                    "  rung {name:<10} {}{}{}\n",
                    if ok { "succeeded" } else { "failed" },
                    if err.is_empty() { "" } else { ": " },
                    err
                ));
            }
        }
    }

    if let Some(Json::Obj(counters)) = body.get("counters") {
        let nonzero: Vec<_> =
            counters.iter().filter(|(_, v)| v.as_u64().unwrap_or(0) != 0).collect();
        if nonzero.is_empty() {
            // A crash before the first increment is itself a finding —
            // say so rather than dropping the section.
            out.push_str(&format!(
                "\ncounters (non-zero): none of {} registered\n",
                counters.len()
            ));
        } else {
            out.push_str("\ncounters (non-zero):\n");
            for (name, v) in nonzero {
                out.push_str(&format!("  {name:<28} {}\n", v.as_u64().unwrap_or(0)));
            }
        }
    }

    if let Some(Json::Arr(tracks)) = body.get("tracks") {
        for t in tracks {
            let name = t.get("name").and_then(Json::as_str).unwrap_or("?");
            let recorded = t.get("recorded").and_then(Json::as_u64).unwrap_or(0);
            let dropped = t.get("dropped").and_then(Json::as_u64).unwrap_or(0);
            let events = match t.get("events") {
                Some(Json::Arr(e)) => e.as_slice(),
                _ => &[],
            };
            out.push_str(&format!(
                "\ntrack {name} (recorded {recorded}, dropped {dropped}; last {} events):\n",
                events.len()
            ));
            for e in events {
                let t_nanos = e.get("t_nanos").and_then(Json::as_u64).unwrap_or(0);
                let kind = e.get("kind").and_then(Json::as_str).unwrap_or("?");
                let detail = e.get("detail").and_then(Json::as_str).unwrap_or("");
                out.push_str(&format!("  +{:>14} {kind:<14} {detail}\n", fmt_ms(t_nanos)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BlackboxReport {
        BlackboxReport {
            error: "memory exhausted: test".into(),
            exit_code: 4,
            context: vec![("dataset".into(), "baskets.dat".into())],
            phases: vec![],
            counters: vec![("core.items_mined", 17)],
            hists: vec![],
            tracks: vec![],
            memstat: None,
            degradation: None,
        }
    }

    #[test]
    fn round_trip_verifies() {
        let doc = sample_report().to_json();
        let parsed = crate::json::parse(&doc.to_pretty()).expect("parse");
        let body = verify(&parsed).expect("verify");
        assert_eq!(body.get("error").and_then(Json::as_str), Some("memory exhausted: test"));
        assert_eq!(body.get("exit_code").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn tampering_breaks_the_checksum() {
        let doc = sample_report().to_json();
        let tampered = doc.to_pretty().replace("\"exit_code\": 4", "\"exit_code\": 5");
        let parsed = crate::json::parse(&tampered).expect("parse");
        let err = verify(&parsed).expect_err("tamper must fail");
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn render_mentions_the_error_and_counters() {
        let doc = sample_report().to_json();
        let body = verify(&doc).expect("verify");
        let text = render(body);
        assert!(text.contains("memory exhausted: test"));
        assert!(text.contains("core.items_mined"));
        assert!(text.contains("cfp-blackbox/1 post-mortem"));
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a 64 of "a" is 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
