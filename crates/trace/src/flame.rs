//! Folded-stack flamegraph export of the conditional-tree descent.
//!
//! Emits the semicolon-separated format consumed by `flamegraph.pl` and
//! speedscope: one line per unique item path, `mine;i<a>;i<b> <value>`,
//! where the frames are the conditional suffix (global item ids, outermost
//! first) and the value is *self time* in nanoseconds — the recursion's
//! wall time minus the wall time of its child recursions, so stacking the
//! rectangles reproduces inclusive time without double counting.
//!
//! Like the Chrome exporter, the enter/exit stream is replayed per track
//! and unmatched events (possible after ring-buffer overflow) are
//! discarded, never guessed at.

use crate::events::{EventKind, TrackDump};
use std::collections::BTreeMap;

struct Frame {
    item: u32,
    entered_nanos: u64,
    child_nanos: u64,
}

/// Folds every track's recursion events into `path value` lines, sorted
/// by path so the output is deterministic. Returns an empty string when
/// no recursion completed on any track.
pub fn folded_stacks(tracks: &[TrackDump]) -> String {
    // Self-times from different workers with the same item path merge
    // into one line, exactly like merged stack samples from flamegraph
    // collapse scripts.
    let mut self_nanos: BTreeMap<String, u64> = BTreeMap::new();
    for track in tracks {
        let mut stack: Vec<Frame> = Vec::new();
        for event in &track.events {
            match event.kind {
                EventKind::RecEnter { item, .. } => {
                    stack.push(Frame { item, entered_nanos: event.t_nanos, child_nanos: 0 });
                }
                EventKind::RecExit { item } => {
                    // See chrome.rs: resynchronise on the nearest enter,
                    // discarding frames whose exits were dropped.
                    let Some(pos) = stack.iter().rposition(|f| f.item == item) else {
                        continue;
                    };
                    stack.truncate(pos + 1);
                    let frame = stack.pop().expect("rposition found an entry");
                    let total = event.t_nanos.saturating_sub(frame.entered_nanos);
                    if let Some(parent) = stack.last_mut() {
                        parent.child_nanos += total;
                    }
                    let mut path = String::from("mine");
                    for f in &stack {
                        path.push_str(&format!(";i{}", f.item));
                    }
                    path.push_str(&format!(";i{item}"));
                    *self_nanos.entry(path).or_insert(0) += total.saturating_sub(frame.child_nanos);
                }
                _ => {}
            }
        }
    }
    let mut out = String::new();
    for (path, nanos) in &self_nanos {
        out.push_str(path);
        out.push(' ');
        out.push_str(&nanos.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;

    fn track(events: Vec<(u64, EventKind)>) -> TrackDump {
        let events: Vec<Event> =
            events.into_iter().map(|(t_nanos, kind)| Event { t_nanos, kind }).collect();
        let recorded = events.len() as u64;
        TrackDump { name: "w".into(), tid: 1, events, recorded, dropped: 0 }
    }

    fn enter(item: u32) -> EventKind {
        EventKind::RecEnter { item, depth: 0, pattern_base: 1 }
    }

    #[test]
    fn self_time_excludes_children_and_paths_nest() {
        // i7 runs 100ns total, of which i3 (nested) takes 40ns.
        let t = track(vec![
            (0, enter(7)),
            (30, enter(3)),
            (70, EventKind::RecExit { item: 3 }),
            (100, EventKind::RecExit { item: 7 }),
        ]);
        let folded = folded_stacks(&[t]);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["mine;i7 60", "mine;i7;i3 40"]);
    }

    #[test]
    fn same_path_across_tracks_merges_and_output_is_sorted() {
        let a = track(vec![(0, enter(2)), (10, EventKind::RecExit { item: 2 })]);
        let b = track(vec![(5, enter(2)), (20, EventKind::RecExit { item: 2 })]);
        assert_eq!(folded_stacks(&[a, b]), "mine;i2 25\n");
    }

    #[test]
    fn unmatched_events_fold_to_nothing() {
        let t = track(vec![
            (0, EventKind::RecExit { item: 5 }),
            (10, enter(6)),
            (20, EventKind::ArenaReset),
        ]);
        assert_eq!(folded_stacks(&[t]), "");
    }
}
