//! The versioned space-domain report (`cfp-memstat/1`).
//!
//! `cfp-mine --mem-report out.json` and `cfp-repro inspect` serialise a
//! [`MemStatReport`] — one JSON document answering the questions the
//! paper's memory claims raise: *where did the bytes go* (per-component
//! attribution through the budget pool), *does the accounting reconcile*
//! (the audit section), *how is each structure built* (per-structure
//! node/byte breakdowns), *what did each §2.3 encoding trick save*
//! (itemized savings ladder), and *how does the CFP representation
//! compare against FP-tree baselines built from the same counts* (the
//! compression table).
//!
//! Like `cfp-profile`, the document is self-describing via its `schema`
//! field and hand-rolled on the [`Json`] value type — no dependencies.
//! This module holds only the data model and its (de)serialisation;
//! assembling a report from a live run happens in the CLI and bench
//! layers, which can see the pool, the trees, and the baselines at once.

use crate::json::Json;

/// Schema identifier of the memstat document layout.
pub const SCHEMA: &str = "cfp-memstat/1";

/// Whether `schema` names a memstat layout this crate can read.
pub fn schema_is_supported(schema: &str) -> bool {
    schema == SCHEMA
}

/// One per-component attribution row: live and high-water bytes a
/// pipeline component holds through the budget pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentRow {
    /// Component label (`"build-tree"`, `"cond-trees"`, ...).
    pub component: String,
    /// Bytes the component holds at capture time.
    pub live: u64,
    /// High-water bytes over the run.
    pub peak: u64,
}

/// The `attribution` section: the budget pool's view of who holds what.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Pool byte limit; `None` for an unlimited pool.
    pub limit: Option<u64>,
    /// Metered bytes reserved at capture time (arena carved bytes).
    pub pool_used: u64,
    /// High-water mark of metered bytes.
    pub pool_peak: u64,
    /// Unmetered bytes charged at capture time (flat buffers tracked
    /// for attribution only — they never affect admission).
    pub external_used: u64,
    /// Per-component rows, in registry order.
    pub components: Vec<ComponentRow>,
}

/// The `audit` section: does the tracked accounting reconcile against
/// the pool, the arena, and (on Linux) the process RSS?
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Audit {
    /// Sum of per-component live bytes.
    pub components_total: u64,
    /// Pool-accounted bytes (`pool_used + external_used`). The audit
    /// requires `components_total == accounted` *exactly*.
    pub accounted: u64,
    /// Whether the exact per-component identity held.
    pub reconciled: bool,
    /// Carved bytes of the audited arena (`footprint() - 1`; the burned
    /// null byte is excluded so this matches the pool reservation).
    pub arena_carved: u64,
    /// Bytes the arena's backing `Vec` has reserved from the OS
    /// allocator. May exceed `arena_carved` by the documented slack
    /// bound (geometric growth reserves at most 2x ahead).
    pub arena_reserved: u64,
    /// `arena_reserved / max(arena_carved, 1)` — must stay within the
    /// slack bound for the audit to pass.
    pub reserved_slack: f64,
    /// Whether `arena_reserved <= slack_bound * arena_carved` (plus a
    /// small absolute floor for tiny arenas).
    pub within_slack: bool,
    /// Process resident-set bytes from `/proc/self/status` (Linux);
    /// informational only — never part of the pass/fail verdict.
    pub rss_bytes: Option<u64>,
}

/// One per-structure report: how many logical nodes a representation
/// holds and what they cost, with free-form named detail rows (node
/// kinds, field bytes, index bytes, ...).
#[derive(Clone, Debug, PartialEq)]
pub struct StructureReport {
    /// Structure name (`"cfp-tree"`, `"cfp-array"`, `"fp-tree"`, ...).
    pub name: String,
    /// Logical FP-tree nodes the structure represents.
    pub logical_nodes: u64,
    /// Total bytes of the structure.
    pub bytes: u64,
    /// `bytes / logical_nodes` (0 when empty).
    pub bytes_per_node: f64,
    /// `bytes / transactions` (0 when unknown).
    pub bytes_per_transaction: f64,
    /// Named detail rows, in display order.
    pub detail: Vec<(String, u64)>,
}

/// One row of the compression-ratio table: a representation built from
/// the same item counts, its bytes, and its size relative to the
/// in-memory FP-tree baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressionRow {
    /// Representation name (`"fp-tree"`, `"cfp-tree"`, ...).
    pub representation: String,
    /// Total bytes of this representation.
    pub bytes: u64,
    /// `bytes / fp-tree bytes` — below 1.0 means smaller than the
    /// baseline.
    pub ratio_vs_fptree: f64,
}

/// One itemized savings row: bytes a single encoding trick avoided (or,
/// for overhead rows, added) relative to a naive pointer-based node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SavingsRow {
    /// Trick or overhead name (`"ptr40"`, `"null-suppression"`, ...).
    pub name: String,
    /// Bytes saved (positive) or added (overhead rows).
    pub bytes: i64,
}

/// One distribution summary (count / p50 / p95 / max over log2
/// buckets), replacing the ad-hoc single maxima of earlier reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DistRow {
    /// Distribution name (`"recursion_depth"`, `"cond_tree_bytes"`).
    pub name: String,
    /// Recorded samples.
    pub count: u64,
    /// Upper bound of the median bucket.
    pub p50: u64,
    /// Upper bound of the 95th-percentile bucket.
    pub p95: u64,
    /// Upper bound of the highest non-empty bucket.
    pub max: u64,
}

/// Everything `--mem-report` writes about one mining run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemStatReport {
    /// Dataset path or profile name.
    pub dataset: String,
    /// Transactions mined.
    pub transactions: u64,
    /// Absolute minimum support used.
    pub support: u64,
    /// Algorithm name as selected on the command line.
    pub algorithm: String,
    /// Worker threads (1 = sequential).
    pub threads: u64,
    /// The budget pool's attribution section.
    pub attribution: Attribution,
    /// The reconciliation audit.
    pub audit: Audit,
    /// Per-structure breakdowns.
    pub structures: Vec<StructureReport>,
    /// The compression-ratio table vs the FP-tree baseline.
    pub compression: Vec<CompressionRow>,
    /// The itemized savings ladder.
    pub savings: Vec<SavingsRow>,
    /// Mine-phase distribution summaries.
    pub distributions: Vec<DistRow>,
}

/// Compact per-component summary folded into `cfp-profile/2` reports
/// and `cfp-bench/1` snapshots, so time-domain consumers can diff
/// memory without parsing a full memstat document.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemSummary {
    /// High-water mark of metered pool bytes.
    pub pool_peak: u64,
    /// Whether the attribution audit reconciled exactly.
    pub reconciled: bool,
    /// `(component, peak_bytes)` rows, in registry order.
    pub component_peaks: Vec<(String, u64)>,
}

impl MemSummary {
    /// Serialises the summary block (shared by profile and memstat
    /// consumers).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("pool_peak".into(), Json::u64(self.pool_peak)),
            ("reconciled".into(), Json::Bool(self.reconciled)),
            (
                "component_peaks".into(),
                Json::Obj(
                    self.component_peaks
                        .iter()
                        .map(|(name, peak)| (name.clone(), Json::u64(*peak)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Reads a summary block back. Unknown fields are ignored; missing
    /// fields default to zero so older documents stay readable.
    pub fn from_json(doc: &Json) -> MemSummary {
        let component_peaks = match doc.get("component_peaks") {
            Some(Json::Obj(members)) => {
                members.iter().filter_map(|(k, v)| v.as_u64().map(|p| (k.clone(), p))).collect()
            }
            _ => Vec::new(),
        };
        MemSummary {
            pool_peak: doc.get("pool_peak").and_then(Json::as_u64).unwrap_or(0),
            reconciled: matches!(doc.get("reconciled"), Some(Json::Bool(true))),
            component_peaks,
        }
    }
}

impl MemStatReport {
    /// Serialises to the `cfp-memstat/1` JSON document.
    pub fn to_json(&self) -> Json {
        let run = Json::Obj(vec![
            ("dataset".into(), Json::str(self.dataset.clone())),
            ("transactions".into(), Json::u64(self.transactions)),
            ("support".into(), Json::u64(self.support)),
            ("algorithm".into(), Json::str(self.algorithm.clone())),
            ("threads".into(), Json::u64(self.threads)),
        ]);
        let a = &self.attribution;
        let attribution = Json::Obj(vec![
            ("limit".into(), a.limit.map_or(Json::Null, Json::u64)),
            ("pool_used".into(), Json::u64(a.pool_used)),
            ("pool_peak".into(), Json::u64(a.pool_peak)),
            ("external_used".into(), Json::u64(a.external_used)),
            (
                "components".into(),
                Json::Arr(
                    a.components
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("component".into(), Json::str(c.component.clone())),
                                ("live".into(), Json::u64(c.live)),
                                ("peak".into(), Json::u64(c.peak)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let au = &self.audit;
        let audit = Json::Obj(vec![
            ("components_total".into(), Json::u64(au.components_total)),
            ("accounted".into(), Json::u64(au.accounted)),
            ("reconciled".into(), Json::Bool(au.reconciled)),
            ("arena_carved".into(), Json::u64(au.arena_carved)),
            ("arena_reserved".into(), Json::u64(au.arena_reserved)),
            ("reserved_slack".into(), Json::Num(au.reserved_slack)),
            ("within_slack".into(), Json::Bool(au.within_slack)),
            ("rss_bytes".into(), au.rss_bytes.map_or(Json::Null, Json::u64)),
        ]);
        let structures = Json::Arr(
            self.structures
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("name".into(), Json::str(s.name.clone())),
                        ("logical_nodes".into(), Json::u64(s.logical_nodes)),
                        ("bytes".into(), Json::u64(s.bytes)),
                        ("bytes_per_node".into(), Json::Num(s.bytes_per_node)),
                        ("bytes_per_transaction".into(), Json::Num(s.bytes_per_transaction)),
                        (
                            "detail".into(),
                            Json::Obj(
                                s.detail.iter().map(|(k, v)| (k.clone(), Json::u64(*v))).collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let compression = Json::Arr(
            self.compression
                .iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("representation".into(), Json::str(r.representation.clone())),
                        ("bytes".into(), Json::u64(r.bytes)),
                        ("ratio_vs_fptree".into(), Json::Num(r.ratio_vs_fptree)),
                    ])
                })
                .collect(),
        );
        let savings = Json::Obj(
            self.savings.iter().map(|r| (r.name.clone(), Json::Num(r.bytes as f64))).collect(),
        );
        let distributions = Json::Obj(
            self.distributions
                .iter()
                .map(|d| {
                    (
                        d.name.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::u64(d.count)),
                            ("p50".into(), Json::u64(d.p50)),
                            ("p95".into(), Json::u64(d.p95)),
                            ("max".into(), Json::u64(d.max)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("run".into(), run),
            ("attribution".into(), attribution),
            ("audit".into(), audit),
            ("structures".into(), structures),
            ("compression".into(), compression),
            ("savings".into(), savings),
            ("distributions".into(), distributions),
        ])
    }

    /// Reads a `cfp-memstat/1` document back.
    ///
    /// Unknown fields are ignored (forward compatibility); a missing or
    /// unsupported `schema` is a clear error, never a panic.
    pub fn from_json(doc: &Json) -> Result<MemStatReport, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| "memstat document has no schema field".to_string())?;
        if !schema_is_supported(schema) {
            return Err(format!("unsupported memstat schema {schema:?} (want {SCHEMA:?})"));
        }
        let u = |node: Option<&Json>, key: &str| -> u64 {
            node.and_then(|n| n.get(key)).and_then(Json::as_u64).unwrap_or(0)
        };
        let f = |node: Option<&Json>, key: &str| -> f64 {
            node.and_then(|n| n.get(key)).and_then(Json::as_f64).unwrap_or(0.0)
        };
        let b = |node: Option<&Json>, key: &str| -> bool {
            matches!(node.and_then(|n| n.get(key)), Some(Json::Bool(true)))
        };
        let s = |node: Option<&Json>, key: &str| -> String {
            node.and_then(|n| n.get(key)).and_then(Json::as_str).unwrap_or("").to_string()
        };
        let run = doc.get("run");
        let att = doc.get("attribution");
        let components = att
            .and_then(|a| a.get("components"))
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|c| ComponentRow {
                component: s(Some(c), "component"),
                live: u(Some(c), "live"),
                peak: u(Some(c), "peak"),
            })
            .collect();
        let audit = doc.get("audit");
        let structures = doc
            .get("structures")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|st| {
                let detail = match st.get("detail") {
                    Some(Json::Obj(members)) => members
                        .iter()
                        .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                        .collect(),
                    _ => Vec::new(),
                };
                StructureReport {
                    name: s(Some(st), "name"),
                    logical_nodes: u(Some(st), "logical_nodes"),
                    bytes: u(Some(st), "bytes"),
                    bytes_per_node: f(Some(st), "bytes_per_node"),
                    bytes_per_transaction: f(Some(st), "bytes_per_transaction"),
                    detail,
                }
            })
            .collect();
        let compression = doc
            .get("compression")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|r| CompressionRow {
                representation: s(Some(r), "representation"),
                bytes: u(Some(r), "bytes"),
                ratio_vs_fptree: f(Some(r), "ratio_vs_fptree"),
            })
            .collect();
        let savings = match doc.get("savings") {
            Some(Json::Obj(members)) => members
                .iter()
                .filter_map(|(k, v)| {
                    v.as_f64().map(|n| SavingsRow { name: k.clone(), bytes: n as i64 })
                })
                .collect(),
            _ => Vec::new(),
        };
        let distributions = match doc.get("distributions") {
            Some(Json::Obj(members)) => members
                .iter()
                .map(|(k, v)| DistRow {
                    name: k.clone(),
                    count: u(Some(v), "count"),
                    p50: u(Some(v), "p50"),
                    p95: u(Some(v), "p95"),
                    max: u(Some(v), "max"),
                })
                .collect(),
            _ => Vec::new(),
        };
        Ok(MemStatReport {
            dataset: s(run, "dataset"),
            transactions: u(run, "transactions"),
            support: u(run, "support"),
            algorithm: s(run, "algorithm"),
            threads: u(run, "threads"),
            attribution: Attribution {
                limit: att.and_then(|a| a.get("limit")).and_then(Json::as_u64),
                pool_used: u(att, "pool_used"),
                pool_peak: u(att, "pool_peak"),
                external_used: u(att, "external_used"),
                components,
            },
            audit: Audit {
                components_total: u(audit, "components_total"),
                accounted: u(audit, "accounted"),
                reconciled: b(audit, "reconciled"),
                arena_carved: u(audit, "arena_carved"),
                arena_reserved: u(audit, "arena_reserved"),
                reserved_slack: f(audit, "reserved_slack"),
                within_slack: b(audit, "within_slack"),
                rss_bytes: audit.and_then(|a| a.get("rss_bytes")).and_then(Json::as_u64),
            },
            structures,
            compression,
            savings,
            distributions,
        })
    }

    /// The compact summary folded into profile reports and bench
    /// snapshots.
    pub fn summary(&self) -> MemSummary {
        MemSummary {
            pool_peak: self.attribution.pool_peak,
            reconciled: self.audit.reconciled,
            component_peaks: self
                .attribution
                .components
                .iter()
                .map(|c| (c.component.clone(), c.peak))
                .collect(),
        }
    }
}

/// Resident-set bytes of the current process from `/proc/self/status`
/// (`VmRSS`). Returns `None` off Linux or when the file is unreadable.
/// Informational only: RSS includes code, stacks, and allocator slack,
/// so the audit never gates on it.
pub fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_report() -> MemStatReport {
        MemStatReport {
            dataset: "retail-like".into(),
            transactions: 1000,
            support: 20,
            algorithm: "cfp".into(),
            threads: 1,
            attribution: Attribution {
                limit: None,
                pool_used: 4096,
                pool_peak: 9000,
                external_used: 512,
                components: vec![
                    ComponentRow { component: "build-tree".into(), live: 4096, peak: 8000 },
                    ComponentRow { component: "cond-arrays".into(), live: 512, peak: 1500 },
                ],
            },
            audit: Audit {
                components_total: 4608,
                accounted: 4608,
                reconciled: true,
                arena_carved: 4096,
                arena_reserved: 8192,
                reserved_slack: 2.0,
                within_slack: true,
                rss_bytes: Some(10 << 20),
            },
            structures: vec![StructureReport {
                name: "cfp-tree".into(),
                logical_nodes: 900,
                bytes: 4096,
                bytes_per_node: 4.55,
                bytes_per_transaction: 4.1,
                detail: vec![("standard".into(), 500), ("embedded".into(), 100)],
            }],
            compression: vec![
                CompressionRow {
                    representation: "fp-tree".into(),
                    bytes: 25200,
                    ratio_vs_fptree: 1.0,
                },
                CompressionRow {
                    representation: "cfp-tree".into(),
                    bytes: 4096,
                    ratio_vs_fptree: 0.16,
                },
            ],
            savings: vec![
                SavingsRow { name: "ptr40".into(), bytes: 8100 },
                SavingsRow { name: "mask-overhead".into(), bytes: -900 },
            ],
            distributions: vec![DistRow {
                name: "recursion_depth".into(),
                count: 120,
                p50: 3,
                p95: 7,
                max: 15,
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let text = report.to_json().to_pretty();
        let doc = json::parse(&text).expect("memstat must be valid JSON");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let back = MemStatReport::from_json(&doc).expect("parse back");
        assert_eq!(back, report);
    }

    #[test]
    fn unknown_fields_are_ignored_on_parse() {
        let report = sample_report();
        let Json::Obj(mut members) = report.to_json() else { panic!("object") };
        members.push(("future_field".into(), Json::str("from cfp-memstat/2")));
        // Nested unknown field inside an existing section too.
        if let Some((_, Json::Obj(audit))) = members.iter_mut().find(|(k, _)| k == "audit") {
            audit.push(("future_audit_detail".into(), Json::u64(7)));
        }
        let back = MemStatReport::from_json(&Json::Obj(members)).expect("forward compatible");
        assert_eq!(back, report);
    }

    #[test]
    fn missing_or_wrong_schema_is_a_clear_error() {
        let err = MemStatReport::from_json(&Json::Obj(vec![])).unwrap_err();
        assert!(err.contains("no schema"), "got: {err}");
        let err = MemStatReport::from_json(&Json::Obj(vec![(
            "schema".into(),
            Json::str("cfp-memstat/9"),
        )]))
        .unwrap_err();
        assert!(err.contains("cfp-memstat/9") && err.contains("cfp-memstat/1"), "got: {err}");
    }

    #[test]
    fn summary_extracts_component_peaks() {
        let sum = sample_report().summary();
        assert_eq!(sum.pool_peak, 9000);
        assert!(sum.reconciled);
        assert_eq!(
            sum.component_peaks,
            vec![("build-tree".into(), 8000), ("cond-arrays".into(), 1500)]
        );
        // And the summary block itself round-trips.
        let back = MemSummary::from_json(&sum.to_json());
        assert_eq!(back, sum);
    }

    #[test]
    fn rss_bytes_reports_on_linux() {
        #[cfg(target_os = "linux")]
        assert!(rss_bytes().unwrap_or(0) > 0, "a running process has nonzero RSS");
        // Elsewhere: must not panic.
        let _ = rss_bytes();
    }
}
