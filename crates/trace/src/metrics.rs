//! Live metrics export: periodic snapshots of the counter registry and
//! latency histograms, serialized as Prometheus text exposition format
//! and as a versioned `cfp-metrics/1` JSONL stream.
//!
//! The [`MetricsExporter`] runs a background thread (same shape as the
//! `--progress` meter): every `--metrics-every` interval it captures a
//! [`MetricsSnapshot`] and
//!
//! * rewrites `<path>` with the full Prometheus exposition via a local
//!   write-to-temp + fsync + rename, so a scraper never observes a torn
//!   file, and
//! * appends one self-contained JSON line to `<path>.jsonl` (schema
//!   [`SCHEMA`]), giving a replayable time series of the whole registry.
//!
//! `cfp-trace` sits at the bottom of the crate graph (it has zero
//! dependencies), so the atomic-write helper here is a deliberate,
//! minimal sibling of `cfp_data::spill::write_atomic` rather than a
//! reuse of it.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::counters;
use crate::hist::{self, HistSummary};
use crate::json::Json;

/// Schema tag carried by every JSONL record.
pub const SCHEMA: &str = "cfp-metrics/1";

/// One point-in-time capture of the whole telemetry registry.
pub struct MetricsSnapshot {
    /// Monotone sequence number within the exporter's lifetime.
    pub seq: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub at_ms: u64,
    /// Counters, gauges, and max-gauges, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Non-empty latency histograms, sorted by name.
    pub hists: Vec<HistSummary>,
}

impl MetricsSnapshot {
    /// Capture the current registry state.
    pub fn capture(seq: u64) -> Self {
        let at_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        MetricsSnapshot { seq, at_ms, counters: counters::snapshot(), hists: hist::summaries() }
    }

    /// One `cfp-metrics/1` record (callers emit `to_compact()` + `\n`).
    pub fn to_json(&self) -> Json {
        let mut counters = Vec::with_capacity(self.counters.len());
        for &(name, value) in &self.counters {
            counters.push((name.to_string(), Json::u64(value)));
        }
        let mut hists = Vec::with_capacity(self.hists.len());
        for h in &self.hists {
            hists.push((h.name.to_string(), summary_json(h)));
        }
        Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("seq".into(), Json::u64(self.seq)),
            ("at_ms".into(), Json::u64(self.at_ms)),
            ("counters".into(), Json::Obj(counters)),
            ("hists".into(), Json::Obj(hists)),
        ])
    }

    /// Full Prometheus text exposition. `labels` become the label set of
    /// a constant `cfp_run_info` gauge identifying the run.
    pub fn to_prometheus(&self, labels: &[(String, String)]) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# HELP cfp_run_info constant 1; labels identify the run\n");
        out.push_str("# TYPE cfp_run_info gauge\n");
        out.push_str("cfp_run_info{");
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&prom_name_part(k));
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push_str("} 1\n");

        for &(name, value) in &self.counters {
            let pname = prom_name(name);
            out.push_str(&format!("# TYPE {pname} gauge\n{pname} {value}\n"));
        }

        for h in &self.hists {
            let pname = prom_name(h.name);
            out.push_str(&format!("# TYPE {pname} summary\n"));
            for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99), ("0.999", h.p999)] {
                out.push_str(&format!("{pname}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{pname}_sum {}\n", h.sum));
            out.push_str(&format!("{pname}_count {}\n", h.count));
            out.push_str(&format!("# TYPE {pname}_max gauge\n{pname}_max {}\n", h.max));
        }
        out
    }
}

fn summary_json(h: &HistSummary) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::u64(h.count)),
        ("sum".into(), Json::u64(h.sum)),
        ("max".into(), Json::u64(h.max)),
        ("p50".into(), Json::u64(h.p50)),
        ("p90".into(), Json::u64(h.p90)),
        ("p99".into(), Json::u64(h.p99)),
        ("p999".into(), Json::u64(h.p999)),
    ])
}

/// Registry name → Prometheus metric name: `cfp_` prefix, every
/// non-alphanumeric byte mapped to `_` (`core.mine_task_nanos` →
/// `cfp_core_mine_task_nanos`).
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("cfp_");
    out.push_str(&prom_name_part(name));
    out
}

fn prom_name_part(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Escape a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n` (the two-character sequence), per the text exposition format.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target.
pub(crate) fn write_atomic_small(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name =
        path.file_name().ok_or_else(|| std::io::Error::other("metrics path has no file name"))?;
    let tmp_name = format!(".{}.tmp", file_name.to_string_lossy());
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Background exporter; see the module docs for the file layout.
pub struct MetricsExporter {
    stop: Sender<()>,
    handle: Option<JoinHandle<()>>,
    prom_path: PathBuf,
}

impl MetricsExporter {
    /// Start exporting every `every` to `path` (Prometheus) and
    /// `path.jsonl` (JSONL stream). A final snapshot is always written on
    /// [`stop`](Self::stop), so even sub-interval runs export once.
    pub fn start(path: PathBuf, every: Duration, labels: Vec<(String, String)>) -> Self {
        let (stop, rx) = mpsc::channel::<()>();
        let prom_path = path.clone();
        let handle = std::thread::Builder::new()
            .name("cfp-metrics".into())
            .spawn(move || {
                let jsonl_path = jsonl_path_for(&path);
                let mut seq = 0u64;
                let mut warned = false;
                loop {
                    let stopping = match rx.recv_timeout(every) {
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => true,
                        Err(RecvTimeoutError::Timeout) => false,
                    };
                    seq += 1;
                    let snap = MetricsSnapshot::capture(seq);
                    let prom = snap.to_prometheus(&labels);
                    if let Err(e) = write_atomic_small(&path, prom.as_bytes()) {
                        if !warned {
                            eprintln!(
                                "cfp-trace: metrics export to {} failed: {e}",
                                path.display()
                            );
                            warned = true;
                        }
                    }
                    let line = format!("{}\n", snap.to_json().to_compact());
                    if let Err(e) = append_line(&jsonl_path, line.as_bytes()) {
                        if !warned {
                            eprintln!(
                                "cfp-trace: metrics export to {} failed: {e}",
                                jsonl_path.display()
                            );
                            warned = true;
                        }
                    }
                    if stopping {
                        return;
                    }
                }
            })
            .expect("spawn cfp-metrics thread");
        MetricsExporter { stop, handle: Some(handle), prom_path }
    }

    /// Flush a final snapshot and join the exporter thread.
    pub fn stop(mut self) -> PathBuf {
        let _ = self.stop.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.prom_path.clone()
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The JSONL companion of a Prometheus export path (`metrics.prom` →
/// `metrics.prom.jsonl`).
pub fn jsonl_path_for(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".jsonl");
    PathBuf::from(s)
}

fn append_line(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
    // One write call per record keeps each line self-contained even if
    // the process dies mid-run; readers skip a torn final line.
    f.write_all(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("core.mine_task_nanos"), "cfp_core_mine_task_nanos");
        assert_eq!(prom_name("a-b c"), "cfp_a_b_c");
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label_value(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label_value("x\ny"), "x\\ny");
        assert_eq!(escape_label_value("plain"), "plain");
    }

    #[test]
    fn snapshot_json_carries_schema() {
        let snap = MetricsSnapshot::capture(7);
        let doc = snap.to_json();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("seq").and_then(Json::as_u64), Some(7));
        let parsed = crate::json::parse(&doc.to_compact()).expect("round-trip");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(SCHEMA));
    }

    #[test]
    fn prometheus_lines_are_well_formed() {
        let snap = MetricsSnapshot::capture(1);
        let labels = vec![("dataset".to_string(), "a\"b".to_string())];
        let text = snap.to_prometheus(&labels);
        assert!(text.contains("cfp_run_info{dataset=\"a\\\"b\"} 1"));
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(name.starts_with("cfp_"), "bad name in {line}");
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad value in {line}"));
        }
    }
}
