//! Chrome trace-event JSON export of the event timeline.
//!
//! Produces the *array-of-events* form of the [Trace Event Format] that
//! `chrome://tracing` and [Perfetto] load directly: one timeline track
//! per recorded thread (named via `M` thread-name metadata), `B`/`E`
//! duration events for pipeline phases, `X` complete events for matched
//! conditional-tree recursions, `i` instants for scheduler claims/steals,
//! arena activity, recovery rungs, and reader buffer swaps, plus `C`
//! counter tracks replayed from the [`MemSampler`](crate::MemSampler)
//! time series. Timestamps are microseconds (fractional), as the format
//! requires.
//!
//! Recursion `X` events are reconstructed by replaying each track's
//! enter/exit stack. A ring that overflowed may have lost enters or
//! exits; unmatched events are discarded rather than emitted as
//! ill-nested slices, so the export stays loadable no matter how much
//! was dropped.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use crate::events::{EventKind, TrackDump};
use crate::json::Json;
use crate::sampler::Sample;

/// All events share one synthetic process.
const PID: u64 = 1;
/// Counter tracks live on a pseudo-thread below every real track.
const COUNTER_TID: u64 = 0;

fn base(name: &str, cat: &str, ph: &str, tid: u64, ts_us: f64) -> Vec<(String, Json)> {
    vec![
        ("name".into(), Json::str(name)),
        ("cat".into(), Json::str(cat)),
        ("ph".into(), Json::str(ph)),
        ("pid".into(), Json::u64(PID)),
        ("tid".into(), Json::u64(tid)),
        ("ts".into(), Json::Num(ts_us)),
    ]
}

fn us(t_nanos: u64) -> f64 {
    t_nanos as f64 / 1000.0
}

fn instant(name: &str, cat: &str, tid: u64, ts_us: f64, args: Vec<(String, Json)>) -> Json {
    let mut fields = base(name, cat, "i", tid, ts_us);
    // Thread scope: the instant belongs to this track, not the process.
    fields.push(("s".into(), Json::str("t")));
    if !args.is_empty() {
        fields.push(("args".into(), Json::Obj(args)));
    }
    Json::Obj(fields)
}

/// Serialises drained tracks and the memory time series as one Chrome
/// trace document (a JSON array of event objects).
pub fn chrome_trace(tracks: &[TrackDump], samples: &[Sample]) -> Json {
    let mut out: Vec<Json> = Vec::new();
    for track in tracks {
        // Name the track so the viewer shows "worker-3" instead of a tid.
        out.push(Json::Obj(vec![
            ("name".into(), Json::str("thread_name")),
            ("ph".into(), Json::str("M")),
            ("pid".into(), Json::u64(PID)),
            ("tid".into(), Json::u64(track.tid as u64)),
            ("args".into(), Json::Obj(vec![("name".into(), Json::str(track.name.clone()))])),
        ]));
        emit_track(track, &mut out);
    }
    for sample in samples {
        let ts = sample.at_ms as f64 * 1000.0;
        for (name, value) in [
            ("mem.current_bytes", sample.mem_current),
            ("mem.peak_bytes", sample.mem_peak),
            ("arena.used_bytes", sample.arena_used),
            ("arena.footprint_bytes", sample.arena_footprint),
        ] {
            let mut fields = base(name, "memory", "C", COUNTER_TID, ts);
            fields.push(("args".into(), Json::Obj(vec![("bytes".into(), Json::u64(value))])));
            out.push(Json::Obj(fields));
        }
    }
    Json::Arr(out)
}

struct OpenRec {
    item: u32,
    depth: u16,
    pattern_base: u64,
    entered_nanos: u64,
}

fn emit_track(track: &TrackDump, out: &mut Vec<Json>) {
    let tid = track.tid as u64;
    let mut rec_stack: Vec<OpenRec> = Vec::new();
    for event in &track.events {
        let ts = us(event.t_nanos);
        match event.kind {
            EventKind::PhaseBegin(phase) => {
                out.push(Json::Obj(base(phase.name(), "phase", "B", tid, ts)));
            }
            EventKind::PhaseEnd(phase) => {
                out.push(Json::Obj(base(phase.name(), "phase", "E", tid, ts)));
            }
            EventKind::TaskClaim { item, cost, stolen } => {
                out.push(instant(
                    if stolen { "steal" } else { "claim" },
                    "sched",
                    tid,
                    ts,
                    vec![
                        ("item".into(), Json::u64(item as u64)),
                        ("cost_bytes".into(), Json::u64(cost)),
                    ],
                ));
            }
            EventKind::RecEnter { item, depth, pattern_base } => {
                rec_stack.push(OpenRec { item, depth, pattern_base, entered_nanos: event.t_nanos });
            }
            EventKind::RecExit { item } => {
                // Exits arrive LIFO on a lossless track; a mismatch means
                // the ring dropped events. Resynchronise on the nearest
                // matching enter and discard anything opened above it.
                let Some(pos) = rec_stack.iter().rposition(|r| r.item == item) else {
                    continue;
                };
                rec_stack.truncate(pos + 1);
                let open = rec_stack.pop().expect("rposition found an entry");
                let mut fields =
                    base(&format!("i{item}"), "mine", "X", tid, us(open.entered_nanos));
                fields.push((
                    "dur".into(),
                    Json::Num(us(event.t_nanos.saturating_sub(open.entered_nanos))),
                ));
                fields.push((
                    "args".into(),
                    Json::Obj(vec![
                        ("depth".into(), Json::u64(open.depth as u64)),
                        ("pattern_base".into(), Json::u64(open.pattern_base)),
                    ]),
                ));
                out.push(Json::Obj(fields));
            }
            EventKind::ArenaPressure { requested } => {
                out.push(instant(
                    "arena pressure",
                    "arena",
                    tid,
                    ts,
                    vec![("requested_bytes".into(), Json::u64(requested))],
                ));
            }
            EventKind::ArenaCompact { reclaimed } => {
                out.push(instant(
                    "arena compact",
                    "arena",
                    tid,
                    ts,
                    vec![("reclaimed_bytes".into(), Json::u64(reclaimed))],
                ));
            }
            EventKind::ArenaReset => {
                out.push(instant("arena reset", "arena", tid, ts, vec![]));
            }
            EventKind::RecoveryRung(rung) => {
                out.push(instant(&format!("rung {}", rung.name()), "recover", tid, ts, vec![]));
            }
            EventKind::BufferSwap { rows } => {
                out.push(instant(
                    "buffer swap",
                    "io",
                    tid,
                    ts,
                    vec![("rows".into(), Json::u64(rows as u64))],
                ));
            }
            EventKind::SpillIo { bytes, write } => {
                out.push(instant(
                    if write { "spill write" } else { "spill read" },
                    "io",
                    tid,
                    ts,
                    vec![("bytes".into(), Json::u64(bytes))],
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;
    use crate::json;
    use crate::span::Phase;

    fn track(name: &str, tid: u32, events: Vec<Event>) -> TrackDump {
        let recorded = events.len() as u64;
        TrackDump { name: name.into(), tid, events, recorded, dropped: 0 }
    }

    fn at(t_nanos: u64, kind: EventKind) -> Event {
        Event { t_nanos, kind }
    }

    #[test]
    fn export_is_valid_json_with_named_tracks_and_nested_slices() {
        let worker = track(
            "worker-0",
            2,
            vec![
                at(1_000, EventKind::PhaseBegin(Phase::Mine)),
                at(2_000, EventKind::TaskClaim { item: 5, cost: 64, stolen: false }),
                at(3_000, EventKind::RecEnter { item: 5, depth: 0, pattern_base: 9 }),
                at(4_000, EventKind::RecEnter { item: 2, depth: 1, pattern_base: 3 }),
                at(5_000, EventKind::RecExit { item: 2 }),
                at(7_000, EventKind::RecExit { item: 5 }),
                at(8_000, EventKind::TaskClaim { item: 1, cost: 8, stolen: true }),
                at(9_000, EventKind::PhaseEnd(Phase::Mine)),
            ],
        );
        let samples = vec![Sample {
            at_ms: 1,
            mem_current: 10,
            mem_peak: 20,
            arena_used: 5,
            arena_footprint: 8,
        }];
        let text = chrome_trace(&[worker], &samples).to_pretty();
        let doc = json::parse(&text).expect("chrome trace must be valid JSON");
        let events = doc.as_arr().expect("array-of-events form");

        let meta = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .expect("thread_name metadata");
        assert_eq!(
            meta.get("args").and_then(|a| a.get("name")).and_then(Json::as_str),
            Some("worker-0")
        );

        let slices: Vec<&Json> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
        assert_eq!(slices.len(), 2, "both matched recursions become X slices");
        let outer = slices
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some("i5"))
            .expect("outer slice");
        assert_eq!(outer.get("ts").and_then(Json::as_f64), Some(3.0));
        assert_eq!(outer.get("dur").and_then(Json::as_f64), Some(4.0));

        let steal = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("steal"))
            .expect("steal instant");
        assert_eq!(steal.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(steal.get("s").and_then(Json::as_str), Some("t"));

        let counters: Vec<&Json> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("C")).collect();
        assert_eq!(counters.len(), 4, "one counter event per sampled series");
    }

    #[test]
    fn unmatched_recursion_events_are_discarded() {
        let worker = track(
            "worker-1",
            3,
            vec![
                // Exit whose enter was dropped, then an enter that never
                // exits: neither may produce a slice.
                at(1_000, EventKind::RecExit { item: 9 }),
                at(2_000, EventKind::RecEnter { item: 4, depth: 0, pattern_base: 1 }),
            ],
        );
        let doc = json::parse(&chrome_trace(&[worker], &[]).to_compact()).unwrap();
        assert!(
            doc.as_arr().unwrap().iter().all(|e| e.get("ph").and_then(Json::as_str) != Some("X")),
            "unmatched events must not become slices"
        );
    }
}
