//! A minimal JSON value, writer, and parser.
//!
//! `serde_json` is unavailable offline, and the run report only needs a
//! small, well-behaved subset of JSON: finite numbers, UTF-8 strings,
//! arrays, and objects with *ordered* keys (reports should diff cleanly,
//! so key order is insertion order, not hash order).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number. Integers up to 2^53 round-trip exactly, which
    /// comfortably covers byte counts and nanosecond timings here.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for `u64` values (exact up to 2^53).
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= (1u64 << 53) as f64 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Member lookup on objects (first match; reports never duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialises with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialises compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-wrong encoding.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry a byte offset and message.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// A parse failure: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { at: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: only the BMP subset appears in
                            // our reports, but accept pairs for robustness.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + low
                                        .checked_sub(0xDC00)
                                        .ok_or_else(|| self.err("invalid low surrogate"))?;
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid; find the char boundary).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_document() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("cfp-profile/1")),
            ("wall_nanos".into(), Json::u64(123_456_789_012)),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            ("ratio".into(), Json::Num(0.25)),
            (
                "samples".into(),
                Json::Arr(vec![
                    Json::Obj(vec![("at_ms".into(), Json::u64(0))]),
                    Json::Obj(vec![("at_ms".into(), Json::u64(10))]),
                ]),
            ),
        ]);
        for text in [doc.to_pretty(), doc.to_compact()] {
            assert_eq!(parse(&text).unwrap(), doc, "failed on: {text}");
        }
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Json::u64(42).to_compact(), "42");
        assert_eq!(Json::u64(0).to_compact(), "0");
        assert_eq!(Json::Num(2.5).to_compact(), "2.5");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = Json::str("a\"b\\c\nd\te\u{1}");
        let text = s.to_compact();
        assert_eq!(text, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(parse(&text).unwrap(), s);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::str("é"));
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::str("\u{1F600}"));
    }

    #[test]
    fn object_key_order_is_preserved() {
        let parsed = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        match parsed {
            Json::Obj(members) => {
                let keys: Vec<_> = members.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["z", "a", "m"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn get_and_accessors() {
        let doc = parse(r#"{"n": 7, "s": "x", "a": [1,2]}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(2));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"abc", "{\"a\" 1}", "nan"] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn rejects_runaway_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn parses_whitespace_and_negative_numbers() {
        let doc = parse(" {\n\t\"a\" : -12.5e1 , \"b\":[ ] }\r\n").unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(-125.0));
        assert_eq!(doc.get("b"), Some(&Json::Arr(vec![])));
    }
}
