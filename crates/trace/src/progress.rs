//! A live progress heartbeat on stderr.
//!
//! `--progress` runs can take minutes on large datasets with no output
//! until the end; [`ProgressMeter`] is a background thread that reads the
//! metric registry at a fixed interval and paints one status line —
//! current phase, first-level items mined, itemsets/s rate, steal count,
//! resume watermark and spill partition progress (when active), and the
//! budget pool's high-water mark. It writes to stderr only, so stdout
//! (the mining output) stays byte-identical.
//!
//! On a TTY the line repaints in place with a carriage return; when
//! stderr is redirected the meter instead appends a full line, rate
//! limited and only when something changed, so log files are not flooded.

use crate::counters::{
    CORE_FIRST_LEVEL_ITEMS, CORE_ITEMS_MINED, CORE_PATTERNS, CORE_RESUME_WATERMARK,
    CORE_SPILL_PARTITIONS, CORE_SPILL_PARTS_DONE, CORE_TASKS_STOLEN, MEMMAN_POOL_PEAK,
};
use crate::span;
use std::io::{IsTerminal, Write};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Minimum spacing of full-line updates when stderr is not a terminal.
const LOG_SPACING: Duration = Duration::from_secs(1);

/// Per-meter state for the itemsets/s rate: the previous tick's pattern
/// count and timestamp.
struct RateState {
    last_patterns: u64,
    last_at: Instant,
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1_000_000.0 {
        format!("{:.1}M/s", per_sec / 1_000_000.0)
    } else if per_sec >= 1_000.0 {
        format!("{:.1}k/s", per_sec / 1_000.0)
    } else {
        format!("{per_sec:.0}/s")
    }
}

fn status_line(rate: &mut RateState) -> String {
    let phase = span::current_phase().map(|p| p.name()).unwrap_or("starting");
    let mined = CORE_ITEMS_MINED.get();
    let total = CORE_FIRST_LEVEL_ITEMS.get();
    let steals = CORE_TASKS_STOLEN.get();
    let mut line = format!("[{phase}] items {mined}/{total}");

    let patterns = CORE_PATTERNS.get();
    let dt = rate.last_at.elapsed().as_secs_f64();
    if dt > 0.0 {
        let per_sec = patterns.saturating_sub(rate.last_patterns) as f64 / dt;
        line.push_str(&format!("  {} sets", fmt_rate(per_sec)));
    }
    rate.last_patterns = patterns;
    rate.last_at = Instant::now();

    line.push_str(&format!("  steals {steals}"));

    let resume = CORE_RESUME_WATERMARK.get();
    if resume > 0 {
        line.push_str(&format!("  resumed @{resume}"));
    }
    let spill_total = CORE_SPILL_PARTITIONS.get();
    if spill_total > 0 {
        line.push_str(&format!("  spill {}/{spill_total}", CORE_SPILL_PARTS_DONE.get()));
    }
    let pool_peak = MEMMAN_POOL_PEAK.get();
    if pool_peak > 0 {
        line.push_str(&format!("  pool peak {:.1} MiB", pool_peak as f64 / (1024.0 * 1024.0)));
    }
    line
}

/// The running heartbeat thread; call [`stop`](Self::stop) before writing
/// final results so the status line does not interleave with them.
#[derive(Debug)]
pub struct ProgressMeter {
    stop_tx: Sender<()>,
    handle: JoinHandle<()>,
}

impl ProgressMeter {
    /// Starts repainting every `interval`. Requires
    /// [`crate::set_enabled`]`(true)` to show anything useful — the meter
    /// only reads the registry, it does not enable recording.
    pub fn start(interval: Duration) -> Self {
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("cfp-progress".into())
            .spawn(move || {
                let tty = std::io::stderr().is_terminal();
                let mut last_line = String::new();
                let mut last_emit: Option<Instant> = None;
                let mut rate =
                    RateState { last_patterns: CORE_PATTERNS.get(), last_at: Instant::now() };
                loop {
                    let stopping = match stop_rx.recv_timeout(interval) {
                        Err(RecvTimeoutError::Timeout) => false,
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => true,
                    };
                    let line = status_line(&mut rate);
                    let mut err = std::io::stderr().lock();
                    if tty {
                        // Repaint in place; clear to end of line in case
                        // the new status is shorter.
                        let _ = write!(err, "\r{line}\x1b[K");
                        if stopping {
                            let _ = writeln!(err);
                        }
                        let _ = err.flush();
                    } else if line != last_line
                        && (stopping || last_emit.is_none_or(|at| at.elapsed() >= LOG_SPACING))
                    {
                        let _ = writeln!(err, "{line}");
                        last_emit = Some(Instant::now());
                    }
                    last_line = line;
                    if stopping {
                        return;
                    }
                }
            })
            .expect("spawn progress thread");
        ProgressMeter { stop_tx, handle }
    }

    /// Paints one final status line and joins the thread.
    pub fn stop(self) {
        let _ = self.stop_tx.send(());
        let _ = self.handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_ticks_and_stops_cleanly() {
        let meter = ProgressMeter::start(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        meter.stop();
    }

    #[test]
    fn status_line_reflects_registry_values() {
        // No reset here (other tests share the registry); the line only
        // needs to contain whatever the counters currently read.
        let mut rate = RateState { last_patterns: 0, last_at: Instant::now() };
        std::thread::sleep(Duration::from_millis(2));
        let line = status_line(&mut rate);
        assert!(line.contains("items"), "{line}");
        assert!(line.contains("steals"), "{line}");
        assert!(line.contains("sets"), "{line}");
    }

    #[test]
    fn rate_formatting_scales() {
        assert_eq!(fmt_rate(12.0), "12/s");
        assert_eq!(fmt_rate(12_345.0), "12.3k/s");
        assert_eq!(fmt_rate(3_456_789.0), "3.5M/s");
    }
}
