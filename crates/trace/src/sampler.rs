//! A background memory time-series sampler.
//!
//! The paper's headline claim is about *peak* memory, but peaks hide
//! shape: the CFP-tree build ramps up, conversion briefly doubles-carries,
//! and mining holds conditional trees. [`MemSampler`] snapshots the
//! mirrored memory gauges ([`crate::counters::MEM_CURRENT_BYTES`],
//! [`crate::counters::MEMMAN_USED_BYTES`], ...) on a background thread at
//! a configurable interval, producing the `memory.samples` time series of
//! the run report.
//!
//! One sample is taken synchronously at start and one at stop, so every
//! run yields at least two samples regardless of its duration.

use crate::counters::{
    MEMMAN_FOOTPRINT_BYTES, MEMMAN_USED_BYTES, MEM_CURRENT_BYTES, MEM_PEAK_BYTES,
};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One point of the memory time series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Milliseconds since the sampler started.
    pub at_ms: u64,
    /// Current tracked bytes (MemGauge mirror).
    pub mem_current: u64,
    /// Peak tracked bytes so far (MemGauge mirror).
    pub mem_peak: u64,
    /// Live rounded bytes across all arenas.
    pub arena_used: u64,
    /// Carved bytes (bump high-water) across all arenas.
    pub arena_footprint: u64,
}

fn take_sample(started: Instant) -> Sample {
    Sample {
        at_ms: started.elapsed().as_millis() as u64,
        mem_current: MEM_CURRENT_BYTES.get(),
        mem_peak: MEM_PEAK_BYTES.get(),
        arena_used: MEMMAN_USED_BYTES.get(),
        arena_footprint: MEMMAN_FOOTPRINT_BYTES.get(),
    }
}

/// A running sampler thread; call [`stop`](Self::stop) to collect.
#[derive(Debug)]
pub struct MemSampler {
    stop_tx: Sender<()>,
    handle: JoinHandle<Vec<Sample>>,
}

impl MemSampler {
    /// Starts sampling every `interval` on a background thread. The first
    /// sample is taken immediately (synchronously).
    pub fn start(interval: Duration) -> Self {
        let started = Instant::now();
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let first = take_sample(started);
        let handle = std::thread::Builder::new()
            .name("cfp-mem-sampler".into())
            .spawn(move || {
                let mut samples = vec![first];
                loop {
                    match stop_rx.recv_timeout(interval) {
                        Err(RecvTimeoutError::Timeout) => samples.push(take_sample(started)),
                        // Stop requested or the sampler handle vanished:
                        // flush one final sample *before* returning, so
                        // even a run shorter than `interval` ends its
                        // series with a fresh "now" point instead of a
                        // stale or missing one.
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                            samples.push(take_sample(started));
                            return samples;
                        }
                    }
                }
            })
            .expect("spawn mem-sampler thread");
        MemSampler { stop_tx, handle }
    }

    /// Stops the thread and returns the time series. The thread flushes
    /// one final sample on the way out, so the series always ends at
    /// "now" (and every run yields at least two samples).
    pub fn stop(self) -> Vec<Sample> {
        let _ = self.stop_tx.send(());
        self.handle.join().expect("mem-sampler thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_at_least_two_samples_even_when_stopped_immediately() {
        let s = MemSampler::start(Duration::from_secs(3600));
        let samples = s.stop();
        assert!(samples.len() >= 2, "{samples:?}");
        assert!(samples.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn samples_accumulate_over_time() {
        let s = MemSampler::start(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(40));
        let samples = s.stop();
        assert!(samples.len() >= 4, "expected periodic samples, got {}", samples.len());
    }

    #[test]
    fn final_sample_is_taken_at_stop_not_at_start() {
        // The interval is far longer than the test, so the series can
        // only see this change if stop() flushes a final sample.
        let s = MemSampler::start(Duration::from_secs(3600));
        MEMMAN_FOOTPRINT_BYTES.add(777);
        let samples = s.stop();
        assert!(
            samples.last().unwrap().arena_footprint >= 777,
            "final sample is stale: {samples:?}"
        );
        MEMMAN_FOOTPRINT_BYTES.sub(777);
    }

    #[test]
    fn samples_observe_gauge_changes() {
        // No lock needed: this test only requires the final sample to be
        // at least as large as what it added itself.
        MEMMAN_USED_BYTES.add(1234);
        let s = MemSampler::start(Duration::from_secs(3600));
        let samples = s.stop();
        assert!(samples.last().unwrap().arena_used >= 1234);
        MEMMAN_USED_BYTES.sub(1234);
    }
}
